//! # gpssn-core — GP-SSN query processing (the paper's contribution)
//!
//! Everything above the substrates: the query definition, the pruning
//! strategies of Section 3, the index-level pruning of Section 4.2, the
//! query answering algorithm of Section 5 (Algorithm 2), and the Baseline
//! competitor of Section 6.
//!
//! * [`query`] — [`GpSsnQuery`] parameters, [`GpSsnAnswer`], and exact
//!   predicate validation (Definition 5).
//! * [`pruning`] — all pruning rules:
//!   [`pruning::matching`] (Lemmas 1–2, 6; Eqs. 15, 18),
//!   [`pruning::user`] (Lemma 3, Corollaries 1–2, Lemma 8),
//!   [`pruning::social_distance`] (Lemmas 4, 9; Eq. 19),
//!   [`pruning::road_distance`] (Lemmas 5, 7; Eqs. 5–6, 16–17).
//! * [`algorithm`] — [`GpSsnEngine`]: index construction plus the
//!   synchronized dual-index traversal of Algorithm 2 with the min-heap on
//!   `lb_maxdist` and the pruning threshold `δ`.
//! * [`refinement`] — candidate enumeration and exact verification.
//! * [`baseline`] — the exact brute-force Baseline (small inputs) and the
//!   paper's 100-sample extrapolated cost estimate (large inputs).
//! * [`stats`] — pruning-power counters and query metrics feeding the
//!   experiment harness (Figures 7–11).
//! * [`error`] — the typed error hierarchy ([`GpSsnError`]), resource
//!   budgets with deadlines ([`QueryBudget`]), and the anytime-completion
//!   taxonomy ([`Completion`]) behind the engine's `try_*` serving API.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod algorithm;
pub mod baseline;
pub mod breaker;
pub mod cache;
pub mod error;
#[doc(hidden)]
pub mod panic_capture;
pub mod pruning;
pub mod query;
pub mod refinement;
pub mod sampling;
pub mod serve;
pub mod stats;
pub mod telemetry;
pub mod tuning;

pub use algorithm::{
    BatchSchedule, DegradationPolicy, DistanceBackend, EngineConfig, GpSsnEngine, QueryOptions,
};
pub use baseline::{
    estimate_baseline_cost, exact_baseline, exact_baseline_top_k, try_exact_baseline,
    try_exact_baseline_with_obs, BaselineEstimate,
};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::{CacheLifetimeStats, DistDir, DistanceCache, DistanceCacheConfig, ShardOccupancy};
pub use error::{BudgetState, Completion, GpSsnError, QueryBudget, Trip};
pub use query::{GpSsnAnswer, GpSsnQuery};
pub use refinement::{verify_center, CenterVerification, ChBackend, VerifyContext};
pub use sampling::{sample_connected_group, verify_center_sampled};
pub use serve::{
    serve, serve_jsonl, OverloadPolicy, ServeConfig, ServeObs, ServeObsConfig, ServeRequest,
    ServeResponse, ServeStats, Submission,
};
pub use stats::{BackendServed, CacheStats, PruningStats, QueryMetrics, QueryOutcome, TopKOutcome};
pub use tuning::{suggest_parameters, TunedParameters};
