//! The GP-SSN query answering engine (paper Section 5, Algorithm 2).
//!
//! Index construction selects pivots (Algorithm 1), builds `I_R` and
//! `I_S`, and the query path then runs:
//!
//! 1. **Social traversal** — level-by-level expansion of `I_S` from the
//!    root, pruning nodes by the interest-region test (Lemma 8) and the
//!    social-distance bound (Lemma 9), then pruning leaf users by
//!    Lemma 3 / Corollary 1 and Lemma 4, and finally Corollary 2.
//! 2. **Road traversal** — a best-first expansion of `I_R` on the
//!    min-heap key `lb_maxdist` (Eq. 17), pruning by the matching-score
//!    bound (Lemmas 1 and 6) and by the paper's threshold `δ` (the
//!    smallest Eq. 16 upper bound among candidates whose `sub_K` lower
//!    bound certifies a `θ`-matching set, Eq. 18). This is the same rule
//!    set as Algorithm 2's level-synchronized loop; best-first order
//!    simply pops the heap in a single pass.
//! 3. **Refinement** — candidate centers verified in ascending `lb`
//!    order with early termination (`lb >= best`).
//!
//! **Exactness.** The paper's `δ` cut can, in corner cases, discard the
//! region holding the only (or a better) feasible answer, because the
//! Eq. 18 guard certifies matching for `u_q` but not group feasibility.
//! We therefore never *drop* `δ`-cut items: they move to a deferred list
//! (no I/O — the nodes are not read), and after refinement any deferred
//! item whose `lb` still beats the best verified answer is expanded under
//! the proven bound. In the common case the deferred list is never
//! touched and the traversal I/O matches the paper's; in the corner case
//! the engine stays exact (the property tests against brute force check
//! this).

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::cache::{DistanceCache, DistanceCacheConfig};
use crate::error::{BudgetState, Completion, GpSsnError, QueryBudget, Trip};
use crate::pruning::{
    corollary2_filter, lb_match_score_node, lb_maxdist_node, lb_maxdist_poi,
    prune_node_by_social_distance, prune_user_by_social_distance, ub_match_score_keywords,
    ub_match_score_signature, ub_maxdist_node, ub_maxdist_poi, PruningRegion,
};
use crate::query::{GpSsnAnswer, GpSsnQuery};
use crate::refinement::{verify_center, CenterVerification, ChBackend, VerifyContext};
use crate::stats::BackendServed;
use crate::stats::{binomial_f64, PruningStats, QueryMetrics, QueryOutcome, TopKOutcome};
use gpssn_graph::DijkstraWorkspace;
use gpssn_index::{
    select_road_pivots, select_social_pivots, IoCounter, PivotSelectConfig, RoadIndex,
    RoadIndexConfig, SocialIndex, SocialIndexConfig,
};
use gpssn_obs::Obs;
use gpssn_road::{PoiId, RoadPivots};
use gpssn_social::{SocialPivots, UserId};
use gpssn_spatial::Entry;
use gpssn_ssn::SpatialSocialNetwork;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of road pivots `h`.
    pub num_road_pivots: usize,
    /// Number of social pivots `l`.
    pub num_social_pivots: usize,
    /// `I_R` build parameters.
    pub road_index: RoadIndexConfig,
    /// `I_S` build parameters.
    pub social_index: SocialIndexConfig,
    /// Algorithm 1 parameters.
    pub pivot_select: PivotSelectConfig,
    /// Per-center cap on refinement subset enumeration (safety valve).
    pub enumeration_cap: usize,
    /// Optional LRU buffer pool (in pages) in front of the simulated
    /// index file: I/O then counts misses only. `None` reproduces the
    /// paper's raw page-access metric.
    pub page_cache_capacity: Option<usize>,
    /// Build a pruned-landmark (2-hop) labeling of `G_s` and use *exact*
    /// hop distances for the object-level social-distance rule (Lemma 4
    /// with the bound replaced by the true `dist_SN`). The paper's pivot
    /// lower bounds remain the default; exact labels trade index build
    /// time for maximal distance-pruning power.
    pub exact_social_distance: bool,
    /// Cross-query ball / `dist_RN` cache shared by every query (and
    /// every refinement worker) this engine serves. Cached values are
    /// bit-identical to recomputation (see [`crate::cache`]), so under
    /// an unlimited budget answers are unchanged; under a tight budget
    /// hits simply stretch how far the budget reaches (cached work
    /// charges no Dijkstra settles). `None` disables caching.
    pub distance_cache: Option<DistanceCacheConfig>,
    /// Telemetry sink shared by every query this engine serves: phase
    /// spans (text flamegraph / Chrome trace) plus per-query counters
    /// and phase-duration histograms (Prometheus / JSON). `None` — the
    /// default — costs each instrumentation site one `Option` check; an
    /// attached-but-disabled sink costs one relaxed atomic load (the
    /// `obs_overhead` bench keeps this honest).
    pub obs: Option<Arc<Obs>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_road_pivots: 5,
            num_social_pivots: 5,
            road_index: RoadIndexConfig::default(),
            social_index: SocialIndexConfig::default(),
            pivot_select: PivotSelectConfig::default(),
            enumeration_cap: 200_000,
            page_cache_capacity: None,
            exact_social_distance: false,
            distance_cache: Some(DistanceCacheConfig::default()),
            obs: None,
        }
    }
}

impl EngineConfig {
    /// Sets the index-build worker count (`0` = all cores) on both the
    /// `I_R` and `I_S` builders — the `gpq --build-threads` knob. The
    /// built indexes are bit-identical for every thread count; only the
    /// build wall clock changes.
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.road_index.build.threads = threads;
        self.social_index.build.threads = threads;
        self
    }
}

/// Which oracle serves refinement-time `dist_RN` computations.
///
/// Both backends return bit-identical distances (the CH oracle unpacks
/// every winning up–down path and refolds original edge weights in
/// Dijkstra's exact operation order — see `gpssn_graph::ch`), so the
/// choice affects speed and metering only, never answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceBackend {
    /// Multi-target Dijkstra sweeps over the road graph.
    Dijkstra,
    /// The road index's contraction-hierarchy oracle. Falls back to
    /// [`DistanceBackend::Dijkstra`] silently when the index carries no
    /// oracle (`RoadIndexConfig::build_ch = false`, or an index loaded
    /// from a CH-less file).
    Ch,
}

/// How a batch of queries is distributed over worker threads.
///
/// Both schedules answer every query by the same single-query path, so
/// per-slot results are bit-identical to each other and to the
/// sequential sweep; only wall-clock and worker utilization differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchSchedule {
    /// Workers claim one query at a time off a shared atomic cursor.
    /// Skewed per-query costs (exactly what the paper's pruning lemmas
    /// induce: one large-radius query can cost orders of magnitude more
    /// than its neighbors) no longer strand cheap queries behind an
    /// overloaded worker. The default.
    #[default]
    WorkStealing,
    /// The legacy schedule: `ceil(n/threads)` contiguous chunks, one per
    /// worker. Kept for A/B comparison in tests and `serve_report`.
    StaticChunk,
}

/// What to serve when the exact pipeline cannot produce an answer.
///
/// The engine degrades along a fixed ladder of rungs, each strictly
/// weaker than the last (see [`Completion::rung`]):
///
/// 1. **exact** — the search completed; the answer is the optimum.
/// 2. **truncated** — a budget trip (or an absorbed refinement fault)
///    cut the search short; the best *verified* answer is served with a
///    sound optimality-gap bound.
/// 3. **sampling** — nothing was verified in time; a bounded sampling
///    pass (the paper's §5 future-work estimator) produces an answer
///    that satisfies every query constraint but carries no gap bound.
/// 4. **failed** — even sampling found nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationPolicy {
    /// Stop at rung 2: a query with nothing verified reports
    /// [`Completion::Failed`], and a panic inside center verification
    /// propagates to the batch isolation layer (the legacy behavior,
    /// and the default).
    #[default]
    FailFast,
    /// Walk the whole ladder: panics inside center verification are
    /// caught per-center (the center is treated as unresolved and
    /// counted as a fault), and a query that would fail outright gets
    /// the bounded sampling pass before giving up.
    Ladder,
}

/// Per-query switches (ablations and stats collection).
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Gather the Figure-7 pruning-power counters (adds one linear pass
    /// over users and POIs).
    pub collect_stats: bool,
    /// Interest-score pruning (Lemma 3 / Corollary 1 / Lemma 8).
    pub use_interest_pruning: bool,
    /// Social-distance pruning (Lemmas 4 and 9).
    pub use_social_distance_pruning: bool,
    /// Matching-score pruning (Lemmas 1 and 6).
    pub use_matching_pruning: bool,
    /// `δ` distance pruning (Lemmas 5 and 7).
    pub use_delta_pruning: bool,
    /// Use the exact halfspace-corner MBR test instead of the paper's
    /// geometric `maxdist`/`mindist` comparison for Lemma 8 (the
    /// geometric test is sufficient-only; the tight test prunes more).
    pub use_tight_mbr_test: bool,
    /// Worker threads for center refinement *within* one query. `1`
    /// (the default) verifies centers sequentially; `0` uses the
    /// machine's available parallelism. Under an untripped budget the
    /// answer is bit-identical to the sequential one (see
    /// [`crate::refinement::verify_center`]'s determinism note); under
    /// a tripped budget parallel workers may get further before the
    /// trip, so the anytime answer can legitimately differ (its gap
    /// bound stays sound). Budgets remain global: all workers charge
    /// the same meter.
    pub refine_threads: usize,
    /// Oracle serving refinement-time `dist_RN` rows and columns. The
    /// default [`DistanceBackend::Ch`] uses the road index's contraction
    /// hierarchy when it carries one and degrades to Dijkstra otherwise;
    /// answers are bit-identical either way. The sampling-based
    /// approximate path always uses Dijkstra.
    pub distance_backend: DistanceBackend,
    /// What to serve when the exact pipeline cannot produce an answer
    /// (see [`DegradationPolicy`]). The default, `FailFast`, preserves
    /// the legacy failure behavior exactly.
    pub degradation: DegradationPolicy,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            collect_stats: false,
            use_interest_pruning: true,
            use_social_distance_pruning: true,
            use_matching_pruning: true,
            use_delta_pruning: true,
            use_tight_mbr_test: false,
            refine_threads: 1,
            distance_backend: DistanceBackend::Ch,
            degradation: DegradationPolicy::default(),
        }
    }
}

/// The GP-SSN engine: both indexes plus the query algorithm.
pub struct GpSsnEngine<'a> {
    ssn: &'a SpatialSocialNetwork,
    road_index: RoadIndex,
    social_index: SocialIndex,
    cfg: EngineConfig,
    /// Shared LRU buffer pool (when configured): persists across queries
    /// like a real database buffer manager, so hot pages (roots, upper
    /// index levels) stop costing physical reads after warm-up.
    page_cache: Option<std::sync::Mutex<gpssn_index::io::PageCache>>,
    /// Exact 2-hop labels of `G_s` (when configured).
    hop_labels: Option<gpssn_graph::HopLabels>,
    /// Cross-query ball / `dist_RN` cache (when configured).
    distance_cache: Option<DistanceCache>,
    /// Circuit breaker guarding the CH oracle across every query this
    /// engine serves: repeated CH faults open it, redirecting distance
    /// batches to the bit-identical Dijkstra path until a half-open
    /// probe succeeds (see [`crate::breaker`]).
    ch_breaker: CircuitBreaker,
}

/// Work items of the road-side best-first traversal.
#[derive(Debug, Clone, Copy)]
enum Item {
    Node(u32),
    Center(PoiId),
}

impl<'a> GpSsnEngine<'a> {
    /// Builds the engine: pivot selection (Algorithm 1), `I_R`, `I_S`.
    ///
    /// Index construction honours the build-thread knobs on
    /// `cfg.road_index.build` / `cfg.social_index.build` (see
    /// [`EngineConfig::with_build_threads`]); the built indexes are
    /// bit-identical for every thread count. With a metrics-enabled
    /// telemetry sink attached, each build stage's wall clock lands in
    /// the `gpssn_build_stage_ns{stage}` histogram and the CH
    /// contraction's witness-workspace reuse counters in
    /// `gpssn_build_witness_{resets,recycles}_total`.
    pub fn build(ssn: &'a SpatialSocialNetwork, cfg: EngineConfig) -> Self {
        let mut stages: Vec<(&'static str, std::time::Duration)> = Vec::new();
        let t0 = Instant::now();
        let mut ps_road = cfg.pivot_select.clone();
        ps_road.count = cfg.num_road_pivots;
        let road_pivot_ids = select_road_pivots(ssn.road(), &ps_road);
        let road_pivots =
            RoadPivots::new_with_threads(ssn.road(), road_pivot_ids, cfg.road_index.build.threads);
        stages.push(("road_pivots", t0.elapsed()));

        let t0 = Instant::now();
        let mut ps_soc = cfg.pivot_select.clone();
        ps_soc.count = cfg.num_social_pivots;
        let social_pivot_ids = select_social_pivots(ssn.social(), &ps_soc);
        let social_pivots = SocialPivots::new_with_threads(
            ssn.social(),
            social_pivot_ids,
            cfg.social_index.build.threads,
        );
        stages.push(("social_pivots", t0.elapsed()));

        let (road_index, road_stages) = RoadIndex::build_with_stages(
            ssn.road(),
            ssn.pois(),
            road_pivots,
            cfg.road_index.clone(),
        );
        let (social_index, social_stages) = SocialIndex::build_with_stages(
            ssn,
            social_pivots,
            road_index.pivots(),
            &cfg.social_index,
        );
        if let Some(o) = cfg.obs.as_deref().filter(|o| o.metrics_on()) {
            for (name, d) in stages
                .iter()
                .chain(road_stages.stages.iter())
                .chain(social_stages.stages.iter())
            {
                o.observe(
                    "gpssn_build_stage_ns",
                    &[("stage", name)],
                    d.as_nanos().min(u64::MAX as u128) as u64,
                );
            }
            if let Some(ch) = road_stages.ch {
                o.inc("gpssn_build_witness_resets_total", &[], ch.witness_resets);
                o.inc(
                    "gpssn_build_witness_recycles_total",
                    &[],
                    ch.witness_recycles,
                );
                o.inc("gpssn_build_ch_shortcuts_total", &[], ch.shortcuts as u64);
                o.inc("gpssn_build_ch_rounds_total", &[], u64::from(ch.rounds));
            }
        }
        let page_cache = cfg
            .page_cache_capacity
            .map(|cap| std::sync::Mutex::new(gpssn_index::io::PageCache::new(cap)));
        let hop_labels = cfg
            .exact_social_distance
            .then(|| gpssn_graph::HopLabels::build(ssn.social().graph()));
        let distance_cache = cfg.distance_cache.as_ref().map(DistanceCache::new);
        GpSsnEngine {
            ssn,
            road_index,
            social_index,
            cfg,
            page_cache,
            hop_labels,
            distance_cache,
            ch_breaker: CircuitBreaker::new(BreakerConfig::default()),
        }
    }

    /// The circuit breaker guarding the CH distance backend.
    pub fn ch_breaker(&self) -> &CircuitBreaker {
        &self.ch_breaker
    }

    /// The engine's cross-query distance cache, if configured.
    pub fn distance_cache(&self) -> Option<&DistanceCache> {
        self.distance_cache.as_ref()
    }

    /// Publishes the distance cache's lifetime counters and per-shard
    /// occupancy/capacity gauges into the attached telemetry registry.
    /// Values are absolute (set, not added), so calling this repeatedly
    /// — e.g. right before scraping — never double-counts. A no-op
    /// without an active metrics sink or a configured cache.
    pub fn publish_cache_metrics(&self) {
        let (Some(o), Some(cache)) = (
            self.obs().filter(|o| o.metrics_on()),
            self.distance_cache.as_ref(),
        ) else {
            return;
        };
        let reg = o.registry();
        let life = cache.lifetime_stats();
        for (kind, hits, misses, evictions) in [
            (
                "ball",
                life.ball_hits,
                life.ball_misses,
                life.ball_evictions,
            ),
            (
                "dist",
                life.dist_hits,
                life.dist_misses,
                life.dist_evictions,
            ),
        ] {
            reg.set_counter("gpssn_cache_lifetime_hits_total", &[("kind", kind)], hits);
            reg.set_counter(
                "gpssn_cache_lifetime_misses_total",
                &[("kind", kind)],
                misses,
            );
            reg.set_counter("gpssn_cache_evictions_total", &[("kind", kind)], evictions);
        }
        reg.set_gauge("gpssn_cache_hit_rate", &[], life.hit_rate());
        for (kind, shards) in [
            ("ball", cache.ball_shard_occupancy()),
            ("dist", cache.dist_shard_occupancy()),
        ] {
            for (i, s) in shards.iter().enumerate() {
                let shard = i.to_string();
                reg.set_gauge(
                    "gpssn_cache_shard_entries",
                    &[("kind", kind), ("shard", &shard)],
                    s.entries as f64,
                );
                reg.set_gauge(
                    "gpssn_cache_shard_capacity",
                    &[("kind", kind), ("shard", &shard)],
                    s.capacity as f64,
                );
            }
        }
    }

    /// The CH oracle serving this query's `dist_RN` batches, honouring
    /// [`QueryOptions::distance_backend`]: `None` under the Dijkstra
    /// backend or when the road index carries no oracle.
    fn ch_for(&self, opts: &QueryOptions) -> Option<&gpssn_graph::ChOracle> {
        match opts.distance_backend {
            DistanceBackend::Dijkstra => None,
            DistanceBackend::Ch => self.road_index.ch(),
        }
    }

    /// The attached telemetry sink when it is live (metrics or tracing
    /// enabled); dormant and absent sinks both come back `None`, so
    /// every instrumentation site downstream stays a single check.
    fn obs(&self) -> Option<&Obs> {
        self.cfg.obs.as_deref().filter(|o| o.active())
    }

    /// The telemetry sink attached at build time, regardless of whether
    /// metrics or tracing are currently enabled on it.
    pub fn obs_handle(&self) -> Option<&Arc<Obs>> {
        self.cfg.obs.as_ref()
    }

    /// The spatial-social network this engine serves.
    pub fn ssn(&self) -> &SpatialSocialNetwork {
        self.ssn
    }

    /// The road index `I_R`.
    pub fn road_index(&self) -> &RoadIndex {
        &self.road_index
    }

    /// The social index `I_S`.
    pub fn social_index(&self) -> &SocialIndex {
        &self.social_index
    }

    /// Runs a query with default options, panicking on invalid input.
    /// Prefer [`GpSsnEngine::try_query`] in serving paths.
    pub fn query(&self, q: &GpSsnQuery) -> QueryOutcome {
        self.query_with_options(q, &QueryOptions::default())
    }

    /// Runs a query with explicit options, panicking on invalid input.
    /// Prefer [`GpSsnEngine::try_query_with_options`] in serving paths.
    pub fn query_with_options(&self, q: &GpSsnQuery, opts: &QueryOptions) -> QueryOutcome {
        unwrap_outcome(self.try_query_with_options(q, opts, &QueryBudget::unlimited()))
    }

    /// Fallible query with default options under a resource budget.
    ///
    /// Validation failures return `Err` ([`GpSsnError::InvalidQuery`],
    /// [`GpSsnError::UnknownUser`], [`GpSsnError::RadiusOutOfIndexRange`],
    /// [`GpSsnError::Infeasible`]); a query that *starts* always returns
    /// `Ok` and reports budget trips through
    /// [`QueryOutcome::completion`] — the anytime contract: the best
    /// verified answer so far plus an optimality-gap bound, or
    /// [`Completion::Failed`] when nothing was verified in time.
    pub fn try_query(
        &self,
        q: &GpSsnQuery,
        budget: &QueryBudget,
    ) -> Result<QueryOutcome, GpSsnError> {
        self.try_query_with_options(q, &QueryOptions::default(), budget)
    }

    /// Fallible query with explicit options under a resource budget. See
    /// [`GpSsnEngine::try_query`] for the error/anytime contract.
    pub fn try_query_with_options(
        &self,
        q: &GpSsnQuery,
        opts: &QueryOptions,
        budget: &QueryBudget,
    ) -> Result<QueryOutcome, GpSsnError> {
        self.validate_query(q)?;
        self.validate_radius(q)?;
        self.check_static_feasibility(q)?;
        let meter = BudgetState::new(budget);
        let obs = self.obs();
        let _qspan = obs
            .filter(|o| o.tracing_on())
            .map(|o| o.tracer().span("query"));

        let start = Instant::now();
        let io = IoCounter::new();
        let mut stats = PruningStats {
            users_total: self.ssn.social().num_users(),
            pois_total: self.ssn.pois().len(),
            ..Default::default()
        };

        let candidates = gpssn_obs::phase(obs, "prune_social", || {
            self.social_phase(q, opts, &io, &mut stats)
        });
        let (mut answer, delta, mut completion) =
            self.road_phase(q, opts, &candidates, &io, &mut stats, &meter, obs);

        // Bottom rung of the degradation ladder: the exact pipeline
        // failed outright, so spend a small fresh budget on the sampling
        // estimator before reporting failure.
        if opts.degradation == DegradationPolicy::Ladder
            && answer.is_none()
            && matches!(completion, Completion::Failed(_))
        {
            if let Some(ans) = gpssn_obs::phase(obs, "degrade_sampling", || {
                self.sampling_rescue(q, opts, &candidates, &io)
            }) {
                answer = Some(ans);
                completion = Completion::DegradedSampling;
            }
        }

        if opts.collect_stats {
            self.independent_rule_measurement(q, delta, &mut stats);
            stats.pairs_total_estimate =
                binomial_f64(self.ssn.social().num_users(), q.tau) * self.ssn.pois().len() as f64;
        }
        stats.candidate_users = candidates.len();

        let out = QueryOutcome {
            answer,
            completion,
            metrics: finish_metrics(start, &io, &meter, stats),
        };
        record_query(obs, "exact", &out, &meter);
        Ok(out)
    }

    /// `Err(InvalidQuery)` / `Err(UnknownUser)` for malformed parameters.
    fn validate_query(&self, q: &GpSsnQuery) -> Result<(), GpSsnError> {
        q.validate().map_err(GpSsnError::InvalidQuery)?;
        let num_users = self.ssn.social().num_users();
        if q.user as usize >= num_users {
            return Err(GpSsnError::UnknownUser {
                user: q.user,
                num_users,
            });
        }
        Ok(())
    }

    /// `Err(RadiusOutOfIndexRange)` when `r` is outside what `I_R` serves.
    fn validate_radius(&self, q: &GpSsnQuery) -> Result<(), GpSsnError> {
        let (r_min, r_max) = (self.cfg.road_index.r_min, self.cfg.road_index.r_max);
        if !(q.radius >= r_min && q.radius <= r_max) {
            return Err(GpSsnError::RadiusOutOfIndexRange {
                radius: q.radius,
                r_min,
                r_max,
            });
        }
        Ok(())
    }

    /// `Err(Infeasible)` for queries provably unanswerable before any
    /// index work: `τ` beyond the population, or a friendless query user
    /// with `τ ≥ 2` (a connected group of that size cannot exist).
    fn check_static_feasibility(&self, q: &GpSsnQuery) -> Result<(), GpSsnError> {
        let m = self.ssn.social().num_users();
        if q.tau > m {
            return Err(GpSsnError::Infeasible {
                reason: format!(
                    "group size tau = {} exceeds the user population m = {m}",
                    q.tau
                ),
            });
        }
        if q.tau >= 2 && self.ssn.social().graph().neighbors(q.user).is_empty() {
            return Err(GpSsnError::Infeasible {
                reason: format!(
                    "query user {} has no friends, so no connected group of size {} exists",
                    q.user, q.tau
                ),
            });
        }
        Ok(())
    }

    /// Answers a batch of queries in parallel on `threads` OS threads
    /// (the engine is immutable after construction, so queries share the
    /// indexes freely). `threads = 0` uses the machine's available
    /// parallelism, and thread counts beyond the batch size are clamped.
    /// Results come back in input order. Errors panic per the legacy
    /// contract; prefer [`GpSsnEngine::try_query_batch`] in serving
    /// paths.
    pub fn query_batch(&self, queries: &[GpSsnQuery], threads: usize) -> Vec<QueryOutcome> {
        self.try_query_batch(queries, threads, &QueryBudget::unlimited())
            .into_iter()
            .map(unwrap_outcome)
            .collect()
    }

    /// Panic-isolated parallel batch under a shared per-query budget.
    ///
    /// Each query is answered as by [`GpSsnEngine::try_query`];
    /// `threads = 0` means available parallelism and larger counts are
    /// clamped to the batch size. A panic inside one query is caught at
    /// that query's boundary and surfaced as [`GpSsnError::Internal`] in
    /// its slot — the rest of the batch still completes, in input order.
    pub fn try_query_batch(
        &self,
        queries: &[GpSsnQuery],
        threads: usize,
        budget: &QueryBudget,
    ) -> Vec<Result<QueryOutcome, GpSsnError>> {
        self.try_query_batch_with_options(queries, threads, &QueryOptions::default(), budget)
    }

    /// [`GpSsnEngine::try_query_batch`] with explicit per-query options —
    /// notably [`QueryOptions::degradation`]: under
    /// [`DegradationPolicy::Ladder`] refinement faults degrade answers
    /// down the ladder instead of surfacing as `Internal` errors in the
    /// slot. Queries are scheduled by work stealing (see
    /// [`BatchSchedule::WorkStealing`]); answers are bit-identical to
    /// the sequential path either way.
    pub fn try_query_batch_with_options(
        &self,
        queries: &[GpSsnQuery],
        threads: usize,
        opts: &QueryOptions,
        budget: &QueryBudget,
    ) -> Vec<Result<QueryOutcome, GpSsnError>> {
        self.try_query_batch_scheduled(queries, threads, opts, budget, BatchSchedule::WorkStealing)
    }

    /// [`GpSsnEngine::try_query_batch_with_options`] with an explicit
    /// [`BatchSchedule`]. The static-chunk schedule exists for A/B
    /// comparison (equivalence tests, the `serve_report` bench); serving
    /// paths should let the default work stealing balance skewed
    /// per-query costs.
    // Audited expect: the workers fill every slot exactly once before
    // the scope exits (each index is claimed by exactly one worker); an
    // empty slot is unreachable.
    #[allow(clippy::expect_used)]
    pub fn try_query_batch_scheduled(
        &self,
        queries: &[GpSsnQuery],
        threads: usize,
        opts: &QueryOptions,
        budget: &QueryBudget,
        schedule: BatchSchedule,
    ) -> Vec<Result<QueryOutcome, GpSsnError>> {
        let threads = resolve_threads(threads, queries.len());
        let _capture = crate::panic_capture::capture_scope();
        let run_one = |q: &GpSsnQuery| -> Result<QueryOutcome, GpSsnError> {
            run_isolated(self, q, opts, budget)
        };
        if threads == 1 || queries.len() <= 1 {
            return queries.iter().map(run_one).collect();
        }
        // Each worker accumulates metrics into a private registry; the
        // merge below folds them into the base registry in worker order.
        // Counter and histogram merges are element-wise additions, so
        // batch totals are reproducible under any thread interleaving
        // and any schedule (see `Obs::with_registry`).
        let obs = self.obs().filter(|o| o.metrics_on());
        let worker_regs: Vec<Arc<gpssn_obs::Registry>> = (0..threads)
            .map(|_| Arc::new(gpssn_obs::Registry::new()))
            .collect();
        let mut slots: Vec<Option<Result<QueryOutcome, GpSsnError>>> =
            (0..queries.len()).map(|_| None).collect();
        let run_one = &run_one;
        let redirect = obs.is_some();
        // Work stealing: a shared cursor hands out one query at a time,
        // so a worker stuck on a skewed query (large radius, dense
        // social neighborhood) never strands a tail of cheap queries
        // behind it — the other workers drain them. Static chunking
        // precomputes contiguous ranges instead.
        let cursor = AtomicUsize::new(0);
        let chunk = queries.len().div_ceil(threads);
        let spawned = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let reg = Arc::clone(&worker_regs[t]);
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut claimed: Vec<(usize, Result<QueryOutcome, GpSsnError>)> =
                            Vec::new();
                        let mut run = || match schedule {
                            BatchSchedule::WorkStealing => loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= queries.len() {
                                    break;
                                }
                                claimed.push((i, run_one(&queries[i])));
                            },
                            BatchSchedule::StaticChunk => {
                                let lo = (t * chunk).min(queries.len());
                                let hi = ((t + 1) * chunk).min(queries.len());
                                for (i, q) in queries.iter().enumerate().take(hi).skip(lo) {
                                    claimed.push((i, run_one(q)));
                                }
                            }
                        };
                        if redirect {
                            Obs::with_registry(reg, &mut run);
                        } else {
                            run();
                        }
                        claimed
                    })
                })
                .collect();
            let spawned = handles.len();
            for h in handles {
                let claimed = h
                    .join()
                    .expect("batch workers never panic: every query is panic-isolated");
                for (i, r) in claimed {
                    debug_assert!(slots[i].is_none(), "query {i} claimed twice");
                    slots[i] = Some(r);
                }
            }
            spawned
        });
        // One registry per spawned worker, no more, no less — the old
        // static-chunk path derived the two counts independently (both
        // from `div_ceil`), which left ghost registries when trailing
        // chunks were empty.
        assert_eq!(
            worker_regs.len(),
            spawned,
            "metrics registry per spawned worker"
        );
        if let Some(o) = obs {
            for reg in &worker_regs {
                o.base_registry().merge_from(reg);
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    /// Approximate query using the paper's future-work *subset sampling*
    /// (Section 5): the index traversal is unchanged, but refinement
    /// draws `samples_per_center` random connected groups instead of
    /// enumerating. Any returned answer satisfies Definition 5 exactly;
    /// it may be suboptimal (or missed) — see the ablation benches for
    /// the quality/time trade-off.
    pub fn query_approximate(
        &self,
        q: &GpSsnQuery,
        samples_per_center: usize,
        seed: u64,
    ) -> QueryOutcome {
        unwrap_outcome(self.try_query_approximate(
            q,
            samples_per_center,
            seed,
            &QueryBudget::unlimited(),
        ))
    }

    /// Fallible [`GpSsnEngine::query_approximate`] under a resource
    /// budget; same error/anytime contract as [`GpSsnEngine::try_query`]
    /// (sampled draws count against `max_groups_enumerated`).
    pub fn try_query_approximate(
        &self,
        q: &GpSsnQuery,
        samples_per_center: usize,
        seed: u64,
        budget: &QueryBudget,
    ) -> Result<QueryOutcome, GpSsnError> {
        self.validate_query(q)?;
        self.validate_radius(q)?;
        self.check_static_feasibility(q)?;
        let meter = BudgetState::new(budget);
        let obs = self.obs();
        let _qspan = obs
            .filter(|o| o.tracing_on())
            .map(|o| o.tracer().span("query"));
        let start = Instant::now();
        let io = IoCounter::new();
        let opts = QueryOptions::default();
        let mut stats = PruningStats {
            users_total: self.ssn.social().num_users(),
            pois_total: self.ssn.pois().len(),
            ..Default::default()
        };
        let candidates = gpssn_obs::phase(obs, "prune_social", || {
            self.social_phase(q, &opts, &io, &mut stats)
        });
        let (mut centers, mut outstanding) = gpssn_obs::phase(obs, "prune_road", || {
            self.collect_centers(q, &opts, &candidates, &io, &mut stats, &meter)
        });
        centers.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut best: Option<GpSsnAnswer> = None;
        let mut best_val = f64::INFINITY;
        gpssn_obs::phase(obs, "sample", || {
            for &(lb, center) in &centers {
                if lb >= best_val {
                    break;
                }
                if meter.is_tripped() {
                    outstanding = outstanding.min(lb);
                    break;
                }
                let filtered = self.filter_candidates_for_center(&candidates, center, best_val);
                if let Some(ans) = crate::sampling::verify_center_sampled(
                    self.ssn,
                    q,
                    &filtered,
                    center,
                    best_val,
                    samples_per_center,
                    &mut rng,
                    &meter,
                ) {
                    best_val = ans.maxdist;
                    best = Some(ans);
                }
                if meter.is_tripped() {
                    outstanding = outstanding.min(lb);
                    break;
                }
            }
        });
        let completion = completion_of(&meter, best_val, outstanding);
        let out = QueryOutcome {
            answer: best,
            completion,
            metrics: finish_metrics(start, &io, &meter, stats),
        };
        record_query(obs, "approximate", &out, &meter);
        Ok(out)
    }

    /// Top-`k` GP-SSN: the `k` best answers over *distinct candidate
    /// centers* (each center contributes its optimal feasible group),
    /// sorted by ascending `maxdist`. `k = 1` coincides with
    /// [`GpSsnEngine::query`]'s optimum.
    pub fn query_top_k(&self, q: &GpSsnQuery, k: usize) -> Vec<GpSsnAnswer> {
        assert!(k >= 1, "k must be positive");
        match self.try_query_top_k(q, k, &QueryBudget::unlimited()) {
            Ok(out) => out.answers,
            Err(GpSsnError::Infeasible { .. }) => Vec::new(),
            Err(e) => panic_like_legacy(e),
        }
    }

    /// Fallible top-`k` under a resource budget. Under truncation the
    /// returned answers are all verified; [`TopKOutcome::completion`]
    /// carries the optimality gap of the `k`-th slot
    /// (`f64::INFINITY` when fewer than `k` answers were verified).
    // Audited expects: `best_k.last()` is only read behind explicit
    // `best_k.len() >= k` (k >= 1) guards.
    #[allow(clippy::expect_used)]
    pub fn try_query_top_k(
        &self,
        q: &GpSsnQuery,
        k: usize,
        budget: &QueryBudget,
    ) -> Result<TopKOutcome, GpSsnError> {
        if k == 0 {
            return Err(GpSsnError::InvalidQuery("k must be positive".to_string()));
        }
        self.validate_query(q)?;
        self.validate_radius(q)?;
        self.check_static_feasibility(q)?;
        let meter = BudgetState::new(budget);
        let obs = self.obs();
        let _qspan = obs
            .filter(|o| o.tracing_on())
            .map(|o| o.tracer().span("query"));
        let io = IoCounter::new();
        let opts = QueryOptions {
            use_delta_pruning: false,
            ..Default::default()
        };
        let mut stats = PruningStats::default();
        let candidates = gpssn_obs::phase(obs, "prune_social", || {
            self.social_phase(q, &opts, &io, &mut stats)
        });
        let (mut centers, mut outstanding) = gpssn_obs::phase(obs, "prune_road", || {
            self.collect_centers(q, &opts, &candidates, &io, &mut stats, &meter)
        });
        centers.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let refine_span = obs
            .filter(|o| o.tracing_on())
            .map(|o| o.tracer().span("refine"));
        let span_parent = refine_span.as_ref().map_or(0, |s| s.id());
        let refine_started = obs.map(|_| Instant::now());
        let mut ws = DijkstraWorkspace::new();
        let mut chws = gpssn_graph::ChSearch::new();
        let mut ctx = VerifyContext {
            ws: &mut ws,
            ch: self.ch_for(&opts).map(|oracle| ChBackend {
                oracle,
                search: &mut chws,
            }),
            cache: self.distance_cache.as_ref(),
            breaker: Some(&self.ch_breaker),
            budget: &meter,
            obs,
            span_parent,
        };
        let mut best_k: Vec<GpSsnAnswer> = Vec::new();
        for &(lb, center) in &centers {
            let bound = if best_k.len() < k {
                f64::INFINITY
            } else {
                best_k.last().expect("non-empty").maxdist
            };
            if lb >= bound {
                break;
            }
            if meter.is_tripped() {
                outstanding = outstanding.min(lb);
                break;
            }
            let Some(v) = verify_center_guarded(
                self.ssn,
                q,
                &candidates,
                center,
                bound,
                self.cfg.enumeration_cap,
                &mut ctx,
                opts.degradation,
            ) else {
                outstanding = outstanding.min(lb);
                continue;
            };
            if let Some(ans) = v.answer {
                if !best_k
                    .iter()
                    .any(|b| b.users == ans.users && b.pois == ans.pois)
                {
                    best_k.push(ans);
                    best_k.sort_by(|a, b| a.maxdist.total_cmp(&b.maxdist));
                    best_k.truncate(k);
                }
            }
            if meter.is_tripped() {
                outstanding = outstanding.min(lb);
                break;
            }
        }
        record_phase_ns(obs, "refine", refine_started);
        drop(refine_span);
        meter.note_workspace(
            ws.resets() + chws.resets(),
            ws.recycles() + chws.recycles(),
            chws.unpacks(),
        );
        if let Some(o) = obs.filter(|o| o.metrics_on()) {
            o.inc("gpssn_queries_total", &[("path", "top_k")], 1);
        }
        let kth_val = if best_k.len() >= k {
            best_k.last().expect("non-empty").maxdist
        } else {
            f64::INFINITY
        };
        // Absorbed refinement faults count as cuts too: the faulted
        // centers' lower bounds are folded into `outstanding`, so the
        // exactness claim stays honest without a budget trip.
        let cut = meter.trip().is_some() || meter.faults() > 0;
        let completion = if !cut || outstanding >= kth_val {
            Completion::Exact
        } else if best_k.is_empty() {
            Completion::Failed(cut_error(&meter))
        } else if best_k.len() < k {
            Completion::TruncatedWithGap(f64::INFINITY)
        } else {
            Completion::TruncatedWithGap(kth_val - outstanding)
        };
        Ok(TopKOutcome {
            answers: best_k,
            completion,
        })
    }

    /// The ladder's sampling rung: re-collects candidate centers under a
    /// small *fresh* work budget (the original meter is spent or
    /// faulted) and draws random connected groups per center — the
    /// paper's §5 future-work subset sampler. Any answer returned
    /// satisfies Definition 5 exactly; only its optimality is unknown.
    /// Deterministic: the RNG is seeded from the query user and the
    /// budget is counted in work units, not wall-clock time. The
    /// sampler runs on plain Dijkstra, touching none of the CH or
    /// refinement machinery the faults came from.
    fn sampling_rescue(
        &self,
        q: &GpSsnQuery,
        opts: &QueryOptions,
        candidates: &[UserId],
        io: &IoCounter,
    ) -> Option<GpSsnAnswer> {
        const RESCUE_SAMPLES: usize = 32;
        const RESCUE_CENTERS: usize = 64;
        let budget = QueryBudget {
            max_heap_pops: Some(100_000),
            max_groups_enumerated: Some(20_000),
            max_dijkstra_settles: Some(2_000_000),
            deadline: None,
        };
        let meter = BudgetState::new(&budget);
        let mut stats = PruningStats::default();
        let (mut centers, _) = self.collect_centers(q, opts, candidates, io, &mut stats, &meter);
        centers.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED_0000 ^ u64::from(q.user));
        let mut best: Option<GpSsnAnswer> = None;
        let mut best_val = f64::INFINITY;
        for &(lb, center) in centers.iter().take(RESCUE_CENTERS) {
            if lb >= best_val || meter.is_tripped() {
                break;
            }
            let filtered = self.filter_candidates_for_center(candidates, center, best_val);
            if let Some(ans) = crate::sampling::verify_center_sampled(
                self.ssn,
                q,
                &filtered,
                center,
                best_val,
                RESCUE_SAMPLES,
                &mut rng,
                &meter,
            ) {
                best_val = ans.maxdist;
                best = Some(ans);
            }
        }
        best
    }

    /// Traversal-only road phase: collects candidate centers with their
    /// lower bounds, without refinement (shared by the approximate and
    /// top-k paths). δ-cut items are dropped, not deferred. The second
    /// return value is the smallest lower bound left unexplored when the
    /// budget tripped mid-traversal (`f64::INFINITY` otherwise).
    fn collect_centers(
        &self,
        q: &GpSsnQuery,
        opts: &QueryOptions,
        candidates: &[UserId],
        io: &IoCounter,
        stats: &mut PruningStats,
        meter: &BudgetState,
    ) -> (Vec<(f64, PoiId)>, f64) {
        let idx = &self.road_index;
        let uq_interest = self.ssn.social().interest(q.user);
        let uq_rn = self.social_index.user_rn_dists(q.user);
        let h = idx.pivots().len();
        let mut scand_ub = vec![f64::INFINITY; h];
        for (k, s) in scand_ub.iter_mut().enumerate() {
            *s = uq_rn[k];
        }
        for &u in candidates {
            for (k, &d) in self.social_index.user_rn_dists(u).iter().enumerate() {
                scand_ub[k] = scand_ub[k].max(d);
            }
        }
        let mut heap = MinHeap::new();
        let mut centers = Vec::new();
        let mut delta = f64::INFINITY;
        let mut outstanding = f64::INFINITY;
        heap.push(0.0, Item::Node(idx.tree().root()));
        while let Some((lb, item)) = heap.pop() {
            meter.note_pop();
            if meter.is_tripped() {
                outstanding = lb;
                break;
            }
            if opts.use_delta_pruning && lb > delta {
                break;
            }
            match item {
                Item::Node(n) => {
                    self.touch(io, gpssn_index::io::page_ids::road(n));
                    self.expand_node(
                        q,
                        opts,
                        n,
                        uq_interest,
                        uq_rn,
                        &scand_ub,
                        &mut heap,
                        &mut centers,
                        &mut delta,
                        stats,
                        false,
                    );
                }
                Item::Center(o) => centers.push((lb, o)),
            }
        }
        (centers, outstanding)
    }

    // ------------------------------------------------------------------
    // Phase 1: social traversal (Algorithm 2 lines 4–10, 29)
    // ------------------------------------------------------------------

    fn social_phase(
        &self,
        q: &GpSsnQuery,
        opts: &QueryOptions,
        io: &IoCounter,
        stats: &mut PruningStats,
    ) -> Vec<UserId> {
        let idx = &self.social_index;
        let uq_sn = idx.user_sn_dists(q.user);
        let region = PruningRegion::new(self.ssn.social().interest(q.user), q.gamma);
        let uq_ancestors = self.ancestors_of(q.user);

        let mut frontier = vec![idx.root()];
        self.touch(io, gpssn_index::io::page_ids::social(idx.root()));
        // Expand to the leaves, pruning nodes.
        loop {
            let all_leaves = frontier.iter().all(|&id| idx.node(id).children.is_empty());
            if all_leaves {
                break;
            }
            let mut next = Vec::new();
            for &id in &frontier {
                let node = idx.node(id);
                if node.children.is_empty() {
                    next.push(id); // already a leaf; keep for object stage
                    continue;
                }
                for &child in &node.children {
                    self.touch(io, gpssn_index::io::page_ids::social(child));
                    let c = idx.node(child);
                    let by_dist = opts.use_social_distance_pruning
                        && prune_node_by_social_distance(uq_sn, &c.lb_sn, &c.ub_sn, q.tau);
                    let by_interest = opts.use_interest_pruning
                        && if opts.use_tight_mbr_test {
                            region.prunes_mbr_tight(&c.ub_w)
                        } else {
                            region.prunes_mbr(&c.lb_w, &c.ub_w)
                        };
                    if (by_dist || by_interest) && !uq_ancestors.contains(&child) {
                        stats.users_pruned_index += c.user_count;
                    } else {
                        next.push(child);
                    }
                }
            }
            frontier = next;
        }

        // Object level over leaf members (Lemmas 3 and 4).
        let mut candidates = Vec::new();
        for &leaf in &frontier {
            for &u in &idx.node(leaf).users {
                if u == q.user {
                    candidates.push(u);
                    continue;
                }
                let by_dist = opts.use_social_distance_pruning
                    && match &self.hop_labels {
                        // Exact mode: the true dist_SN replaces the bound.
                        Some(labels) => labels.dist(q.user, u) as usize >= q.tau,
                        None => prune_user_by_social_distance(uq_sn, idx.user_sn_dists(u), q.tau),
                    };
                let by_interest =
                    opts.use_interest_pruning && region.prunes_point(self.ssn.social().interest(u));
                if by_dist || by_interest {
                    stats.users_pruned_object += 1;
                } else {
                    candidates.push(u);
                }
            }
        }
        if !candidates.contains(&q.user) {
            candidates.push(q.user);
        }

        // Corollary 2.
        if opts.use_interest_pruning {
            let before = candidates.len();
            candidates = corollary2_filter(&candidates, q.user, q.tau, q.gamma, |a, b| {
                self.ssn.social().score(a, b)
            });
            stats.users_pruned_object += before - candidates.len();
        }
        candidates
    }

    /// Node ids on the root-to-leaf path containing `user`; these nodes
    /// are never pruned on the social side (the query user must survive).
    fn ancestors_of(&self, user: UserId) -> Vec<u32> {
        let idx = &self.social_index;
        let mut path = Vec::new();
        fn dfs(idx: &SocialIndex, node: u32, user: UserId, path: &mut Vec<u32>) -> bool {
            path.push(node);
            let n = idx.node(node);
            if n.children.is_empty() {
                if n.users.contains(&user) {
                    return true;
                }
            } else {
                for &c in &n.children {
                    if dfs(idx, c, user, path) {
                        return true;
                    }
                }
            }
            path.pop();
            false
        }
        dfs(idx, idx.root(), user, &mut path);
        path
    }

    // ------------------------------------------------------------------
    // Phase 2: road traversal + refinement (Algorithm 2 lines 11–31)
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn road_phase(
        &self,
        q: &GpSsnQuery,
        opts: &QueryOptions,
        candidates: &[UserId],
        io: &IoCounter,
        stats: &mut PruningStats,
        meter: &BudgetState,
        obs: Option<&Obs>,
    ) -> (Option<GpSsnAnswer>, f64, Completion) {
        let idx = &self.road_index;
        let uq_interest = self.ssn.social().interest(q.user);
        let uq_rn = self.social_index.user_rn_dists(q.user);

        // If no feasible user group exists at all (independent of R),
        // every center is infeasible: answer None without touching I_R.
        // `None` means the check itself ran out of budget — proceed; the
        // traversal below trips on its first pop and degrades cleanly.
        if self.any_feasible_group(q, candidates, stats, meter) == Some(false) {
            return (None, f64::INFINITY, Completion::Exact);
        }

        // Eq. 16's `max_{u_j ∈ S}` term. The loosest sound choice is the
        // elementwise max over all candidates; we use a much tighter form:
        // per pivot, the `(τ-1)`-th smallest companion distance (the
        // best-case group of u_q plus its τ-1 pivot-closest candidates).
        // This upper-bounds the objective of *some* τ-group — not
        // necessarily a feasible one, which is exactly why δ-cut items go
        // to the deferred list instead of being dropped (see module docs).
        let h = idx.pivots().len();
        let mut scand_ub = vec![0.0f64; h];
        for k in 0..h {
            let mut companions: Vec<f64> = candidates
                .iter()
                .filter(|&&u| u != q.user)
                .map(|&u| self.social_index.user_rn_dists(u)[k])
                .collect();
            companions.sort_by(|a, b| a.total_cmp(b));
            let need = q.tau.saturating_sub(1);
            let kth = if need == 0 {
                0.0
            } else if companions.len() < need {
                f64::INFINITY
            } else {
                companions[need - 1]
            };
            scand_ub[k] = uq_rn[k].max(kth);
        }

        let mut heap = MinHeap::new();
        let mut deferred: Vec<(f64, Item)> = Vec::new();
        let mut centers: Vec<(f64, PoiId)> = Vec::new();
        let mut delta = f64::INFINITY;
        // Smallest lower bound left unresolved when the budget trips:
        // heap pops come out in ascending `lb`, so the lb in hand at the
        // trip bounds everything still queued; deferred items and
        // unverified centers fold in separately.
        let mut outstanding = f64::INFINITY;
        heap.push(0.0, Item::Node(idx.tree().root()));

        gpssn_obs::phase(obs, "prune_road", || {
            while let Some((lb, item)) = heap.pop() {
                meter.note_pop();
                if meter.is_tripped() {
                    outstanding = outstanding.min(lb);
                    break;
                }
                if opts.use_delta_pruning && lb > delta {
                    // Paper line 14: everything remaining is δ-cut. Keep
                    // for the exactness fallback; no I/O is spent on
                    // them now.
                    match item {
                        Item::Node(n) => {
                            stats.pois_pruned_index += idx.node(n).poi_count;
                        }
                        Item::Center(_) => {
                            stats.pois_pruned_object += 1;
                        }
                    }
                    deferred.push((lb, item));
                    continue;
                }
                match item {
                    Item::Node(n) => {
                        self.touch(io, gpssn_index::io::page_ids::road(n));
                        self.expand_node(
                            q,
                            opts,
                            n,
                            uq_interest,
                            uq_rn,
                            &scand_ub,
                            &mut heap,
                            &mut centers,
                            &mut delta,
                            stats,
                            true,
                        );
                    }
                    Item::Center(o) => centers.push((lb, o)),
                }
            }
        });

        // Refinement over surviving centers, cheapest lower bound first
        // (ties broken by center id so every execution mode agrees on
        // the order — the parallel merge below keys on it).
        centers.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        if meter.is_tripped() {
            // Traversal was cut short: every collected center is still
            // unverified, so its lb is outstanding.
            outstanding = centers.iter().fold(outstanding, |m, &(lb, _)| m.min(lb));
        }
        // The refine span is opened by hand (not via `Obs::phase`)
        // because its id seeds `VerifyContext::span_parent`, under which
        // parallel workers hang their cross-thread `verify_center` spans.
        let refine_span = obs
            .filter(|o| o.tracing_on())
            .map(|o| o.tracer().span("refine"));
        let span_parent = refine_span.as_ref().map_or(0, |s| s.id());
        let refine_started = obs.map(|_| Instant::now());
        let refined = self.refine_centers(q, opts, candidates, &centers, meter, obs, span_parent);
        record_phase_ns(obs, "refine", refine_started);
        drop(refine_span);
        stats.pairs_refined += refined.pairs_refined;
        outstanding = outstanding.min(refined.unresolved);
        let mut best = refined.answer;
        let mut best_val = refined.best_val;

        // Exactness fallback: deferred items that still beat the best.
        deferred.sort_by(|a, b| a.0.total_cmp(&b.0));
        if meter.is_tripped() {
            // Deferred work never ran; anything cheaper than the best
            // verified answer is unresolved (folding in resolved items
            // only widens the reported gap — conservative, never wrong).
            outstanding = deferred.iter().fold(outstanding, |m, &(lb, _)| m.min(lb));
        } else {
            let mut ws = DijkstraWorkspace::new();
            let mut chws = gpssn_graph::ChSearch::new();
            let fb_span = obs
                .filter(|o| o.tracing_on())
                .map(|o| o.tracer().span("refine_fallback"));
            let fb_started = obs.map(|_| Instant::now());
            let mut ctx = VerifyContext {
                ws: &mut ws,
                ch: self.ch_for(opts).map(|oracle| ChBackend {
                    oracle,
                    search: &mut chws,
                }),
                cache: self.distance_cache.as_ref(),
                breaker: Some(&self.ch_breaker),
                budget: meter,
                obs,
                span_parent: fb_span.as_ref().map_or(0, |s| s.id()),
            };
            let mut fallback = MinHeap::new();
            for (lb, item) in deferred {
                if lb < best_val {
                    fallback.push(lb, item);
                }
            }
            while let Some((lb, item)) = fallback.pop() {
                if lb >= best_val {
                    break;
                }
                meter.note_pop();
                if meter.is_tripped() {
                    outstanding = outstanding.min(lb);
                    break;
                }
                match item {
                    Item::Node(n) => {
                        self.touch(io, gpssn_index::io::page_ids::road(n));
                        let mut local_centers = Vec::new();
                        self.expand_node(
                            q,
                            opts,
                            n,
                            uq_interest,
                            uq_rn,
                            &scand_ub,
                            &mut fallback,
                            &mut local_centers,
                            &mut delta,
                            stats,
                            false,
                        );
                        for (clb, c) in local_centers {
                            fallback.push(clb, Item::Center(c));
                        }
                    }
                    Item::Center(center) => {
                        let filtered =
                            self.filter_candidates_for_center(candidates, center, best_val);
                        let Some(v) = verify_center_guarded(
                            self.ssn,
                            q,
                            &filtered,
                            center,
                            best_val,
                            self.cfg.enumeration_cap,
                            &mut ctx,
                            opts.degradation,
                        ) else {
                            outstanding = outstanding.min(lb);
                            continue;
                        };
                        stats.pairs_refined += v.subsets_examined;
                        if let Some(ans) = v.answer {
                            best_val = ans.maxdist;
                            best = Some(ans);
                        }
                        if meter.is_tripped() {
                            outstanding = outstanding.min(lb);
                            break;
                        }
                    }
                }
            }
            record_phase_ns(obs, "refine_fallback", fb_started);
            drop(fb_span);
            meter.note_workspace(
                ws.resets() + chws.resets(),
                ws.recycles() + chws.recycles(),
                chws.unpacks(),
            );
        }

        stats.candidate_pois = centers.len();
        let completion = completion_of(meter, best_val, outstanding);
        (best, delta, completion)
    }

    /// Records an access to index page `page`: a physical read unless the
    /// engine's shared buffer pool holds it.
    fn touch(&self, io: &IoCounter, page: u64) {
        match &self.page_cache {
            None => io.touch(),
            Some(pool) => {
                // A panic caught by the batch isolation layer may leave
                // this lock poisoned; the cache tolerates a torn update
                // (worst case: one page access double-counted), so
                // recover the inner value rather than cascade a failure
                // into every later query.
                let mut pool = pool.lock().unwrap_or_else(|p| p.into_inner());
                if !pool.access(page) {
                    io.touch();
                }
            }
        }
    }

    /// Whether any connected `τ`-group containing `u_q` with pairwise
    /// interest `>= γ` exists among the candidates (ignores `R`).
    /// `None` means the check was cut short (budget trip or enumeration
    /// cap) before either outcome was proven.
    fn any_feasible_group(
        &self,
        q: &GpSsnQuery,
        candidates: &[UserId],
        stats: &mut PruningStats,
        meter: &BudgetState,
    ) -> Option<bool> {
        if candidates.len() < q.tau {
            return Some(false);
        }
        let mut allowed = vec![false; self.ssn.social().num_users()];
        for &u in candidates {
            allowed[u as usize] = true;
        }
        let mut found = false;
        let mut complete = true;
        let mut visits = 0u64;
        gpssn_graph::enumerate_connected_subsets(
            self.ssn.social().graph(),
            q.user,
            q.tau,
            Some(&allowed),
            &mut |s| {
                visits += 1;
                meter.note_group();
                if meter.is_tripped() {
                    complete = false;
                    return false;
                }
                if self.ssn.social().pairwise_interest_holds(s, q.gamma) {
                    found = true;
                    return false;
                }
                if visits >= self.cfg.enumeration_cap as u64 {
                    complete = false;
                    return false;
                }
                true
            },
        );
        stats.pairs_refined += visits;
        if found {
            Some(true)
        } else if complete {
            Some(false)
        } else {
            None
        }
    }

    /// Drops candidates whose pivot lower bound to `center` already
    /// reaches `best_val` — they cannot belong to an improving group.
    fn filter_candidates_for_center(
        &self,
        candidates: &[UserId],
        center: PoiId,
        best_val: f64,
    ) -> Vec<UserId> {
        if !best_val.is_finite() {
            return candidates.to_vec();
        }
        let center_rn = &self.road_index.poi(center).pivot_dists;
        candidates
            .iter()
            .copied()
            .filter(|&u| {
                crate::pruning::lb_maxdist_poi(self.social_index.user_rn_dists(u), center_rn)
                    < best_val
            })
            .collect()
    }

    /// Verifies the sorted candidate centers and returns the best
    /// feasible answer, dispatching on [`QueryOptions::refine_threads`].
    /// `centers` must be sorted ascending by `(lb, id)`.
    #[allow(clippy::too_many_arguments)]
    fn refine_centers(
        &self,
        q: &GpSsnQuery,
        opts: &QueryOptions,
        candidates: &[UserId],
        centers: &[(f64, PoiId)],
        meter: &BudgetState,
        obs: Option<&Obs>,
        span_parent: u64,
    ) -> RefineOutcome {
        let threads = resolve_threads(opts.refine_threads, centers.len());
        let ch = self.ch_for(opts);
        let policy = opts.degradation;
        if threads <= 1 {
            self.refine_centers_sequential(
                q,
                candidates,
                centers,
                ch,
                meter,
                obs,
                span_parent,
                policy,
            )
        } else {
            self.refine_centers_parallel(
                q,
                candidates,
                centers,
                threads,
                ch,
                meter,
                obs,
                span_parent,
                policy,
            )
        }
    }

    /// The classical Algorithm-2 refinement loop: ascending-`lb` sweep
    /// with early termination once `lb` reaches the incumbent.
    #[allow(clippy::too_many_arguments)]
    fn refine_centers_sequential(
        &self,
        q: &GpSsnQuery,
        candidates: &[UserId],
        centers: &[(f64, PoiId)],
        ch: Option<&gpssn_graph::ChOracle>,
        meter: &BudgetState,
        obs: Option<&Obs>,
        span_parent: u64,
        policy: DegradationPolicy,
    ) -> RefineOutcome {
        let mut out = RefineOutcome::empty();
        let mut ws = DijkstraWorkspace::new();
        let mut chws = gpssn_graph::ChSearch::new();
        let mut ctx = VerifyContext {
            ws: &mut ws,
            ch: ch.map(|oracle| ChBackend {
                oracle,
                search: &mut chws,
            }),
            cache: self.distance_cache.as_ref(),
            breaker: Some(&self.ch_breaker),
            budget: meter,
            obs,
            span_parent,
        };
        for &(lb, center) in centers {
            if lb >= out.best_val {
                break;
            }
            if meter.is_tripped() {
                out.unresolved = out.unresolved.min(lb);
                break;
            }
            let filtered = self.filter_candidates_for_center(candidates, center, out.best_val);
            let Some(v) = verify_center_guarded(
                self.ssn,
                q,
                &filtered,
                center,
                out.best_val,
                self.cfg.enumeration_cap,
                &mut ctx,
                policy,
            ) else {
                out.unresolved = out.unresolved.min(lb);
                continue;
            };
            out.pairs_refined += v.subsets_examined;
            if let Some(ans) = v.answer {
                out.best_val = ans.maxdist;
                out.answer = Some(ans);
            }
            if meter.is_tripped() {
                // This center's verification was itself cut short, so it
                // remains unresolved (centers are sorted, so `lb` also
                // bounds every center we will now skip).
                out.unresolved = out.unresolved.min(lb);
                break;
            }
        }
        meter.note_workspace(
            ws.resets() + chws.resets(),
            ws.recycles() + chws.recycles(),
            chws.unpacks(),
        );
        out
    }

    /// Parallel center refinement on scoped worker threads.
    ///
    /// Workers claim centers in ascending `(lb, id)` order off a shared
    /// counter and verify against a shared monotone bound stored as
    /// atomic f64 bits (bit patterns of non-negative floats order like
    /// their values). Each verification uses [`bound_above`] of the
    /// incumbent so *equal*-valued answers survive, and the final merge
    /// picks the lexicographically smallest `(value, claim index)`.
    ///
    /// Under an untripped budget this reproduces the sequential answer
    /// bit-for-bit: the sequential winner (the first center in sorted
    /// order achieving the optimum `v`) always satisfies `lb <= v <=
    /// incumbent`, so no worker ever skips it; its verification bound
    /// always exceeds `v`, and [`verify_center`] returns a
    /// bound-independent group; every other center either returns
    /// nothing, a larger value, or an equal value at a larger index —
    /// all of which lose the merge. A tripped budget may legitimately
    /// differ from the sequential run (workers got further before the
    /// trip); the reported gap stays sound because every claimed-but-
    /// unfinished center folds its `lb` into `unresolved`.
    #[allow(clippy::too_many_arguments)]
    fn refine_centers_parallel(
        &self,
        q: &GpSsnQuery,
        candidates: &[UserId],
        centers: &[(f64, PoiId)],
        threads: usize,
        ch: Option<&gpssn_graph::ChOracle>,
        meter: &BudgetState,
        obs: Option<&Obs>,
        span_parent: u64,
        policy: DegradationPolicy,
    ) -> RefineOutcome {
        let next = AtomicUsize::new(0);
        let best_bits = AtomicU64::new(f64::INFINITY.to_bits());
        let worker = |claims: usize| {
            let mut ws = DijkstraWorkspace::new();
            let mut chws = gpssn_graph::ChSearch::new();
            let mut ctx = VerifyContext {
                ws: &mut ws,
                ch: ch.map(|oracle| ChBackend {
                    oracle,
                    search: &mut chws,
                }),
                cache: self.distance_cache.as_ref(),
                breaker: Some(&self.ch_breaker),
                budget: meter,
                obs,
                span_parent,
            };
            let mut local: Option<(f64, usize, GpSsnAnswer)> = None;
            let mut pairs = 0u64;
            let mut unresolved = f64::INFINITY;
            for _ in 0..claims {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= centers.len() {
                    break;
                }
                let (lb, center) = centers[i];
                if meter.is_tripped() {
                    unresolved = unresolved.min(lb);
                    break;
                }
                let bound = bound_above(f64::from_bits(best_bits.load(Ordering::Relaxed)));
                if lb >= bound {
                    break; // sorted: every unclaimed center is at least this costly
                }
                let filtered = self.filter_candidates_for_center(candidates, center, bound);
                let Some(v) = verify_center_guarded(
                    self.ssn,
                    q,
                    &filtered,
                    center,
                    bound,
                    self.cfg.enumeration_cap,
                    &mut ctx,
                    policy,
                ) else {
                    unresolved = unresolved.min(lb);
                    continue;
                };
                pairs += v.subsets_examined;
                if let Some(ans) = v.answer {
                    atomic_min_f64(&best_bits, ans.maxdist);
                    let better = match &local {
                        None => true,
                        Some((bv, bi, _)) => (ans.maxdist, i) < (*bv, *bi),
                    };
                    if better {
                        local = Some((ans.maxdist, i, ans));
                    }
                }
                if meter.is_tripped() {
                    // Conservative: this center may have completed, but
                    // folding its lb in only widens the reported gap.
                    unresolved = unresolved.min(lb);
                    break;
                }
            }
            meter.note_workspace(
                ws.resets() + chws.resets(),
                ws.recycles() + chws.recycles(),
                chws.unpacks(),
            );
            (local, pairs, unresolved)
        };
        // Pilot: verify the cheapest center on the calling thread before
        // fanning out, so workers start with an incumbent bound instead
        // of all verifying their first claim against `∞` (which is
        // redundant work the sequential sweep would have skipped). The
        // pilot is simply claim 0 of the same protocol, so determinism
        // is untouched.
        let pilot = worker(1);
        // If the query thread is buffering spans for tail sampling,
        // workers adopt the same capture so their verification spans
        // stay with (and live or die with) the query's trace.
        let capture = gpssn_obs::trace::capture_handle();
        let results: Vec<WorkerResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let _adopt = capture.as_ref().map(gpssn_obs::trace::adopt_capture);
                        worker(usize::MAX)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    // Re-raise worker panics on the query thread so
                    // the batch isolation layer sees them.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut out = RefineOutcome::empty();
        let mut winner: Option<(f64, usize, GpSsnAnswer)> = None;
        for (local, pairs, unresolved) in std::iter::once(pilot).chain(results) {
            out.pairs_refined += pairs;
            out.unresolved = out.unresolved.min(unresolved);
            if let Some((v, i, ans)) = local {
                let better = match &winner {
                    None => true,
                    Some((bv, bi, _)) => (v, i) < (*bv, *bi),
                };
                if better {
                    winner = Some((v, i, ans));
                }
            }
        }
        if let Some((v, _, ans)) = winner {
            out.best_val = v;
            out.answer = Some(ans);
        }
        out
    }

    /// Expands one `I_R` node: applies Lemma 6 / Lemma 1 matching pruning
    /// and pushes surviving children (or candidate centers) with their
    /// Eq. 17 lower bounds; updates `δ` with guarded Eq. 16/5 upper
    /// bounds.
    #[allow(clippy::too_many_arguments)]
    fn expand_node(
        &self,
        q: &GpSsnQuery,
        opts: &QueryOptions,
        node: u32,
        uq_interest: &gpssn_social::InterestVector,
        uq_rn: &[f64],
        scand_ub: &[f64],
        heap: &mut MinHeap<Item>,
        centers: &mut Vec<(f64, PoiId)>,
        delta: &mut f64,
        stats: &mut PruningStats,
        count_stats: bool,
    ) {
        let idx = &self.road_index;
        for e in &idx.tree().node(node).entries {
            match *e {
                Entry::Item { item: poi, .. } => {
                    let aug = idx.poi(poi);
                    // Lemma 1 via the sup_K superset (Lemma 2).
                    if opts.use_matching_pruning
                        && ub_match_score_keywords(uq_interest, &aug.sup_keywords) < q.theta
                    {
                        if count_stats {
                            stats.pois_pruned_object += 1;
                        }
                        continue;
                    }
                    let lb = lb_maxdist_poi(uq_rn, &aug.pivot_dists);
                    // Eq. 18 guard at object granularity: sub_K certifies
                    // a θ-matching ball for u_q.
                    if gpssn_ssn::match_score_keywords(uq_interest, &aug.sub_keywords) >= q.theta {
                        *delta = delta.min(ub_maxdist_poi(scand_ub, &aug.pivot_dists, q.radius));
                    }
                    centers.push((lb, poi));
                }
                Entry::Child { node: child, .. } => {
                    let aug = idx.node(child);
                    // Lemma 6 via the node signature (Eq. 15).
                    if opts.use_matching_pruning
                        && ub_match_score_signature(uq_interest, &aug.sup_sig) < q.theta
                    {
                        if count_stats {
                            stats.pois_pruned_index += aug.poi_count;
                        }
                        continue;
                    }
                    let lb = lb_maxdist_node(uq_rn, &aug.lb_pivot, &aug.ub_pivot);
                    // Lemma 7 guard: Eq. 18 over the node samples
                    // certifies a candidate set inside, enabling the
                    // Eq. 16 δ update.
                    if lb_match_score_node(idx, aug, &[uq_interest]) >= q.theta {
                        *delta = delta.min(ub_maxdist_node(scand_ub, &aug.ub_pivot, q.radius));
                    }
                    heap.push(lb, Item::Node(child));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Independent per-rule measurement for Figures 7(b)/(c)
    // ------------------------------------------------------------------

    fn independent_rule_measurement(&self, q: &GpSsnQuery, delta: f64, stats: &mut PruningStats) {
        let social = self.ssn.social();
        let uq_sn = self.social_index.user_sn_dists(q.user);
        let region = PruningRegion::new(social.interest(q.user), q.gamma);
        for u in 0..social.num_users() as UserId {
            if u == q.user {
                continue;
            }
            if prune_user_by_social_distance(uq_sn, self.social_index.user_sn_dists(u), q.tau) {
                stats.users_pruned_by_distance += 1;
            } else if region.prunes_point(social.interest(u)) {
                stats.users_pruned_by_interest += 1;
            }
        }
        let uq_rn = self.social_index.user_rn_dists(q.user);
        let uq_interest = social.interest(q.user);
        let threshold = if delta.is_finite() {
            delta
        } else {
            f64::INFINITY
        };
        for o in 0..self.ssn.pois().len() as PoiId {
            let aug = self.road_index.poi(o);
            if lb_maxdist_poi(uq_rn, &aug.pivot_dists) > threshold {
                stats.pois_pruned_by_distance += 1;
            } else if ub_match_score_keywords(uq_interest, &aug.sup_keywords) < q.theta {
                stats.pois_pruned_by_matching += 1;
            }
        }
    }
}

/// Snapshots the meter's distance-cache tallies into [`CacheStats`].
fn cache_stats(meter: &BudgetState) -> crate::stats::CacheStats {
    let (ball_hits, ball_misses, dist_hits, dist_misses) = meter.cache_tallies();
    crate::stats::CacheStats {
        ball_hits,
        ball_misses,
        dist_hits,
        dist_misses,
    }
}

/// Assembles [`QueryMetrics`] from the meter's tallies. The settle
/// split is disjoint by construction: `meter.settles()` is the
/// budget-charged total across both backends, CH sweeps tally their
/// settles separately, and the difference is the plain-Dijkstra share.
fn finish_metrics(
    start: Instant,
    io: &IoCounter,
    meter: &BudgetState,
    stats: PruningStats,
) -> QueryMetrics {
    let (ch_batches, ch_settles) = meter.ch_tallies();
    let dijkstra_settles = meter.settles().saturating_sub(ch_settles);
    let (ws_resets, heap_recycles, ch_unpacks) = meter.workspace_tallies();
    let backend_served = BackendServed {
        dijkstra_batches: meter.dijkstra_batches(),
        dijkstra_settles,
        ch_batches,
        ch_settles,
    };
    QueryMetrics {
        cpu: start.elapsed(),
        io_pages: io.count(),
        heap_pops: meter.pops(),
        groups_enumerated: meter.groups(),
        dijkstra_settles,
        ch_batches,
        ch_settles,
        backend_served,
        ws_resets,
        heap_recycles,
        ch_unpacks,
        cache: cache_stats(meter),
        stats,
    }
}

/// Records one phase duration into the `gpssn_phase_duration_ns`
/// histogram; used where the phase's span is opened by hand (its id
/// feeds `VerifyContext::span_parent`) so [`Obs::phase`] cannot wrap
/// the work. `started` is `Some` exactly when `obs` is.
fn record_phase_ns(obs: Option<&Obs>, name: &'static str, started: Option<Instant>) {
    if let (Some(o), Some(t0)) = (obs, started) {
        o.observe(
            "gpssn_phase_duration_ns",
            &[("phase", name)],
            t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
    }
}

/// Runs [`verify_center`] under the query's fault policy. An `Err`
/// (broken internal invariant) is always absorbed as a query fault;
/// under [`DegradationPolicy::Ladder`] a *panic* inside verification is
/// additionally caught per-center and absorbed the same way, while
/// `FailFast` lets it propagate to the batch isolation layer (the
/// legacy behavior). `None` means the center stays unresolved — the
/// caller folds its lower bound into the anytime gap, and the nonzero
/// fault count keeps the completion from claiming `Exact`.
#[allow(clippy::too_many_arguments)]
fn verify_center_guarded(
    ssn: &SpatialSocialNetwork,
    q: &GpSsnQuery,
    candidates: &[UserId],
    center: PoiId,
    bound: f64,
    enumeration_cap: usize,
    ctx: &mut VerifyContext<'_>,
    policy: DegradationPolicy,
) -> Option<CenterVerification> {
    let res = if policy == DegradationPolicy::Ladder {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            verify_center(ssn, q, candidates, center, bound, enumeration_cap, ctx)
        }));
        match attempt {
            Ok(r) => r,
            Err(_) => {
                // The unwound verification may have left this worker's
                // CH workspace mid-sweep; wipe it so later batches stay
                // bit-identical.
                if let Some(chb) = ctx.ch.as_mut() {
                    chb.search.hard_reset();
                }
                Err(GpSsnError::Internal(format!(
                    "refinement panicked verifying center {center}"
                )))
            }
        }
    } else {
        verify_center(ssn, q, candidates, center, bound, enumeration_cap, ctx)
    };
    match res {
        Ok(v) => Some(v),
        Err(_) => {
            ctx.budget.note_fault();
            if let Some(o) = ctx.obs {
                o.inc("gpssn_refine_faults_total", &[], 1);
            }
            None
        }
    }
}

/// The error reported when a cut query verified nothing: the tripped
/// budget when one tripped, otherwise the absorbed refinement faults.
fn cut_error(meter: &BudgetState) -> GpSsnError {
    match meter.trip() {
        Some(trip) => trip.into(),
        None => GpSsnError::Internal(format!(
            "{} refinement fault(s) absorbed with no verified answer",
            meter.faults()
        )),
    }
}

/// Folds one finished query into the metrics registry — called once per
/// query at outcome assembly, so the hot traversal and refinement paths
/// never touch the registry. Under [`Obs::with_registry`] redirection
/// (batch workers) this lands in the calling thread's private registry.
fn record_query(obs: Option<&Obs>, path: &'static str, out: &QueryOutcome, meter: &BudgetState) {
    let Some(o) = obs.filter(|o| o.metrics_on()) else {
        return;
    };
    let m = &out.metrics;
    o.inc("gpssn_queries_total", &[("path", path)], 1);
    if out.answer.is_some() {
        o.inc("gpssn_answers_total", &[("path", path)], 1);
    }
    let class = out.completion.rung();
    o.inc("gpssn_query_completions_total", &[("class", class)], 1);
    if !matches!(out.completion, Completion::Exact) {
        o.inc("gpssn_degraded_rung_total", &[("rung", class)], 1);
    }
    if let Some(trip) = meter.trip() {
        let resource = match trip {
            Trip::Deadline => "deadline",
            Trip::HeapPops => "heap_pops",
            Trip::Groups => "groups",
            Trip::DijkstraSettles => "settles",
        };
        o.inc("gpssn_budget_trips_total", &[("resource", resource)], 1);
    }
    o.inc("gpssn_io_pages_total", &[], m.io_pages);
    o.inc("gpssn_heap_pops_total", &[], m.heap_pops);
    o.inc("gpssn_groups_enumerated_total", &[], m.groups_enumerated);
    let b = &m.backend_served;
    o.inc(
        "gpssn_distance_batches_total",
        &[("backend", "dijkstra")],
        b.dijkstra_batches,
    );
    o.inc(
        "gpssn_distance_batches_total",
        &[("backend", "ch")],
        b.ch_batches,
    );
    o.inc(
        "gpssn_settles_total",
        &[("backend", "dijkstra")],
        b.dijkstra_settles,
    );
    o.inc("gpssn_settles_total", &[("backend", "ch")], b.ch_settles);
    let c = &m.cache;
    o.inc(
        "gpssn_cache_lookups_total",
        &[("kind", "ball"), ("result", "hit")],
        c.ball_hits,
    );
    o.inc(
        "gpssn_cache_lookups_total",
        &[("kind", "ball"), ("result", "miss")],
        c.ball_misses,
    );
    o.inc(
        "gpssn_cache_lookups_total",
        &[("kind", "dist"), ("result", "hit")],
        c.dist_hits,
    );
    o.inc(
        "gpssn_cache_lookups_total",
        &[("kind", "dist"), ("result", "miss")],
        c.dist_misses,
    );
    o.inc("gpssn_workspace_resets_total", &[], m.ws_resets);
    o.inc("gpssn_heap_recycles_total", &[], m.heap_recycles);
    o.inc("gpssn_ch_unpacks_total", &[], m.ch_unpacks);
    let s = &m.stats;
    // Fig. 7 pruning powers are ratios of the counters below over these
    // denominators; `tests/obs_telemetry.rs` checks the exposition path
    // reconstructs the legacy `PruningStats` accessors exactly.
    o.inc("gpssn_users_scanned_total", &[], s.users_total as u64);
    o.inc("gpssn_pois_scanned_total", &[], s.pois_total as u64);
    o.inc(
        "gpssn_pruned_users_total",
        &[("stage", "index")],
        s.users_pruned_index as u64,
    );
    o.inc(
        "gpssn_pruned_users_total",
        &[("stage", "object")],
        s.users_pruned_object as u64,
    );
    o.inc(
        "gpssn_pruned_users_total",
        &[("stage", "distance")],
        s.users_pruned_by_distance as u64,
    );
    o.inc(
        "gpssn_pruned_users_total",
        &[("stage", "interest")],
        s.users_pruned_by_interest as u64,
    );
    o.inc(
        "gpssn_pruned_pois_total",
        &[("stage", "index")],
        s.pois_pruned_index as u64,
    );
    o.inc(
        "gpssn_pruned_pois_total",
        &[("stage", "object")],
        s.pois_pruned_object as u64,
    );
    o.inc(
        "gpssn_pruned_pois_total",
        &[("stage", "distance")],
        s.pois_pruned_by_distance as u64,
    );
    o.inc(
        "gpssn_pruned_pois_total",
        &[("stage", "matching")],
        s.pois_pruned_by_matching as u64,
    );
    o.inc("gpssn_pairs_refined_total", &[], s.pairs_refined);
    o.inc("gpssn_candidate_users_total", &[], s.candidate_users as u64);
    o.inc("gpssn_candidate_pois_total", &[], s.candidate_pois as u64);
    o.observe(
        "gpssn_query_cpu_ns",
        &[("path", path)],
        m.cpu.as_nanos().min(u64::MAX as u128) as u64,
    );
}

/// What one refinement worker hands back: its best `(value, claim
/// index, answer)` if any, subsets examined, and the minimum
/// unresolved lower bound it left behind.
type WorkerResult = (Option<(f64, usize, GpSsnAnswer)>, u64, f64);

/// Result of the refinement stage over the sorted candidate centers.
struct RefineOutcome {
    answer: Option<GpSsnAnswer>,
    best_val: f64,
    pairs_refined: u64,
    /// Smallest `lb` left unresolved by a budget trip (`f64::INFINITY`
    /// when every center was either verified or soundly pruned).
    unresolved: f64,
}

impl RefineOutcome {
    fn empty() -> Self {
        RefineOutcome {
            answer: None,
            best_val: f64::INFINITY,
            pairs_refined: 0,
            unresolved: f64::INFINITY,
        }
    }
}

/// The smallest f64 strictly above non-negative `v` (`INFINITY` maps to
/// itself). Verifying against `bound_above(best)` admits answers *equal*
/// to the incumbent, letting ties resolve deterministically by center
/// order instead of by race outcome.
fn bound_above(v: f64) -> f64 {
    if v == f64::INFINITY {
        f64::INFINITY
    } else {
        f64::from_bits(v.to_bits() + 1)
    }
}

/// Lowers the shared bound (IEEE-754 bits of a non-negative f64) to `v`
/// if `v` is smaller; monotone and lock-free. Bit patterns of
/// non-negative floats order identically to their values.
fn atomic_min_f64(best: &AtomicU64, v: f64) {
    let mut cur = best.load(Ordering::Relaxed);
    while v < f64::from_bits(cur) {
        match best.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(c) => cur = c,
        }
    }
}

/// Derives the completion state after a (possibly tripped) search.
///
/// `best_val` is the best *verified* objective (`f64::INFINITY` when no
/// answer was verified); `outstanding` is the smallest lower bound left
/// unresolved by the trip (`f64::INFINITY` when the search space was
/// exhausted anyway). No trip means the answer is exact; with a trip, an
/// answer whose value is `<=` every unresolved bound is still provably
/// optimal, otherwise the answer carries the gap `best_val − outstanding`
/// (the true optimum lies within it). A trip with nothing verified and
/// work left unresolved is a failure — there is no anytime answer to
/// degrade to.
/// Absorbed refinement faults count as cuts alongside budget trips: the
/// faulted centers' lower bounds were folded into `outstanding`, so an
/// answer that beats every unresolved bound is still provably optimal,
/// and anything else degrades honestly.
fn completion_of(meter: &BudgetState, best_val: f64, outstanding: f64) -> Completion {
    let cut = meter.trip().is_some() || meter.faults() > 0;
    if !cut || outstanding >= best_val {
        Completion::Exact
    } else if best_val.is_finite() {
        Completion::TruncatedWithGap((best_val - outstanding).max(0.0))
    } else {
        Completion::Failed(cut_error(meter))
    }
}

/// Collapses a `try_` result into the legacy panicking API: infeasible
/// queries degrade to an exact "no answer" outcome; validation errors
/// panic with the historical messages.
fn unwrap_outcome(res: Result<QueryOutcome, GpSsnError>) -> QueryOutcome {
    match res {
        Ok(out) => out,
        Err(GpSsnError::Infeasible { .. }) => QueryOutcome::infeasible(),
        Err(e) => panic_like_legacy(e),
    }
}

/// Panics with the historical message for each error class (so code and
/// tests written against the panicking API keep their expectations).
fn panic_like_legacy(e: GpSsnError) -> ! {
    match e {
        GpSsnError::InvalidQuery(_) | GpSsnError::UnknownUser { .. } => {
            panic!("invalid query parameters: {e}")
        }
        GpSsnError::RadiusOutOfIndexRange { .. } => {
            panic!("query radius outside the index's [r_min, r_max] range: {e}")
        }
        other => panic!("{other}"),
    }
}

/// Resolves a requested thread count against the number of work items:
/// `0` means the machine's available parallelism, and counts beyond the
/// item count are clamped (one item still gets one thread). Every
/// multi-threaded entry point — the batch paths, the serving layer, and
/// intra-query [`QueryOptions::refine_threads`] — resolves through this
/// one helper so `threads == 0` cannot drift between them.
pub(crate) fn resolve_threads(requested: usize, items: usize) -> usize {
    let t = match requested {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    };
    t.min(items.max(1))
}

/// Answers one query with the panic isolation the batch and serving
/// layers rely on: a panic anywhere inside the query is caught at this
/// boundary and surfaced as [`GpSsnError::Internal`] carrying the panic
/// message. Callers must hold a [`crate::panic_capture::capture_scope`]
/// guard so formatted panic messages survive the unwind.
pub(crate) fn run_isolated(
    engine: &GpSsnEngine<'_>,
    q: &GpSsnQuery,
    opts: &QueryOptions,
    budget: &QueryBudget,
) -> Result<QueryOutcome, GpSsnError> {
    crate::panic_capture::clear_last_message(); // drop stale captures
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.try_query_with_options(q, opts, budget)
    }))
    .unwrap_or_else(|payload| {
        Err(GpSsnError::Internal(crate::panic_capture::panic_message(
            &payload,
        )))
    })
}

/// A minimal binary min-heap keyed by `f64` (NaN-free by construction).
struct MinHeap<T> {
    data: Vec<(f64, T)>,
}

impl<T: Copy> MinHeap<T> {
    fn new() -> Self {
        MinHeap { data: Vec::new() }
    }

    fn push(&mut self, key: f64, value: T) {
        debug_assert!(!key.is_nan());
        self.data.push((key, value));
        let mut i = self.data.len() - 1;
        while i > 0 {
            let p = (i - 1) / 2;
            if self.data[i].0 < self.data[p].0 {
                self.data.swap(i, p);
                i = p;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<(f64, T)> {
        if self.data.is_empty() {
            return None;
        }
        let top = self.data.swap_remove(0);
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut min = i;
            if l < self.data.len() && self.data[l].0 < self.data[min].0 {
                min = l;
            }
            if r < self.data.len() && self.data[r].0 < self.data[min].0 {
                min = r;
            }
            if min == i {
                break;
            }
            self.data.swap(i, min);
            i = min;
        }
        Some(top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpssn_ssn::{synthetic, SyntheticConfig};

    fn small_engine(ssn: &SpatialSocialNetwork) -> GpSsnEngine<'_> {
        let cfg = EngineConfig {
            num_road_pivots: 3,
            num_social_pivots: 3,
            social_index: SocialIndexConfig {
                leaf_size: 16,
                fanout: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        GpSsnEngine::build(ssn, cfg)
    }

    #[test]
    fn answers_validate_against_definition5() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 11);
        let engine = small_engine(&ssn);
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.3,
            theta: 0.3,
            radius: 3.0,
        };
        let out = engine.query(&q);
        if let Some(ans) = &out.answer {
            crate::query::check_answer(&ssn, &q, ans).expect("answer must satisfy Definition 5");
        }
        assert!(out.metrics.io_pages > 0);
    }

    #[test]
    fn infeasible_gamma_returns_none() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 11);
        let engine = small_engine(&ssn);
        // gamma = 2.0 is unattainable for unit-norm vectors.
        let q = GpSsnQuery {
            user: 0,
            tau: 3,
            gamma: 2.0,
            theta: 0.1,
            radius: 3.0,
        };
        assert!(engine.query(&q).answer.is_none());
    }

    #[test]
    fn stats_collection_populates_counters() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 13);
        let engine = small_engine(&ssn);
        let q = GpSsnQuery {
            user: 1,
            tau: 3,
            gamma: 0.5,
            theta: 0.4,
            radius: 2.0,
        };
        let opts = QueryOptions {
            collect_stats: true,
            ..Default::default()
        };
        let out = engine.query_with_options(&q, &opts);
        let s = &out.metrics.stats;
        assert_eq!(s.users_total, ssn.social().num_users());
        assert_eq!(s.pois_total, ssn.pois().len());
        assert!(s.pairs_total_estimate > 0.0);
    }

    #[test]
    fn ablation_modes_produce_same_answer() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.012), 29);
        let engine = small_engine(&ssn);
        let q = GpSsnQuery {
            user: 2,
            tau: 2,
            gamma: 0.4,
            theta: 0.3,
            radius: 2.5,
        };
        let full = engine.query(&q);
        let no_prune = engine.query_with_options(
            &q,
            &QueryOptions {
                use_interest_pruning: false,
                use_social_distance_pruning: false,
                use_matching_pruning: false,
                use_delta_pruning: false,
                collect_stats: false,
                use_tight_mbr_test: false,
                refine_threads: 1,
                distance_backend: DistanceBackend::Dijkstra,
                degradation: DegradationPolicy::FailFast,
            },
        );
        match (&full.answer, &no_prune.answer) {
            (Some(a), Some(b)) => {
                assert!(
                    (a.maxdist - b.maxdist).abs() < 1e-6,
                    "{} vs {}",
                    a.maxdist,
                    b.maxdist
                )
            }
            (None, None) => {}
            other => panic!("pruned and unpruned disagree: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "radius outside")]
    fn rejects_radius_outside_index_range() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 11);
        let engine = small_engine(&ssn);
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.3,
            theta: 0.3,
            radius: 100.0,
        };
        engine.query(&q);
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 41);
        let engine = small_engine(&ssn);
        let queries: Vec<GpSsnQuery> = (0..8u32)
            .map(|u| GpSsnQuery {
                user: u,
                tau: 2,
                gamma: 0.3,
                theta: 0.3,
                radius: 2.5,
            })
            .collect();
        let sequential = engine.query_batch(&queries, 1);
        let parallel = engine.query_batch(&queries, 4);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(parallel.iter()) {
            assert_eq!(
                s.answer.as_ref().map(|a| (a.users.clone(), a.pois.clone())),
                p.answer.as_ref().map(|a| (a.users.clone(), a.pois.clone()))
            );
            assert_eq!(s.metrics.io_pages, p.metrics.io_pages);
        }
    }

    #[test]
    fn min_heap_orders_by_key() {
        let mut h = MinHeap::new();
        h.push(3.0, 'a');
        h.push(1.0, 'b');
        h.push(2.0, 'c');
        assert_eq!(h.pop(), Some((1.0, 'b')));
        assert_eq!(h.pop(), Some((2.0, 'c')));
        assert_eq!(h.pop(), Some((3.0, 'a')));
        assert_eq!(h.pop(), None);
    }
}
