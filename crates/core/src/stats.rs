//! Query metrics and pruning-power counters.
//!
//! These counters feed the experiment harness directly: Figure 7 reports
//! pruning powers, Figures 8–11 report CPU time and I/O cost.

use crate::error::Completion;
use crate::query::GpSsnAnswer;
use std::time::Duration;

/// Pruning-power counters gathered during one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PruningStats {
    /// Total users `m`.
    pub users_total: usize,
    /// Users under social-index nodes pruned at index level.
    pub users_pruned_index: usize,
    /// Users pruned at object level (after surviving index level).
    pub users_pruned_object: usize,
    /// Users pruned by the social-distance rule in the independent
    /// object-level measurement (Fig. 7b).
    pub users_pruned_by_distance: usize,
    /// Users pruned by the interest-score rule among those surviving the
    /// distance rule (Fig. 7b).
    pub users_pruned_by_interest: usize,
    /// Total POIs `n`.
    pub pois_total: usize,
    /// POIs under road-index nodes pruned at index level.
    pub pois_pruned_index: usize,
    /// POIs pruned at object level (after surviving index level).
    pub pois_pruned_object: usize,
    /// POIs pruned by the road-distance rule in the independent
    /// object-level measurement (Fig. 7c).
    pub pois_pruned_by_distance: usize,
    /// POIs pruned by the matching-score rule among distance survivors
    /// (Fig. 7c).
    pub pois_pruned_by_matching: usize,
    /// Estimated total number of user–POI group pairs (Fig. 7d
    /// denominator): `C(m, τ) · n` as in the paper's Baseline count.
    pub pairs_total_estimate: f64,
    /// (S, R) pairs actually examined during refinement.
    pub pairs_refined: u64,
    /// Candidate users surviving both pruning stages.
    pub candidate_users: usize,
    /// Candidate POI centers surviving both pruning stages.
    pub candidate_pois: usize,
}

impl PruningStats {
    /// Fig. 7a: social index-level pruning power.
    pub fn social_index_power(&self) -> f64 {
        ratio(self.users_pruned_index, self.users_total)
    }

    /// Fig. 7a: social object-level pruning power (relative to index
    /// survivors).
    pub fn social_object_power(&self) -> f64 {
        ratio(
            self.users_pruned_object,
            self.users_total - self.users_pruned_index,
        )
    }

    /// Fig. 7a: road index-level pruning power.
    pub fn road_index_power(&self) -> f64 {
        ratio(self.pois_pruned_index, self.pois_total)
    }

    /// Fig. 7a: road object-level pruning power (relative to index
    /// survivors).
    pub fn road_object_power(&self) -> f64 {
        ratio(
            self.pois_pruned_object,
            self.pois_total - self.pois_pruned_index,
        )
    }

    /// Fig. 7b: social-distance pruning power over all users.
    pub fn social_distance_power(&self) -> f64 {
        ratio(self.users_pruned_by_distance, self.users_total)
    }

    /// Fig. 7b: interest-score pruning power over distance survivors.
    pub fn interest_power(&self) -> f64 {
        ratio(
            self.users_pruned_by_interest,
            self.users_total - self.users_pruned_by_distance,
        )
    }

    /// Fig. 7c: road-distance pruning power over all POIs.
    pub fn road_distance_power(&self) -> f64 {
        ratio(self.pois_pruned_by_distance, self.pois_total)
    }

    /// Fig. 7c: matching-score pruning power over distance survivors.
    pub fn matching_power(&self) -> f64 {
        ratio(
            self.pois_pruned_by_matching,
            self.pois_total - self.pois_pruned_by_distance,
        )
    }

    /// Fig. 7d: overall pruning power of user–POI group pairs.
    pub fn pair_power(&self) -> f64 {
        if self.pairs_total_estimate <= 0.0 {
            return 0.0;
        }
        1.0 - (self.pairs_refined as f64 / self.pairs_total_estimate).min(1.0)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Per-query tallies against the engine's cross-query distance cache
/// (all zero when the engine has no cache). Counted per looked-up value:
/// one ball lookup per verified center, one `dist_RN` lookup per
/// (user, POI) pair a verification needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Road-network balls served from the cache.
    pub ball_hits: u64,
    /// Road-network balls computed (and inserted).
    pub ball_misses: u64,
    /// `dist_RN` values served from the cache.
    pub dist_hits: u64,
    /// `dist_RN` values computed (and inserted).
    pub dist_misses: u64,
}

impl CacheStats {
    /// Fraction of all lookups (balls and distances) served from the
    /// cache; `0.0` when there were none. Saturating arithmetic
    /// throughout: reading metrics before the first query (all-zero
    /// tallies) or after pathological overflow yields a rate in
    /// `[0, 1]`, never a division by zero or a wrapped sum.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.ball_hits.saturating_add(self.dist_hits);
        let total = hits
            .saturating_add(self.ball_misses)
            .saturating_add(self.dist_misses);
        hits as f64 / total.max(1) as f64
    }
}

/// Which distance backend served refinement's multi-target batches —
/// disjoint by construction: a batch (and its settles) is charged to
/// exactly one side, so `ch_settles + dijkstra_settles` is the true
/// total without double counting even on CH-fallback queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendServed {
    /// Batches answered by plain Dijkstra sweeps.
    pub dijkstra_batches: u64,
    /// Vertices settled by those plain sweeps.
    pub dijkstra_settles: u64,
    /// Batches answered by the contraction-hierarchy oracle.
    pub ch_batches: u64,
    /// Vertices settled by CH upward/backward sweeps.
    pub ch_settles: u64,
}

impl BackendServed {
    /// Settles across both backends — the value charged against
    /// [`crate::QueryBudget::max_dijkstra_settles`].
    pub fn total_settles(&self) -> u64 {
        self.dijkstra_settles.saturating_add(self.ch_settles)
    }

    /// Batches across both backends.
    pub fn total_batches(&self) -> u64 {
        self.dijkstra_batches.saturating_add(self.ch_batches)
    }
}

/// Wall-clock and I/O metrics of one query.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// CPU time of the index traversal + refinement.
    pub cpu: Duration,
    /// Page accesses (index nodes touched).
    pub io_pages: u64,
    /// Best-first heap pops performed (the unit of
    /// [`crate::QueryBudget::max_heap_pops`]).
    pub heap_pops: u64,
    /// Connected user subsets enumerated (the unit of
    /// [`crate::QueryBudget::max_groups_enumerated`]).
    pub groups_enumerated: u64,
    /// Vertices settled by *plain Dijkstra* refinement-time runs —
    /// disjoint from [`QueryMetrics::ch_settles`]; the budget unit
    /// [`crate::QueryBudget::max_dijkstra_settles`] charges their sum
    /// ([`QueryMetrics::total_settles`]).
    pub dijkstra_settles: u64,
    /// Multi-target batches served by the contraction-hierarchy oracle
    /// (zero under [`crate::DistanceBackend::Dijkstra`] or when the road
    /// index carries no oracle).
    pub ch_batches: u64,
    /// Vertices settled by those CH batches — disjoint from
    /// [`QueryMetrics::dijkstra_settles`].
    pub ch_settles: u64,
    /// Per-backend batch/settle breakdown (the same numbers as the four
    /// fields above, grouped; see [`BackendServed`]).
    pub backend_served: BackendServed,
    /// Workspace runs prepared during refinement (Dijkstra + CH).
    pub ws_resets: u64,
    /// Workspace runs that reused already-sized storage — lazy
    /// touched-list reset plus recycled heap, no allocation.
    pub heap_recycles: u64,
    /// CH near-tie candidate paths unpacked to original edges for
    /// bit-exactness.
    pub ch_unpacks: u64,
    /// Distance-cache tallies (see [`CacheStats`]).
    pub cache: CacheStats,
    /// Pruning counters.
    pub stats: PruningStats,
}

impl QueryMetrics {
    /// Vertices settled across both distance backends — the value the
    /// settle budget charged.
    pub fn total_settles(&self) -> u64 {
        self.dijkstra_settles.saturating_add(self.ch_settles)
    }
}

/// The result of running a GP-SSN query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The best verified answer — the optimum when
    /// [`QueryOutcome::completion`] is [`Completion::Exact`], otherwise
    /// the best found before the budget tripped. `None` when no feasible
    /// pair exists (exact) or none was verified in time (truncated).
    pub answer: Option<GpSsnAnswer>,
    /// How the search terminated (exact, truncated with an optimality-gap
    /// bound, or failed on a budget with nothing to show).
    pub completion: Completion,
    /// Measured metrics.
    pub metrics: QueryMetrics,
}

impl QueryOutcome {
    /// The outcome of a query proven infeasible before any index work:
    /// an exact "no answer" with empty metrics.
    pub fn infeasible() -> Self {
        QueryOutcome {
            answer: None,
            completion: Completion::Exact,
            metrics: Default::default(),
        }
    }
}

/// The result of a top-`k` query under a budget.
#[derive(Debug, Clone)]
pub struct TopKOutcome {
    /// Up to `k` answers over distinct candidate centers, ascending
    /// `maxdist`.
    pub answers: Vec<GpSsnAnswer>,
    /// [`Completion::Exact`] when the list is the true top-`k`; under
    /// truncation with fewer than `k` answers the gap is
    /// `f64::INFINITY`.
    pub completion: Completion,
}

/// `C(n, k)` in `f64` (saturating to `f64::INFINITY` for huge values) —
/// used for the paper's Baseline pair-count estimates.
pub fn binomial_f64(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
        if acc.is_infinite() {
            return f64::INFINITY;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_compute_ratios() {
        let s = PruningStats {
            users_total: 100,
            users_pruned_index: 40,
            users_pruned_object: 30,
            pois_total: 200,
            pois_pruned_index: 100,
            pois_pruned_object: 50,
            ..Default::default()
        };
        assert!((s.social_index_power() - 0.4).abs() < 1e-12);
        assert!((s.social_object_power() - 0.5).abs() < 1e-12);
        assert!((s.road_index_power() - 0.5).abs() < 1e-12);
        assert!((s.road_object_power() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = PruningStats::default();
        assert_eq!(s.social_index_power(), 0.0);
        assert_eq!(s.pair_power(), 0.0);
    }

    #[test]
    fn pair_power_clamps() {
        let s = PruningStats {
            pairs_total_estimate: 10.0,
            pairs_refined: 100,
            ..Default::default()
        };
        assert_eq!(s.pair_power(), 0.0);
    }

    #[test]
    fn hit_rate_is_safe_before_first_query_and_at_saturation() {
        // Fresh cache, no lookups yet: rate is 0, not NaN.
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        // Saturating sums keep the rate finite and in [0, 1] even at the
        // counter extremes.
        let s = CacheStats {
            ball_hits: u64::MAX,
            dist_hits: u64::MAX,
            ball_misses: u64::MAX,
            dist_misses: 0,
        };
        let r = s.hit_rate();
        assert!(r.is_finite() && (0.0..=1.0).contains(&r));
    }

    #[test]
    fn backend_breakdown_sums_disjoint_counters() {
        let b = BackendServed {
            dijkstra_batches: 2,
            dijkstra_settles: 100,
            ch_batches: 3,
            ch_settles: 40,
        };
        assert_eq!(b.total_settles(), 140);
        assert_eq!(b.total_batches(), 5);
        let m = QueryMetrics {
            dijkstra_settles: 100,
            ch_settles: 40,
            ..Default::default()
        };
        assert_eq!(m.total_settles(), 140);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial_f64(5, 2), 10.0);
        assert_eq!(binomial_f64(10, 0), 1.0);
        assert_eq!(binomial_f64(3, 5), 0.0);
        // Large values stay finite as f64.
        let big = binomial_f64(40_000, 5);
        assert!(big > 1e20 && big.is_finite());
    }
}
