//! Parameter tuning (paper Section 2.2, "Discussions on the Parameter
//! Tuning").
//!
//! The paper treats `γ`, `θ`, and `r` as system parameters "tuned from
//! historical query logs or data distributions of users/POIs":
//!
//! * `γ` — "the x-th percentile over the distribution of common interest
//!   scores for pairwise users in social networks";
//! * `θ` — "the average (or x-percentile) of the matching scores between
//!   users and POI groups";
//! * `2r` — "the maximum road-network distance that a user (or user
//!   group) may travel between any two POIs, based on the query history
//!   of their trip planning".
//!
//! This module implements those rules over sampled data distributions
//! (full pairwise enumeration is quadratic; the paper's own motivation
//! for sampling applies).

use crate::query::GpSsnQuery;
use gpssn_road::PoiId;
use gpssn_social::UserId;
use gpssn_ssn::{match_score_keywords, SpatialSocialNetwork};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Suggested system parameters with the samples that produced them.
#[derive(Debug, Clone)]
pub struct TunedParameters {
    /// Suggested interest threshold `γ`.
    pub gamma: f64,
    /// Suggested matching threshold `θ`.
    pub theta: f64,
    /// Suggested radius `r`.
    pub radius: f64,
    /// Number of samples behind each suggestion.
    pub samples: usize,
}

/// `γ` as the `percentile`-th percentile of sampled pairwise interest
/// scores (`percentile` in `[0, 1]`; e.g. `0.7` keeps the top 30% most
/// compatible pairs eligible).
pub fn suggest_gamma(
    ssn: &SpatialSocialNetwork,
    percentile: f64,
    samples: usize,
    seed: u64,
) -> f64 {
    let m = ssn.social().num_users();
    assert!(m >= 2, "need at least two users");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores: Vec<f64> = (0..samples)
        .map(|_| {
            let a = rng.gen_range(0..m) as UserId;
            let mut b = rng.gen_range(0..m) as UserId;
            while b == a {
                b = rng.gen_range(0..m) as UserId;
            }
            ssn.social().score(a, b)
        })
        .collect();
    percentile_of(&mut scores, percentile)
}

/// `θ` as the `percentile`-th percentile of sampled user-vs-POI-ball
/// matching scores at radius `r`.
pub fn suggest_theta(
    ssn: &SpatialSocialNetwork,
    r: f64,
    percentile: f64,
    samples: usize,
    seed: u64,
) -> f64 {
    let m = ssn.social().num_users();
    let n = ssn.pois().len();
    assert!(m >= 1 && n >= 1, "need users and POIs");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores: Vec<f64> = (0..samples)
        .map(|_| {
            let u = rng.gen_range(0..m) as UserId;
            let center = rng.gen_range(0..n) as PoiId;
            let ball: Vec<PoiId> = ssn
                .pois()
                .network_ball(ssn.road(), &ssn.pois().get(center).position, r)
                .into_iter()
                .map(|(o, _)| o)
                .collect();
            let union = ssn.pois().keyword_union(&ball);
            match_score_keywords(ssn.social().interest(u), &union)
        })
        .collect();
    percentile_of(&mut scores, percentile)
}

/// `r` from a "trip history": half the `percentile`-th percentile of the
/// pairwise POI distances travelled in the given historical trips (each
/// trip is a set of POIs visited together — the paper's "maximum
/// road-network distance that a user group may travel between any two
/// POIs").
pub fn suggest_radius(
    ssn: &SpatialSocialNetwork,
    trip_history: &[Vec<PoiId>],
    percentile: f64,
) -> f64 {
    let mut spans: Vec<f64> = trip_history
        .iter()
        .filter(|trip| trip.len() >= 2)
        .map(|trip| {
            let mut max = 0.0f64;
            for (i, &a) in trip.iter().enumerate() {
                for &b in &trip[i + 1..] {
                    max = max.max(ssn.pois().poi_distance(ssn.road(), a, b));
                }
            }
            max
        })
        .collect();
    if spans.is_empty() {
        return 1.0;
    }
    percentile_of(&mut spans, percentile) / 2.0
}

/// One-call tuning of all three system parameters (`τ` stays
/// user-specified, as the paper prescribes).
pub fn suggest_parameters(
    ssn: &SpatialSocialNetwork,
    trip_history: &[Vec<PoiId>],
    percentile: f64,
    samples: usize,
    seed: u64,
) -> TunedParameters {
    let radius = suggest_radius(ssn, trip_history, percentile).max(0.1);
    TunedParameters {
        gamma: suggest_gamma(ssn, percentile, samples, seed),
        theta: suggest_theta(ssn, radius, 1.0 - percentile, samples, seed ^ 0x5a5a),
        radius,
        samples,
    }
}

impl TunedParameters {
    /// Materializes a query for `user` with the tuned thresholds and a
    /// user-specified group size `τ`.
    pub fn query(&self, user: UserId, tau: usize) -> GpSsnQuery {
        GpSsnQuery {
            user,
            tau,
            gamma: self.gamma,
            theta: self.theta,
            radius: self.radius,
        }
    }
}

fn percentile_of(values: &mut [f64], percentile: f64) -> f64 {
    assert!(!values.is_empty());
    let p = percentile.clamp(0.0, 1.0);
    values.sort_by(|a, b| a.total_cmp(b));
    let idx = ((values.len() - 1) as f64 * p).round() as usize;
    values[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpssn_ssn::{synthetic, SyntheticConfig};

    fn fixture() -> SpatialSocialNetwork {
        synthetic(&SyntheticConfig::uni().scaled(0.01), 3)
    }

    #[test]
    fn gamma_percentiles_are_monotone() {
        let ssn = fixture();
        let lo = suggest_gamma(&ssn, 0.2, 500, 1);
        let hi = suggest_gamma(&ssn, 0.9, 500, 1);
        assert!(lo <= hi, "{lo} > {hi}");
        assert!((0.0..=1.0).contains(&lo));
    }

    #[test]
    fn theta_reflects_matching_distribution() {
        let ssn = fixture();
        let t = suggest_theta(&ssn, 2.0, 0.5, 200, 2);
        assert!((0.0..=1.0).contains(&t));
        // Bigger balls cover more keywords: theta suggestion rises with r.
        let t_big = suggest_theta(&ssn, 4.0, 0.5, 200, 2);
        assert!(t_big + 1e-9 >= t, "{t_big} < {t}");
    }

    #[test]
    fn radius_from_trip_history() {
        let ssn = fixture();
        let trips = vec![vec![0u32, 1, 2], vec![3, 4], vec![5]];
        let r = suggest_radius(&ssn, &trips, 1.0);
        assert!(r > 0.0);
        // The suggestion is half the widest trip span.
        let widest = trips
            .iter()
            .filter(|t| t.len() >= 2)
            .map(|t| {
                let mut mx = 0.0f64;
                for (i, &a) in t.iter().enumerate() {
                    for &b in &t[i + 1..] {
                        mx = mx.max(ssn.pois().poi_distance(ssn.road(), a, b));
                    }
                }
                mx
            })
            .fold(0.0f64, f64::max);
        assert!((r - widest / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_history_falls_back() {
        let ssn = fixture();
        assert_eq!(suggest_radius(&ssn, &[], 0.9), 1.0);
        assert_eq!(suggest_radius(&ssn, &[vec![1]], 0.9), 1.0);
    }

    #[test]
    fn suggested_parameters_build_valid_queries() {
        let ssn = fixture();
        let trips = vec![vec![0u32, 1], vec![2, 3, 4]];
        let tuned = suggest_parameters(&ssn, &trips, 0.7, 300, 5);
        let q = tuned.query(0, 4);
        assert!(q.validate().is_ok(), "{q:?}");
        assert_eq!(q.tau, 4);
    }

    #[test]
    fn tuning_is_deterministic_under_seed() {
        let ssn = fixture();
        assert_eq!(
            suggest_gamma(&ssn, 0.5, 300, 9),
            suggest_gamma(&ssn, 0.5, 300, 9)
        );
    }
}
