//! Zero-dependency live telemetry endpoint for the serve loop.
//!
//! A deliberately minimal HTTP/1.1 listener — `std::net::TcpListener`,
//! no framework, no async — bound for the duration of one [`serve`]
//! call when [`ServeConfig::telemetry_addr`] is set. It answers:
//!
//! * `GET /metrics` — the engine's metric registry (plus the rolling
//!   SLO gauges, tail-sampler tallies, and cache counters) in
//!   Prometheus text exposition format;
//! * `GET /health` — one JSON object with breaker state, live queue
//!   depth/capacity, worker count, and flight-recorder occupancy;
//! * `GET /slo` — the rolling SLO windows as JSON (quantiles, rates,
//!   attainment, burn rate);
//! * `GET /flight` — the flight recorder's ring as JSON.
//!
//! The listener runs on one thread with a non-blocking accept loop that
//! polls a stop flag, so shutdown is bounded by one poll interval; each
//! connection is handled synchronously with short socket timeouts
//! (scrapes are small and local — concurrency here would buy nothing
//! but lock traffic against the serving path). Requests never touch
//! the query queue: a scrape cannot slow a query beyond the shared
//! mutex blips, and a stuck scraper cannot wedge the drain.
//!
//! [`serve`]: crate::serve::serve
//! [`ServeConfig::telemetry_addr`]: crate::serve::ServeConfig::telemetry_addr

use crate::algorithm::GpSsnEngine;
use crate::breaker::BreakerState;
use crate::serve::ServeObs;
use gpssn_obs::Registry;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Everything a scrape needs, borrowed from the serve call.
pub(crate) struct TelemetryCtx<'a, 'e> {
    pub engine: &'a GpSsnEngine<'e>,
    pub tele: &'a ServeObs,
    pub queue_capacity: usize,
    pub workers: usize,
}

/// How long the accept loop sleeps between polls of the stop flag.
const POLL: Duration = Duration::from_millis(10);
/// Per-connection socket timeout — scrapes are local and small.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);
/// Cap on the request head we are willing to buffer.
const MAX_HEAD: usize = 8 * 1024;

/// Accept-and-serve loop; returns when `stop` flips. Individual
/// connection errors are dropped (the scraper retries; the service
/// must not care).
pub(crate) fn run_listener(listener: TcpListener, stop: &AtomicBool, ctx: TelemetryCtx<'_, '_>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_connection(stream, &ctx);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &TelemetryCtx<'_, '_>) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let head = match read_head(&mut stream) {
        Ok(h) => h,
        Err(_) => {
            return write_response(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                "malformed request\n",
            );
        }
    };
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    // Ignore any query string: scrape endpoints take no parameters.
    let path = path.split('?').next().unwrap_or("");
    match path {
        "/metrics" => write_response(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &metrics_prometheus(ctx.engine, ctx.tele),
        ),
        "/health" => write_response(&mut stream, "200 OK", "application/json", &health_json(ctx)),
        "/slo" => {
            let body = format!("{}\n", ctx.tele.slo().to_json(ctx.tele.slo().now_ns()));
            write_response(&mut stream, "200 OK", "application/json", &body)
        }
        "/flight" => {
            let body = format!("{}\n", ctx.tele.flight().to_json());
            write_response(&mut stream, "200 OK", "application/json", &body)
        }
        _ => write_response(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "routes: /metrics /health /slo /flight\n",
        ),
    }
}

/// Reads the request head (through the blank line); the routes take no
/// bodies, so anything after it is ignored.
fn read_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_HEAD {
            break;
        }
    }
    if buf.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "empty request",
        ));
    }
    String::from_utf8(buf)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn breaker_label(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half_open",
    }
}

/// The registry snapshot a scrape reports: the engine's live registry
/// (refreshed with the cache counters and the serve-layer gauges) when
/// a metrics sink is attached and on, otherwise a scratch registry
/// holding just the always-on serve-layer series.
fn scrape_snapshot(engine: &GpSsnEngine<'_>, tele: &ServeObs) -> gpssn_obs::Snapshot {
    match engine.obs_handle().filter(|o| o.metrics_on()) {
        Some(obs) => {
            engine.publish_cache_metrics();
            tele.publish(obs.base_registry());
            obs.base_registry().snapshot()
        }
        None => {
            let reg = Registry::new();
            tele.publish(&reg);
            reg.snapshot()
        }
    }
}

/// `GET /metrics` body (Prometheus text exposition format).
pub(crate) fn metrics_prometheus(engine: &GpSsnEngine<'_>, tele: &ServeObs) -> String {
    scrape_snapshot(engine, tele).to_prometheus()
}

/// The same snapshot as one JSON document (the `metrics` control
/// line). `Snapshot::to_json` ends with a newline for file sinks;
/// control replies embed the document mid-line, so it is trimmed.
pub(crate) fn metrics_json(engine: &GpSsnEngine<'_>, tele: &ServeObs) -> String {
    scrape_snapshot(engine, tele)
        .to_json()
        .trim_end()
        .to_string()
}

/// `GET /health` body: liveness plus the state a load balancer or
/// on-call human checks first.
pub(crate) fn health_json(ctx: &TelemetryCtx<'_, '_>) -> String {
    let breaker = ctx.engine.ch_breaker().state();
    let status = match breaker {
        BreakerState::Closed | BreakerState::HalfOpen => "ok",
        BreakerState::Open => "degraded",
    };
    format!(
        "{{\"status\":\"{}\",\"breaker\":\"{}\",\"queue_depth\":{},\"queue_capacity\":{},\
         \"workers\":{},\"flight_records\":{},\"flight_evicted\":{}}}\n",
        status,
        breaker_label(breaker),
        ctx.tele.queue_depth(),
        ctx.queue_capacity,
        ctx.workers,
        ctx.tele.flight().len(),
        ctx.tele.flight().dropped(),
    )
}
