//! Scoped, refcounted capture of panic messages for the batch and
//! serving isolation layers.
//!
//! `std::panic::catch_unwind` hands the caller the panic *payload*,
//! which for formatted panics (`panic!("center {id} broke")`) is an
//! opaque `Box<dyn Any>` — the rendered message only ever exists inside
//! the panic hook. The isolation layers therefore need a hook that
//! records the message somewhere they can read it back.
//!
//! The first version of this machinery installed a process-global hook
//! once and never removed it — harmless in a short-lived benchmark
//! binary, but wrong in a long-running service: the engine's hook
//! outlives every batch, interposes on panics from completely unrelated
//! threads for the life of the process, and silently pins whatever hook
//! happened to be installed at first-batch time (a hook the host
//! application may well want to replace or remove).
//!
//! [`capture_scope`] fixes this with a refcount: the first live guard
//! takes the current hook, installs a capture hook that *chains to it*,
//! and stashes it; dropping the last guard restores the previous hook.
//! Nested scopes (overlapping batches, a batch inside a serve session)
//! share the one installed hook. Panics occurring while no guard is
//! live behave exactly as if this module did not exist.

use std::sync::{Arc, Mutex};

type Hook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

std::thread_local! {
    /// Message of the most recent panic on this thread, captured by the
    /// hook while a [`capture_scope`] guard is live.
    static LAST_PANIC_MSG: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// Refcount plus the hook that was installed before ours. The previous
/// hook is kept behind an `Arc` so the capture hook can keep chaining to
/// it while uninstall re-wraps the same closure into a fresh `Box` for
/// `set_hook`.
struct CaptureState {
    depth: usize,
    prev: Option<Arc<Hook>>,
}

static STATE: Mutex<CaptureState> = Mutex::new(CaptureState {
    depth: 0,
    prev: None,
});

/// RAII guard holding the capture hook installed. See [`capture_scope`].
#[derive(Debug)]
pub struct CaptureGuard {
    _private: (),
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        let mut st = STATE.lock().unwrap_or_else(|p| p.into_inner());
        st.depth -= 1;
        if st.depth == 0 {
            // Restore the pre-capture hook (re-boxed around the same
            // closure — behaviorally identical to the original).
            match st.prev.take() {
                Some(prev) => std::panic::set_hook(Box::new(move |info| prev(info))),
                None => {
                    let _ = std::panic::take_hook();
                }
            }
        }
    }
}

/// Starts (or joins) a panic-capture scope: while at least one guard is
/// live, every panic's rendered message is recorded into a thread-local
/// readable via [`take_last_message`], and the previously installed hook
/// still runs (backtraces keep printing). When the last guard drops the
/// previous hook is restored.
#[doc(hidden)] // public for the own-process regression test
pub fn capture_scope() -> CaptureGuard {
    let mut st = STATE.lock().unwrap_or_else(|p| p.into_inner());
    if st.depth == 0 {
        let prev: Arc<Hook> = Arc::new(std::panic::take_hook());
        st.prev = Some(Arc::clone(&prev));
        std::panic::set_hook(Box::new(move |info| {
            let msg = match info.payload_as_str() {
                Some(s) => s.to_string(),
                None => info.to_string().replace('\n', "; "),
            };
            LAST_PANIC_MSG.with(|m| *m.borrow_mut() = Some(msg));
            prev(info);
        }));
    }
    st.depth += 1;
    CaptureGuard { _private: () }
}

/// Number of live [`CaptureGuard`]s (0 means the pre-capture hook is
/// installed). Exposed for the regression test only.
#[doc(hidden)]
pub fn capture_depth() -> usize {
    STATE.lock().unwrap_or_else(|p| p.into_inner()).depth
}

/// Takes (and clears) the message of the most recent panic captured on
/// this thread. Call right after a `catch_unwind` whose payload was not
/// a string.
pub(crate) fn take_last_message() -> Option<String> {
    LAST_PANIC_MSG.with(|m| m.borrow_mut().take())
}

/// Clears any stale captured message on this thread; call before a
/// `catch_unwind` so an old capture is never misattributed.
pub(crate) fn clear_last_message() {
    LAST_PANIC_MSG.with(|m| m.borrow_mut().take());
}

/// Best-effort extraction of a caught panic payload into a string,
/// falling back to the hook-captured message for formatted panics.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = take_last_message() {
        s
    } else {
        "panic with non-string payload".to_string()
    }
}
