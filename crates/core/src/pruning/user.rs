//! User pruning (paper Section 3.2 and Lemma 8).
//!
//! The interest-score pruning region `PR(u_q)`: with `a = u_q.w`,
//! `n = ‖a‖²`, pick `A` on the ray `O→a` at distance `γ/‖a‖`, let
//! `B = a` and `B' = a · (2γ − n)/n` (so `A` is the midpoint of `B` and
//! `B'`), and classify:
//!
//! * **Case 1** (`γ ≤ n`): prune `x` when `dist(x, B') < dist(x, B)`;
//! * **Case 2** (`γ > n`): prune `x` when `dist(x, B') > dist(x, B)`.
//!
//! Algebra (see the `region_equals_dot_product_test` property test):
//! `dist²(x,B) − dist²(x,B') = 4(n−γ)/n · (γ − a·x)`, so both cases are
//! exactly the halfspace test `a·x < γ` — i.e. Lemma 3's
//! `Interest_Score(u_q, x) < γ`.
//!
//! At the index level (Lemma 8), a node `e_S` with interest MBR
//! `[lb_w, ub_w]` is pruned when the whole MBR lies in the region,
//! checked with the paper's `maxdist`/`mindist` comparison against `B`
//! and `B'` (a sufficient condition; `prunes_mbr_tight` offers the exact
//! corner test used in ablations).

use gpssn_social::{InterestVector, UserId};

/// The pruning region `PR(a)` for an anchor interest vector `a` and
/// threshold `γ`.
#[derive(Debug, Clone)]
pub struct PruningRegion {
    /// `B = a`.
    b: Vec<f64>,
    /// `B' = a · (2γ − ‖a‖²)/‖a‖²`.
    b_prime: Vec<f64>,
    /// Case 1 (`γ ≤ ‖a‖²`) versus Case 2.
    case1: bool,
    /// Anchor weights (for the tight MBR test).
    anchor: Vec<f64>,
    /// Threshold `γ`.
    gamma: f64,
    /// Anchor is the zero vector: every score is 0, so everything is
    /// pruned iff `γ > 0`.
    zero_anchor: bool,
}

impl PruningRegion {
    /// Builds `PR(anchor)` for threshold `gamma`.
    pub fn new(anchor: &InterestVector, gamma: f64) -> Self {
        let a: Vec<f64> = anchor.weights().to_vec();
        let n: f64 = a.iter().map(|x| x * x).sum();
        if n == 0.0 {
            return PruningRegion {
                b: a.clone(),
                b_prime: a.clone(),
                case1: true,
                anchor: a,
                gamma,
                zero_anchor: true,
            };
        }
        let scale = (2.0 * gamma - n) / n;
        let b_prime: Vec<f64> = a.iter().map(|x| x * scale).collect();
        PruningRegion {
            b: a.clone(),
            b_prime,
            case1: gamma <= n,
            anchor: a,
            gamma,
            zero_anchor: false,
        }
    }

    /// Whether interest vector `x` falls in the pruning region
    /// (Corollary 1: such users are safely pruned).
    pub fn prunes_point(&self, x: &InterestVector) -> bool {
        if self.zero_anchor {
            return self.gamma > 0.0;
        }
        let d_b = dist_sq(x.weights(), &self.b);
        let d_bp = dist_sq(x.weights(), &self.b_prime);
        if self.case1 {
            d_bp < d_b
        } else {
            d_bp > d_b
        }
    }

    /// Index-level test (Lemma 8) with the paper's `maxdist`/`mindist`
    /// comparison: prunes node `e_S` when its whole interest MBR
    /// `[lb_w, ub_w]` provably lies inside the region. Sufficient but not
    /// necessary (see [`PruningRegion::prunes_mbr_tight`]).
    pub fn prunes_mbr(&self, lb_w: &[f64], ub_w: &[f64]) -> bool {
        if self.zero_anchor {
            return self.gamma > 0.0;
        }
        let max_bp = max_dist_sq_box(lb_w, ub_w, &self.b_prime);
        let min_b = min_dist_sq_box(lb_w, ub_w, &self.b);
        let max_b = max_dist_sq_box(lb_w, ub_w, &self.b);
        let min_bp = min_dist_sq_box(lb_w, ub_w, &self.b_prime);
        if self.case1 {
            max_bp < min_b
        } else {
            max_b < min_bp
        }
    }

    /// Exact index-level test: the MBR lies in the halfspace `a·x < γ`
    /// iff the corner maximizing `a·x` does (anchor weights are
    /// non-negative, so that corner is `ub_w`).
    pub fn prunes_mbr_tight(&self, ub_w: &[f64]) -> bool {
        if self.zero_anchor {
            return self.gamma > 0.0;
        }
        let best: f64 = self
            .anchor
            .iter()
            .zip(ub_w.iter())
            .map(|(a, u)| a * u)
            .sum();
        best < self.gamma
    }

    /// The threshold the region was built for.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn min_dist_sq_box(lb: &[f64], ub: &[f64], p: &[f64]) -> f64 {
    lb.iter()
        .zip(ub.iter())
        .zip(p.iter())
        .map(|((&l, &u), &x)| {
            let d = (l - x).max(0.0).max(x - u);
            d * d
        })
        .sum()
}

fn max_dist_sq_box(lb: &[f64], ub: &[f64], p: &[f64]) -> f64 {
    lb.iter()
        .zip(ub.iter())
        .zip(p.iter())
        .map(|((&l, &u), &x)| {
            let d = (x - l).abs().max((x - u).abs());
            d * d
        })
        .sum()
}

/// Corollary 2: iteratively removes candidates that are interest-
/// compatible (`score >= gamma`) with fewer than `tau - 1` other
/// candidates — such users can never complete a pairwise-compatible group
/// of size `tau`. The query user is never removed (callers re-check it).
///
/// Returns the surviving candidates (order preserved).
pub fn corollary2_filter(
    candidates: &[UserId],
    keep_always: UserId,
    tau: usize,
    gamma: f64,
    score: impl Fn(UserId, UserId) -> f64,
) -> Vec<UserId> {
    if tau <= 1 {
        return candidates.to_vec();
    }
    let mut alive: Vec<UserId> = candidates.to_vec();
    loop {
        let before = alive.len();
        let counts: Vec<usize> = alive
            .iter()
            .map(|&u| {
                alive
                    .iter()
                    .filter(|&&v| v != u && score(u, v) >= gamma)
                    .count()
            })
            .collect();
        let survivors: Vec<UserId> = alive
            .iter()
            .zip(counts.iter())
            .filter(|&(&u, &c)| u == keep_always || c >= tau - 1)
            .map(|(&u, _)| u)
            .collect();
        alive = survivors;
        if alive.len() == before {
            return alive;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(w: &[f64]) -> InterestVector {
        InterestVector::new(w.to_vec())
    }

    #[test]
    fn prunes_low_score_points() {
        let region = PruningRegion::new(&iv(&[1.0, 0.0]), 0.5);
        assert!(region.prunes_point(&iv(&[0.2, 0.9]))); // score 0.2 < 0.5
        assert!(!region.prunes_point(&iv(&[0.8, 0.1]))); // score 0.8
    }

    #[test]
    fn case2_when_gamma_exceeds_norm_squared() {
        // ‖a‖² = 0.25, γ = 0.5 → Case 2.
        let region = PruningRegion::new(&iv(&[0.5, 0.0]), 0.5);
        assert!(region.prunes_point(&iv(&[0.5, 0.5]))); // score 0.25 < 0.5
        assert!(!region.prunes_point(&iv(&[1.0, 0.0]))); // score 0.5 = γ
    }

    #[test]
    fn zero_anchor_prunes_everything_for_positive_gamma() {
        let region = PruningRegion::new(&iv(&[0.0, 0.0]), 0.1);
        assert!(region.prunes_point(&iv(&[1.0, 1.0])));
        assert!(region.prunes_mbr(&[0.0, 0.0], &[1.0, 1.0]));
        let region0 = PruningRegion::new(&iv(&[0.0, 0.0]), 0.0);
        assert!(!region0.prunes_point(&iv(&[1.0, 1.0])));
    }

    #[test]
    fn mbr_tests_agree_on_clear_cases() {
        let region = PruningRegion::new(&iv(&[1.0, 0.0]), 0.5);
        // MBR entirely at low first coordinate: all scores <= 0.2 < 0.5.
        assert!(region.prunes_mbr_tight(&[0.2, 1.0]));
        // MBR containing a qualifying point must never be pruned.
        assert!(!region.prunes_mbr_tight(&[1.0, 1.0]));
        assert!(!region.prunes_mbr(&[0.6, 0.0], &[1.0, 1.0]));
    }

    #[test]
    fn corollary2_removes_isolated_users() {
        // Users 0,1,2 mutually compatible; user 3 compatible with none.
        let score = |a: UserId, b: UserId| if a < 3 && b < 3 { 1.0 } else { 0.0 };
        let out = corollary2_filter(&[0, 1, 2, 3], 0, 3, 0.5, score);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn corollary2_cascades() {
        // Chain compatibility 0-1, 1-2, 2-3: for tau=3 each user needs 2
        // compatible partners; only 1 and 2 have 2, but after removing 0
        // and 3, users 1 and 2 drop to 1 partner each -> only u_q stays.
        let pairs = [(0, 1), (1, 2), (2, 3)];
        let score = move |a: UserId, b: UserId| {
            let k = if a < b { (a, b) } else { (b, a) };
            if pairs.contains(&k) {
                1.0
            } else {
                0.0
            }
        };
        let out = corollary2_filter(&[0, 1, 2, 3], 1, 3, 0.5, score);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn corollary2_tau_one_keeps_everyone() {
        let out = corollary2_filter(&[5, 6], 5, 1, 0.9, |_, _| 0.0);
        assert_eq!(out, vec![5, 6]);
    }

    proptest! {
        /// The geometric construction is exactly the dot-product test
        /// `a·x < γ` (the algebraic identity in the module docs).
        #[test]
        fn region_equals_dot_product_test(
            a in proptest::collection::vec(0.0f64..1.0, 1..6),
            x in proptest::collection::vec(0.0f64..1.0, 1..6),
            gamma in 0.01f64..2.0,
        ) {
            let d = a.len().min(x.len());
            let va = iv(&a[..d]);
            let vx = iv(&x[..d]);
            let n: f64 = va.weights().iter().map(|w| w * w).sum();
            prop_assume!(n > 1e-9 && (gamma - n).abs() > 1e-9);
            let region = PruningRegion::new(&va, gamma);
            let dot: f64 = va.dot(&vx);
            prop_assume!((dot - gamma).abs() > 1e-9); // away from the boundary
            prop_assert_eq!(region.prunes_point(&vx), dot < gamma);
        }

        /// The MBR tests never prune a box containing a qualifying point
        /// (safety of Lemma 8).
        #[test]
        fn mbr_tests_are_safe(
            a in proptest::collection::vec(0.0f64..1.0, 2..5),
            lo in proptest::collection::vec(0.0f64..0.5, 2..5),
            span in proptest::collection::vec(0.0f64..0.5, 2..5),
            t in proptest::collection::vec(0.0f64..1.0, 2..5),
            gamma in 0.01f64..1.5,
        ) {
            let d = a.len().min(lo.len()).min(span.len()).min(t.len());
            let va = iv(&a[..d]);
            let lb: Vec<f64> = lo[..d].to_vec();
            let ub: Vec<f64> = lb.iter().zip(span[..d].iter()).map(|(l, s)| (l + s).min(1.0)).collect();
            // A point inside the box.
            let x: Vec<f64> = lb.iter().zip(ub.iter()).zip(t[..d].iter())
                .map(|((l, u), tt)| l + tt * (u - l)).collect();
            let vx = iv(&x);
            let region = PruningRegion::new(&va, gamma);
            if va.dot(&vx) >= gamma {
                prop_assert!(!region.prunes_mbr(&lb, &ub), "geometric MBR test pruned a qualifying point");
                prop_assert!(!region.prunes_mbr_tight(&ub), "tight MBR test pruned a qualifying point");
            }
        }

        /// The geometric MBR test implies the tight one (it is a
        /// sufficient condition for full containment).
        #[test]
        fn geometric_implies_tight(
            a in proptest::collection::vec(0.01f64..1.0, 2..5),
            lo in proptest::collection::vec(0.0f64..0.5, 2..5),
            span in proptest::collection::vec(0.0f64..0.5, 2..5),
            gamma in 0.01f64..1.5,
        ) {
            let d = a.len().min(lo.len()).min(span.len());
            let va = iv(&a[..d]);
            let lb: Vec<f64> = lo[..d].to_vec();
            let ub: Vec<f64> = lb.iter().zip(span[..d].iter()).map(|(l, s)| (l + s).min(1.0)).collect();
            let region = PruningRegion::new(&va, gamma);
            if region.prunes_mbr(&lb, &ub) {
                prop_assert!(region.prunes_mbr_tight(&ub));
            }
        }
    }
}
