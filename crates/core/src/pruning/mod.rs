//! Pruning strategies (paper Sections 3 and 4.2).
//!
//! Each rule has an *object-level* form (prunes individual users/POIs)
//! and an *index-level* form (prunes whole index nodes):
//!
//! | Rule | Object level | Index level |
//! |---|---|---|
//! | Matching score | Lemma 1 (via `sup_K`, Lemma 2) | Lemma 6, Eq. 15 |
//! | Interest score | Lemma 3, Corollaries 1–2 | Lemma 8 (interest MBR) |
//! | Social distance | Lemma 4 (pivot lower bound) | Lemma 9, Eq. 19 |
//! | Road distance | Lemma 5, Eqs. 5–6 | Lemma 7, Eqs. 16–17 |
//!
//! Every rule is *safe*: it may keep a non-answer (false positive for the
//! refinement step to discard) but never discards a true answer. The
//! property tests in each module machine-check that claim against brute
//! force.

pub mod matching;
pub mod road_distance;
pub mod social_distance;
pub mod user;

pub use matching::{lb_match_score_node, ub_match_score_keywords, ub_match_score_signature};
pub use road_distance::{lb_maxdist_node, lb_maxdist_poi, ub_maxdist_node, ub_maxdist_poi};
pub use social_distance::{
    lb_dist_sn_node, prune_node_by_social_distance, prune_user_by_social_distance,
};
pub use user::{corollary2_filter, PruningRegion};
