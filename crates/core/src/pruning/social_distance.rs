//! Social-network distance pruning (Lemmas 4 and 9, Eq. 19).
//!
//! A connected group of `τ` users containing `u_q` spans at most `τ - 1`
//! hops from `u_q`, so any user (or index node whose every user) with
//! `lb_dist_SN(·, u_q) >= τ` is safely pruned. Lower bounds come from the
//! social pivots via the triangle inequality; hop distances are the
//! saturated values stored in `I_S` (unreachable = `m + 1`), which keeps
//! the bounds valid across components (see `gpssn-index`).

/// Object-level bound (the equation after Lemma 4, tightest form):
/// `lb_dist_SN(a, b) = max_k |d(a, sp_k) − d(sp_k, b)|` over saturated
/// per-pivot hop vectors.
pub fn lb_dist_sn_users(a: &[u32], b: &[u32]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| x.abs_diff(y))
        .max()
        .unwrap_or(0)
}

/// Lemma 4: prune user `u_k` when `lb_dist_SN(u_k, u_q) >= τ`.
pub fn prune_user_by_social_distance(uq_dists: &[u32], user_dists: &[u32], tau: usize) -> bool {
    lb_dist_sn_users(uq_dists, user_dists) as usize >= tau
}

/// Eq. (19): node-level lower bound on `dist_SN(u_q, e_S)` from the
/// node's per-pivot hop bounds `[lb_sn, ub_sn]`.
pub fn lb_dist_sn_node(uq_dists: &[u32], lb_sn: &[u32], ub_sn: &[u32]) -> u32 {
    debug_assert_eq!(uq_dists.len(), lb_sn.len());
    debug_assert_eq!(uq_dists.len(), ub_sn.len());
    let mut best = 0u32;
    for k in 0..uq_dists.len() {
        let d = uq_dists[k];
        let bound = if d < lb_sn[k] {
            lb_sn[k] - d
        } else {
            d.saturating_sub(ub_sn[k])
        };
        best = best.max(bound);
    }
    best
}

/// Lemma 9: prune node `e_S` when `lb_dist_SN(u_q, e_S) >= τ`.
pub fn prune_node_by_social_distance(
    uq_dists: &[u32],
    lb_sn: &[u32],
    ub_sn: &[u32],
    tau: usize,
) -> bool {
    lb_dist_sn_node(uq_dists, lb_sn, ub_sn) as usize >= tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn user_bound_takes_best_pivot() {
        // Pivot 0: |5-1| = 4; pivot 1: |2-2| = 0 -> bound 4.
        assert_eq!(lb_dist_sn_users(&[5, 2], &[1, 2]), 4);
    }

    #[test]
    fn lemma4_threshold() {
        assert!(prune_user_by_social_distance(&[5], &[1], 4)); // lb 4 >= tau 4
        assert!(!prune_user_by_social_distance(&[5], &[1], 5)); // lb 4 < 5
    }

    #[test]
    fn node_bound_cases() {
        // d below lb: bound lb - d.
        assert_eq!(lb_dist_sn_node(&[1], &[4], &[6]), 3);
        // d above ub: bound d - ub.
        assert_eq!(lb_dist_sn_node(&[9], &[4], &[6]), 3);
        // d inside [lb, ub]: 0.
        assert_eq!(lb_dist_sn_node(&[5], &[4], &[6]), 0);
        // Best over pivots.
        assert_eq!(lb_dist_sn_node(&[1, 9], &[4, 4], &[6, 6]), 3);
    }

    #[test]
    fn lemma9_threshold() {
        assert!(prune_node_by_social_distance(&[9], &[4], &[6], 3));
        assert!(!prune_node_by_social_distance(&[9], &[4], &[6], 4));
    }

    proptest! {
        /// The node bound never exceeds the object bound of any member —
        /// if a member's pivot vector lies within the node's [lb, ub]
        /// ranges, the node bound lower-bounds the member bound, so
        /// node-level pruning is at most as aggressive as object-level
        /// pruning (safety of Lemma 9 given Lemma 4).
        #[test]
        fn node_bound_below_member_bound(
            uq in proptest::collection::vec(0u32..20, 1..5),
            member in proptest::collection::vec(0u32..20, 1..5),
            slack in proptest::collection::vec(0u32..5, 1..5),
        ) {
            let k = uq.len().min(member.len()).min(slack.len());
            let uq = &uq[..k];
            let member = &member[..k];
            let lb: Vec<u32> = member[..k].iter().zip(slack[..k].iter())
                .map(|(&m, &s)| m.saturating_sub(s)).collect();
            let ub: Vec<u32> = member[..k].iter().zip(slack[..k].iter())
                .map(|(&m, &s)| m + s).collect();
            let node_bound = lb_dist_sn_node(uq, &lb, &ub);
            let member_bound = lb_dist_sn_users(uq, member);
            prop_assert!(node_bound <= member_bound,
                "node bound {node_bound} > member bound {member_bound}");
        }
    }
}
