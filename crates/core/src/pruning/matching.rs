//! Matching score pruning (paper Section 3.1, Lemma 6, Eqs. 15 and 18).
//!
//! Upper bounds come from keyword *supersets*: `Match_Score(u, R)` is
//! monotone in `R` (Lemma 2), so scoring against `sup_K ⊇ ∪_{o∈R} o.K`
//! can only overestimate — if even the overestimate misses `θ`, the POI
//! (or index node) is safely pruned (Lemmas 1 and 6). Signatures make the
//! membership test `f ∈ sup_K` one-sided (false positives only), which
//! again can only *raise* the upper bound: still safe.
//!
//! Lower bounds (Eq. 18) come from keyword *subsets*: sample POIs stored
//! in each node carry `sub_K ⊆ ∪_{o∈R(sample)} o.K` for every radius
//! `r ≥ r_min`, so scoring against `sub_K` underestimates the matching
//! score of the sample's ball.

use gpssn_index::{RoadIndex, RoadNodeAugment};
use gpssn_social::InterestVector;
use gpssn_spatial::KeywordSignature;

/// Eq. (15): upper bound of the matching score against a keyword
/// signature — the interest mass on topics the signature may contain.
pub fn ub_match_score_signature(interest: &InterestVector, sig: &KeywordSignature) -> f64 {
    (0..interest.dim())
        .filter(|&f| sig.possibly_contains(f as u32))
        .map(|f| interest.weight(f))
        .sum()
}

/// Upper bound of the matching score against an explicit keyword list
/// (exact `Match_Score` against that list, used with `sup_K`).
pub fn ub_match_score_keywords(interest: &InterestVector, keywords: &[u32]) -> f64 {
    gpssn_ssn::match_score_keywords(interest, keywords)
}

/// Eq. (18): lower bound of the best matching score available inside an
/// index node, via its sample POIs' `sub_K` sets:
/// `max_{sample o_i} min_{u_j ∈ S} Match_Score(u_j, o_i.sub_K)`.
///
/// Returns 0.0 when the node has no samples or `interests` is empty.
pub fn lb_match_score_node(
    index: &RoadIndex,
    node: &RoadNodeAugment,
    interests: &[&InterestVector],
) -> f64 {
    if interests.is_empty() {
        return 0.0;
    }
    node.samples
        .iter()
        .map(|&o| {
            let sub = &index.poi(o).sub_keywords;
            interests
                .iter()
                .map(|w| gpssn_ssn::match_score_keywords(w, sub))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(w: &[f64]) -> InterestVector {
        InterestVector::new(w.to_vec())
    }

    #[test]
    fn signature_bound_counts_possible_topics() {
        let sig = KeywordSignature::from_keywords([0, 2]);
        let w = iv(&[0.5, 0.9, 0.3]);
        // Topics 0 and 2 possibly present: 0.5 + 0.3.
        assert!((ub_match_score_signature(&w, &sig) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_signature_gives_zero() {
        let sig = KeywordSignature::empty();
        let w = iv(&[1.0, 1.0]);
        assert_eq!(ub_match_score_signature(&w, &sig), 0.0);
    }

    #[test]
    fn keyword_bound_equals_exact_match_score() {
        let w = iv(&[0.4, 0.8, 0.8]);
        assert!((ub_match_score_keywords(&w, &[1, 2]) - 1.6).abs() < 1e-12);
    }

    proptest! {
        /// The signature bound is never below the exact keyword-set score
        /// (Lemma 1 safety via Lemma 2 monotonicity + one-sided hashing).
        #[test]
        fn signature_upper_bounds_exact(
            weights in proptest::collection::vec(0.0f64..1.0, 1..8),
            ks in proptest::collection::vec(0u32..8, 0..12),
        ) {
            let w = iv(&weights);
            let sig = KeywordSignature::from_keywords(ks.iter().copied());
            let exact = gpssn_ssn::match_score_keywords(&w, &ks);
            prop_assert!(ub_match_score_signature(&w, &sig) + 1e-12 >= exact);
        }

        /// A superset keyword list never lowers the bound (Lemma 2).
        #[test]
        fn superset_monotone(
            weights in proptest::collection::vec(0.0f64..1.0, 1..8),
            ks in proptest::collection::vec(0u32..8, 0..10),
            extra in proptest::collection::vec(0u32..8, 0..6),
        ) {
            let w = iv(&weights);
            let base = ub_match_score_keywords(&w, &ks);
            let mut sup = ks.clone();
            sup.extend(extra);
            prop_assert!(ub_match_score_keywords(&w, &sup) + 1e-12 >= base);
        }
    }
}
