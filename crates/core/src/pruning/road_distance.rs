//! Road-network distance pruning (Lemmas 5 and 7, Eqs. 5–6 and 16–17).
//!
//! Candidate POI sets are road-network balls `R(o_i) = ⊙(o_i, r)` around
//! candidate centers `o_i` (any valid `R` containing `o_i` lies inside
//! `⊙(o_i, 2r)`, Fig. 2; conversely a ball of radius `r` automatically
//! satisfies the pairwise-`2r` predicate). Bounds on the objective
//! `maxdist_RN(S, R(o_i))` follow from the pivot tables:
//!
//! * **lower** (Eqs. 6/17): `maxdist ≥ dist_RN(u_q, o_i)`, lower-bounded
//!   through the pivots; for an index node, through its `[lb, ub]` pivot
//!   ranges.
//! * **upper** (Eqs. 5/16): `maxdist ≤ max_{u∈S} dist(u, o_i) + r`,
//!   upper-bounded through the pivots with the candidate users' (or
//!   social nodes') per-pivot *upper* bounds. The paper's `+2r` term
//!   corresponds to its radius-`2r` superset `R'`; our candidate sets are
//!   the radius-`r` balls themselves, hence `+r`.

/// Eq. (6)/(17) at object level: lower bound on `dist_RN(u_q, o_i)` (and
/// hence on `maxdist_RN(S, R(o_i))`) from per-pivot distance vectors.
pub fn lb_maxdist_poi(uq_rn: &[f64], poi_rn: &[f64]) -> f64 {
    debug_assert_eq!(uq_rn.len(), poi_rn.len());
    uq_rn
        .iter()
        .zip(poi_rn.iter())
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Eq. (5)/(16) at object level: upper bound on `maxdist_RN(S, R(o_i))`
/// for any `S` whose users' per-pivot distances are bounded by
/// `scand_ub_rn` (elementwise max over the candidate set).
pub fn ub_maxdist_poi(scand_ub_rn: &[f64], poi_rn: &[f64], radius: f64) -> f64 {
    debug_assert_eq!(scand_ub_rn.len(), poi_rn.len());
    scand_ub_rn
        .iter()
        .zip(poi_rn.iter())
        .map(|(&s, &p)| s + p)
        .fold(f64::INFINITY, f64::min)
        + radius
}

/// Eq. (17): node-level lower bound on `dist_RN(u_q, e_R)` from the
/// node's per-pivot `[lb, ub]` ranges.
pub fn lb_maxdist_node(uq_rn: &[f64], lb_pivot: &[f64], ub_pivot: &[f64]) -> f64 {
    debug_assert_eq!(uq_rn.len(), lb_pivot.len());
    let mut best = 0.0f64;
    for k in 0..uq_rn.len() {
        let d = uq_rn[k];
        let bound = if d < lb_pivot[k] {
            lb_pivot[k] - d
        } else if d > ub_pivot[k] {
            d - ub_pivot[k]
        } else {
            0.0
        };
        best = best.max(bound);
    }
    best
}

/// Eq. (16): node-level upper bound on `maxdist_RN(S, R(o_i))` over every
/// center `o_i` under the node.
pub fn ub_maxdist_node(scand_ub_rn: &[f64], ub_pivot: &[f64], radius: f64) -> f64 {
    debug_assert_eq!(scand_ub_rn.len(), ub_pivot.len());
    scand_ub_rn
        .iter()
        .zip(ub_pivot.iter())
        .map(|(&s, &p)| s + p)
        .fold(f64::INFINITY, f64::min)
        + radius
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn poi_bounds() {
        let uq = [3.0, 7.0];
        let poi = [5.0, 6.0];
        assert_eq!(lb_maxdist_poi(&uq, &poi), 2.0);
        // min(3+5, 7+6) + r = 8 + 1.5.
        assert_eq!(ub_maxdist_poi(&uq, &poi, 1.5), 9.5);
    }

    #[test]
    fn node_lb_cases() {
        assert_eq!(lb_maxdist_node(&[1.0], &[4.0], &[6.0]), 3.0);
        assert_eq!(lb_maxdist_node(&[9.0], &[4.0], &[6.0]), 3.0);
        assert_eq!(lb_maxdist_node(&[5.0], &[4.0], &[6.0]), 0.0);
        assert_eq!(lb_maxdist_node(&[1.0, 9.0], &[4.0, 4.0], &[6.0, 6.0]), 3.0);
    }

    #[test]
    fn node_ub_takes_best_pivot() {
        assert_eq!(ub_maxdist_node(&[3.0, 1.0], &[5.0, 9.0], 2.0), 10.0);
    }

    proptest! {
        /// With exact pivot distances d(x, p) for points on a (virtual)
        /// metric, the lb never exceeds |d(uq,pivot) ± …| consistency:
        /// node lb ≤ object lb for any member inside the node ranges.
        #[test]
        fn node_lb_below_member_lb(
            uq in proptest::collection::vec(0.0f64..20.0, 1..5),
            member in proptest::collection::vec(0.0f64..20.0, 1..5),
            slack in proptest::collection::vec(0.0f64..5.0, 1..5),
        ) {
            let k = uq.len().min(member.len()).min(slack.len());
            let uq = &uq[..k];
            let member = &member[..k];
            let lb: Vec<f64> = member.iter().zip(&slack[..k]).map(|(&m, &s)| (m - s).max(0.0)).collect();
            let ub: Vec<f64> = member.iter().zip(&slack[..k]).map(|(&m, &s)| m + s).collect();
            prop_assert!(lb_maxdist_node(uq, &lb, &ub) <= lb_maxdist_poi(uq, member) + 1e-9);
        }

        /// Object ub dominates object lb whenever both derive from a
        /// common true distance structure: for any "true" distances
        /// t_u (uq to pivots) and t_o (center to pivots) coming from one
        /// metric point pair with d(uq, o) = d, we have lb ≤ d ≤ ub − r.
        #[test]
        fn bounds_sandwich_synthetic_metric(d in 0.0f64..10.0,
                                            offs in proptest::collection::vec(0.0f64..10.0, 1..5),
                                            r in 0.1f64..3.0) {
            // Place uq at 0 and o at d on a line; pivots at `offs`.
            let uq: Vec<f64> = offs.to_vec();
            let po: Vec<f64> = offs.iter().map(|&p| (p - d).abs()).collect();
            let lb = lb_maxdist_poi(&uq, &po);
            let ub = ub_maxdist_poi(&uq, &po, r);
            prop_assert!(lb <= d + 1e-9);
            prop_assert!(ub + 1e-9 >= d + r || ub + 1e-9 >= d); // ub covers S={uq}
        }
    }
}
