//! GP-SSN query parameters, answers, and exact predicate validation
//! (Definition 5 of the paper).

use gpssn_graph::is_connected_subset;
use gpssn_road::PoiId;
use gpssn_social::UserId;
use gpssn_ssn::{match_score, SpatialSocialNetwork};

/// A group planning query over a spatial-social network.
#[derive(Debug, Clone, PartialEq)]
pub struct GpSsnQuery {
    /// The query issuer `u_q` (always part of the answer group).
    pub user: UserId,
    /// Group size `τ` (number of users including `u_q`).
    pub tau: usize,
    /// Pairwise common-interest threshold `γ`.
    pub gamma: f64,
    /// User–POI-set matching threshold `θ`.
    pub theta: f64,
    /// Spatial radius `r`: any two POIs of `R` are within road distance
    /// `2r` (we materialize `R` as road-network balls of radius `r`).
    pub radius: f64,
}

impl GpSsnQuery {
    /// A query with the default parameter values used throughout the
    /// evaluation (`τ=5, γ=0.3, θ=0.5, r=2`; Table 3's bold defaults are
    /// lost in the extended abstract's extraction — we pick the values
    /// that keep the default workload feasible, see EXPERIMENTS.md).
    pub fn with_defaults(user: UserId) -> Self {
        GpSsnQuery {
            user,
            tau: 5,
            gamma: 0.3,
            theta: 0.5,
            radius: 2.0,
        }
    }

    /// Sanity-checks the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.tau == 0 {
            return Err("tau must be at least 1".into());
        }
        if !(self.gamma.is_finite() && self.gamma >= 0.0) {
            return Err("gamma must be finite and non-negative".into());
        }
        if !(self.theta.is_finite() && self.theta >= 0.0) {
            return Err("theta must be finite and non-negative".into());
        }
        if !(self.radius.is_finite() && self.radius > 0.0) {
            return Err("radius must be finite and positive".into());
        }
        Ok(())
    }
}

/// A GP-SSN answer: the user group `S`, the POI set `R`, and the achieved
/// objective `maxdist_RN(S, R)`.
#[derive(Debug, Clone, PartialEq)]
pub struct GpSsnAnswer {
    /// The user group `S` (sorted, contains the query user).
    pub users: Vec<UserId>,
    /// The POI set `R` (sorted).
    pub pois: Vec<PoiId>,
    /// `maxdist_RN(S, R)` — the minimized objective.
    pub maxdist: f64,
}

/// Checks every predicate of Definition 5 exactly (no bounds, no
/// indexes). Returns `Err` naming the first violated condition. Used by
/// tests and by the refinement step's final verification.
pub fn check_answer(
    ssn: &SpatialSocialNetwork,
    q: &GpSsnQuery,
    answer: &GpSsnAnswer,
) -> Result<(), String> {
    let GpSsnAnswer {
        users,
        pois,
        maxdist,
    } = answer;
    // (1) u_q ∈ S and |S| = τ.
    if !users.contains(&q.user) {
        return Err("query user not in S".into());
    }
    if users.len() != q.tau {
        return Err(format!("|S| = {} != tau = {}", users.len(), q.tau));
    }
    // (2) S connected in G_s.
    if !is_connected_subset(ssn.social().graph(), users) {
        return Err("S is not connected in the social network".into());
    }
    // (3) pairwise interest scores >= gamma.
    if !ssn.social().pairwise_interest_holds(users, q.gamma) {
        return Err("pairwise interest score below gamma".into());
    }
    // (4) pairwise POI road distance <= 2r.
    if pois.is_empty() {
        return Err("R is empty".into());
    }
    for (i, &a) in pois.iter().enumerate() {
        for &b in &pois[i + 1..] {
            let d = ssn.pois().poi_distance(ssn.road(), a, b);
            if d > 2.0 * q.radius + 1e-9 {
                return Err(format!("POIs {a},{b} are {d} > 2r apart"));
            }
        }
    }
    // (5) matching score >= theta for every user.
    for &u in users {
        let s = match_score(ssn, u, pois);
        if s < q.theta - 1e-12 {
            return Err(format!("user {u} match score {s} < theta"));
        }
    }
    // (6) reported maxdist is the true maxdist.
    let actual = ssn.maxdist_rn(users, pois);
    if (actual - maxdist).abs() > 1e-6 {
        return Err(format!("reported maxdist {maxdist} != actual {actual}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpssn_road::{NetworkPoint, Poi, PoiSet, RoadNetwork};
    use gpssn_social::{InterestVector, SocialNetwork};
    use gpssn_spatial::Point;

    fn tiny() -> SpatialSocialNetwork {
        let locs = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(4.0, 0.0),
        ];
        let road = RoadNetwork::from_euclidean_edges(locs, &[(0, 1), (1, 2)]);
        let pois = PoiSet::new(
            &road,
            vec![
                Poi::new(NetworkPoint::new(&road, 0, 1.0), vec![0]),
                Poi::new(NetworkPoint::new(&road, 1, 0.5), vec![1]),
            ],
        );
        let social = SocialNetwork::new(
            vec![
                InterestVector::new(vec![0.8, 0.6]),
                InterestVector::new(vec![0.6, 0.8]),
                InterestVector::new(vec![1.0, 0.0]),
            ],
            &[(0, 1), (1, 2)],
        );
        let homes = vec![
            NetworkPoint::new(&road, 0, 0.0),
            NetworkPoint::new(&road, 0, 2.0),
            NetworkPoint::new(&road, 1, 2.0),
        ];
        SpatialSocialNetwork::new(road, pois, social, homes)
    }

    #[test]
    fn default_query_is_valid() {
        assert!(GpSsnQuery::with_defaults(0).validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut q = GpSsnQuery::with_defaults(0);
        q.tau = 0;
        assert!(q.validate().is_err());
        let mut q = GpSsnQuery::with_defaults(0);
        q.radius = 0.0;
        assert!(q.validate().is_err());
        let mut q = GpSsnQuery::with_defaults(0);
        q.gamma = f64::NAN;
        assert!(q.validate().is_err());
    }

    #[test]
    fn accepts_a_correct_answer() {
        let ssn = tiny();
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.9,
            theta: 0.5,
            radius: 2.0,
        };
        // S = {0,1}: friends, score 0.48+0.48 = 0.96 >= 0.9.
        // R = {0,1}: dist = 1.5 <= 4. Matching: u0 covers {0,1} -> 1.4.
        let users = vec![0, 1];
        let pois = vec![0, 1];
        let maxdist = ssn.maxdist_rn(&users, &pois);
        let ans = GpSsnAnswer {
            users,
            pois,
            maxdist,
        };
        assert_eq!(check_answer(&ssn, &q, &ans), Ok(()));
    }

    #[test]
    fn rejects_wrong_size_disconnected_and_low_scores() {
        let ssn = tiny();
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.9,
            theta: 0.5,
            radius: 2.0,
        };
        let md = |u: &Vec<u32>, p: &Vec<u32>| ssn.maxdist_rn(u, p);

        // Missing query user.
        let ans = GpSsnAnswer {
            users: vec![1, 2],
            pois: vec![0],
            maxdist: md(&vec![1, 2], &vec![0]),
        };
        assert!(check_answer(&ssn, &q, &ans)
            .unwrap_err()
            .contains("query user"));

        // Wrong size.
        let ans = GpSsnAnswer {
            users: vec![0],
            pois: vec![0],
            maxdist: md(&vec![0], &vec![0]),
        };
        assert!(check_answer(&ssn, &q, &ans).unwrap_err().contains("|S|"));

        // Disconnected: 0 and 2 are not adjacent.
        let ans = GpSsnAnswer {
            users: vec![0, 2],
            pois: vec![0],
            maxdist: md(&vec![0, 2], &vec![0]),
        };
        assert!(check_answer(&ssn, &q, &ans)
            .unwrap_err()
            .contains("connected"));

        // Interest too low: score(0,1)=0.96 < gamma=0.99.
        let strict = GpSsnQuery {
            gamma: 0.99,
            ..q.clone()
        };
        let ans = GpSsnAnswer {
            users: vec![0, 1],
            pois: vec![0, 1],
            maxdist: md(&vec![0, 1], &vec![0, 1]),
        };
        assert!(check_answer(&ssn, &strict, &ans)
            .unwrap_err()
            .contains("interest"));

        // Matching too low: u2=(1.0, 0.0) against R={1} (keyword 1) -> 0.
        let q3 = GpSsnQuery {
            user: 2,
            tau: 2,
            gamma: 0.0,
            theta: 0.5,
            radius: 2.0,
        };
        let ans = GpSsnAnswer {
            users: vec![1, 2],
            pois: vec![1],
            maxdist: md(&vec![1, 2], &vec![1]),
        };
        assert!(check_answer(&ssn, &q3, &ans)
            .unwrap_err()
            .contains("match score"));

        // Wrong maxdist.
        let ans = GpSsnAnswer {
            users: vec![0, 1],
            pois: vec![0, 1],
            maxdist: 0.0,
        };
        assert!(check_answer(&ssn, &q, &ans)
            .unwrap_err()
            .contains("maxdist"));

        // Empty R.
        let ans = GpSsnAnswer {
            users: vec![0, 1],
            pois: vec![],
            maxdist: 0.0,
        };
        assert!(check_answer(&ssn, &q, &ans).unwrap_err().contains("empty"));
    }

    #[test]
    fn radius_violation_detected() {
        let ssn = tiny();
        // POIs 0 and 1 are 1.5 apart; with r = 0.5, 2r = 1.0 < 1.5.
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.0,
            theta: 0.0,
            radius: 0.5,
        };
        let users = vec![0, 1];
        let pois = vec![0, 1];
        let maxdist = ssn.maxdist_rn(&users, &pois);
        let ans = GpSsnAnswer {
            users,
            pois,
            maxdist,
        };
        assert!(check_answer(&ssn, &q, &ans).unwrap_err().contains("2r"));
    }
}
