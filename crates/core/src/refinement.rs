//! Refinement: exact verification of candidate centers (Algorithm 2,
//! lines 29–31).
//!
//! A candidate center `o_i` defines the POI set `R(o_i) = ⊙(o_i, r)` (the
//! road-network ball, which automatically satisfies the pairwise-`2r`
//! predicate). Verifying a center means finding the best feasible user
//! group for it:
//!
//! 1. compute `R(o_i)` exactly and its keyword union;
//! 2. keep candidate users whose `Match_Score(u, R) >= θ` (the query user
//!    must qualify);
//! 3. compute each eligible user's cost `c(u) = max_{o∈R} dist_RN(u, o)`;
//! 4. the optimal group minimizes `max_{u∈S} c(u)` subject to: `|S| = τ`,
//!    `u_q ∈ S`, `S` connected in `G_s`, pairwise interest `>= γ`.
//!    Enabling users in ascending cost order makes feasibility *monotone*
//!    in the enabled prefix, so a binary search over prefix lengths finds
//!    the optimal objective `c_k` exactly (any group with smaller maximum
//!    cost would fit inside a shorter, infeasible prefix).

use crate::breaker::CircuitBreaker;
use crate::cache::{DistDir, DistanceCache};
use crate::error::{BudgetState, GpSsnError};
use crate::query::{GpSsnAnswer, GpSsnQuery};
use gpssn_graph::{enumerate_connected_subsets, ChOracle, ChSearch, DijkstraWorkspace};
use gpssn_road::{dist_rn_many_ch, dist_rn_many_counted_with, NetworkPoint, PoiId};
use gpssn_social::UserId;
use gpssn_ssn::{match_score_keywords, SpatialSocialNetwork};
use std::sync::Arc;

/// Fault-injection points for the panic-isolation tests. Always compiled
/// (the hot-path cost is one relaxed atomic load per verified center);
/// disabled unless a test arms them.
pub mod test_hooks {
    use std::sync::atomic::AtomicU32;

    /// When set to a user id, [`super::verify_center`] panics on entry
    /// for queries from that user — simulating a defect deep inside
    /// refinement. `u32::MAX` (the default) disarms the hook.
    pub static PANIC_ON_USER: AtomicU32 = AtomicU32::new(u32::MAX);
}

/// Outcome of verifying one candidate center.
#[derive(Debug, Clone)]
pub struct CenterVerification {
    /// Best feasible answer for this center, if any. When the budget
    /// trips mid-verification this holds the best *fully verified* group
    /// found before the trip (possibly none) — every group a feasibility
    /// probe returns has had connectivity and pairwise interest checked
    /// exactly, so it is a valid answer even if the probe's *verdict* was
    /// cut short. The caller must still treat the center as unresolved
    /// for gap purposes (a better group may exist at a shorter prefix).
    pub answer: Option<GpSsnAnswer>,
    /// Number of `(S, R)` pairs (connected subsets) examined.
    pub subsets_examined: u64,
}

/// Per-worker state threaded through [`verify_center`]: a reusable
/// Dijkstra workspace (allocation-free repeated runs), the optional
/// cross-query [`DistanceCache`], and the query's budget meter. In
/// parallel refinement each worker owns its workspace while the cache
/// and budget are shared.
pub struct VerifyContext<'a> {
    /// Reused across every Dijkstra this worker runs.
    pub ws: &'a mut DijkstraWorkspace,
    /// Contraction-hierarchy oracle plus this worker's reusable CH
    /// workspace. `Some` routes every `dist_RN` row/column through the
    /// oracle (answers are bit-identical to the Dijkstra path — see
    /// `gpssn_graph::ch`); ball computation always stays on Dijkstra
    /// (the oracle serves point-to-point distances, not range scans).
    pub ch: Option<ChBackend<'a>>,
    /// Cross-query ball / `dist_RN` cache, if the engine has one.
    pub cache: Option<&'a DistanceCache>,
    /// The engine's CH circuit breaker, if one guards the oracle. A
    /// panic out of a CH batch records a failure and the batch is
    /// re-served from Dijkstra (bit-identical); enough consecutive
    /// failures open the breaker and later batches skip the oracle
    /// until a half-open probe succeeds (see [`crate::breaker`]).
    pub breaker: Option<&'a CircuitBreaker>,
    /// The query's budget meter (shared across workers).
    pub budget: &'a BudgetState,
    /// Telemetry sink, if the engine has one attached.
    pub obs: Option<&'a gpssn_obs::Obs>,
    /// Trace-span id of the enclosing refinement phase (0 when tracing
    /// is off); each verified center opens a `verify_center` span under
    /// it, which works across worker threads.
    pub span_parent: u64,
}

/// A CH oracle handle paired with a per-worker search workspace.
pub struct ChBackend<'a> {
    /// The road index's contraction hierarchy.
    pub oracle: &'a ChOracle,
    /// Reused across every CH batch this worker runs.
    pub search: &'a mut ChSearch,
}

/// One multi-target `dist_RN` batch from `source` to every `target`,
/// dispatched on the context's backend. Both paths produce bit-identical
/// rows (the CH oracle unpacks shortcuts and refolds original edge
/// weights in Dijkstra's exact operation order); settles are charged to
/// the same budget either way, with CH batches additionally tallied for
/// [`crate::QueryMetrics::ch_batches`].
fn dist_batch(
    ssn: &SpatialSocialNetwork,
    ctx: &mut VerifyContext<'_>,
    source: &NetworkPoint,
    targets: &[NetworkPoint],
) -> Vec<f64> {
    // `filter(tracing_on)` keeps the disabled path to one relaxed load —
    // no inert guard, no `Instant::now`.
    let obs = ctx.obs.filter(|o| o.tracing_on());
    if let Some(chb) = ctx.ch.as_mut() {
        // A CH panic must not take the query down — the Dijkstra path
        // below produces the identical row, so the oracle is strictly
        // optional. Failures feed the breaker; an open breaker skips
        // the oracle (and the panic machinery) entirely.
        if ctx.breaker.is_none_or(|b| b.admit(ctx.obs)) {
            let span = obs.map(|o| o.tracer().span("ch_p2p"));
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                dist_rn_many_ch(ssn.road(), chb.oracle, chb.search, source, targets)
            }));
            drop(span);
            match attempt {
                Ok((row, settled)) => {
                    if let Some(b) = ctx.breaker {
                        b.record_success(ctx.obs);
                    }
                    ctx.budget.note_ch_batch(settled);
                    ctx.budget.add_settles(settled);
                    return row;
                }
                Err(_) => {
                    // The unwound batch left the workspace mid-sweep;
                    // wipe it so the next batch stays bit-identical.
                    chb.search.hard_reset();
                    ctx.budget.note_ch_fault();
                    if let Some(b) = ctx.breaker {
                        b.record_failure(ctx.obs);
                    }
                    if let Some(o) = ctx.obs {
                        o.inc("gpssn_ch_faults_total", &[], 1);
                    }
                }
            }
        }
    }
    let _span = obs.map(|o| o.tracer().span("dijkstra_batch"));
    ctx.budget.note_dijkstra_batch();
    let (row, settled) = dist_rn_many_counted_with(ssn.road(), ctx.ws, source, targets);
    ctx.budget.add_settles(settled);
    row
}

/// `dist_RN(user, o)` for every ball member `o`, via one multi-target
/// batch seeded at the user's home — served from the cache when every
/// pair is resident (all-or-nothing: a partial hit recomputes the whole
/// run, since one Dijkstra covers all targets anyway). Freshly computed
/// values are inserted even when the budget trips mid-run (they are
/// exact). `None` means the budget tripped.
fn row_from_user(
    ssn: &SpatialSocialNetwork,
    ctx: &mut VerifyContext<'_>,
    user: UserId,
    r_ids: &[PoiId],
    positions: &[NetworkPoint],
) -> Option<Vec<f64>> {
    if let Some(cache) = ctx.cache {
        let mut row = Vec::with_capacity(r_ids.len());
        let all_hit = r_ids
            .iter()
            .all(|&o| match cache.get_dist(user, o, DistDir::FromUser) {
                Some(d) => {
                    row.push(d);
                    true
                }
                None => false,
            });
        if all_hit {
            ctx.budget.note_dist_cache(true, r_ids.len() as u64);
            return Some(row);
        }
    }
    let row = dist_batch(ssn, ctx, &ssn.home(user), positions);
    if let Some(cache) = ctx.cache {
        ctx.budget.note_dist_cache(false, r_ids.len() as u64);
        for (&o, &d) in r_ids.iter().zip(&row) {
            cache.put_dist(user, o, DistDir::FromUser, d);
        }
    }
    if ctx.budget.is_tripped() {
        None
    } else {
        Some(row)
    }
}

/// `dist_RN(u, poi)` for every eligible user `u`, via one multi-target
/// batch seeded at the POI. Same cache contract as
/// [`row_from_user`]; the direction is part of the key (see
/// [`crate::cache`] for why).
fn col_from_poi(
    ssn: &SpatialSocialNetwork,
    ctx: &mut VerifyContext<'_>,
    poi: PoiId,
    pos: &NetworkPoint,
    eligible: &[UserId],
    homes: &[NetworkPoint],
) -> Option<Vec<f64>> {
    if let Some(cache) = ctx.cache {
        let mut col = Vec::with_capacity(eligible.len());
        let all_hit = eligible
            .iter()
            .all(|&u| match cache.get_dist(u, poi, DistDir::FromPoi) {
                Some(d) => {
                    col.push(d);
                    true
                }
                None => false,
            });
        if all_hit {
            ctx.budget.note_dist_cache(true, eligible.len() as u64);
            return Some(col);
        }
    }
    let col = dist_batch(ssn, ctx, pos, homes);
    if let Some(cache) = ctx.cache {
        ctx.budget.note_dist_cache(false, eligible.len() as u64);
        for (&u, &d) in eligible.iter().zip(&col) {
            cache.put_dist(u, poi, DistDir::FromPoi, d);
        }
    }
    if ctx.budget.is_tripped() {
        None
    } else {
        Some(col)
    }
}

/// Verifies candidate center `center`. `best_so_far` allows early exits:
/// a center whose query-user cost already reaches it cannot improve the
/// global answer. `enumeration_cap` bounds the subsets examined per
/// feasibility check (a safety valve; `u32::MAX as usize` disables it).
/// Dijkstra settles and enumerated subsets are charged to `ctx.budget`;
/// once it trips the verification stops early, reporting the best group
/// it had fully verified by then (see [`CenterVerification::answer`]).
///
/// **Determinism.** On a completed (untripped) search the returned
/// group is the one found at the minimal feasible cost-prefix `k*` — a
/// pure function of the center, the exact user costs, and the query's
/// social constraints. Any `best_so_far` larger than the center's
/// optimal value yields the same group bit-for-bit, which is what lets
/// parallel refinement (whose workers race the shared bound downward)
/// reproduce the sequential answer exactly.
///
/// **Errors.** `Err` means an internal invariant was violated (a group
/// member missing from the cost table) — never a budget trip, which is
/// reported through [`CenterVerification::answer`] as before. Callers
/// treat an `Err` center as unresolved: record the fault, keep the
/// query alive, and let the degradation ladder decide what to serve.
pub fn verify_center(
    ssn: &SpatialSocialNetwork,
    q: &GpSsnQuery,
    candidates: &[UserId],
    center: PoiId,
    best_so_far: f64,
    enumeration_cap: usize,
    ctx: &mut VerifyContext<'_>,
) -> Result<CenterVerification, GpSsnError> {
    if q.user == test_hooks::PANIC_ON_USER.load(std::sync::atomic::Ordering::Relaxed) {
        panic!("test hook: injected refinement fault for user {}", q.user);
    }
    if gpssn_failpoint::failpoint!("refine::verify_center") {
        panic!("injected fault: refine::verify_center (center {center})");
    }
    // Opened with an explicit parent so worker threads chain under the
    // refinement phase; nested spans (ball, distance batches) pick this
    // span up through the thread-local current-span cell.
    let _vspan = ctx.obs.filter(|o| o.tracing_on()).map(|o| {
        o.tracer()
            .span_with_parent("verify_center", ctx.span_parent)
    });
    let mut out = CenterVerification {
        answer: None,
        subsets_examined: 0,
    };
    let budget = ctx.budget;
    let center_pos = ssn.pois().get(center).position;
    let ball_span = ctx
        .obs
        .filter(|o| o.tracing_on())
        .map(|o| o.tracer().span("ball"));
    let ball: Arc<Vec<(PoiId, f64)>> = match ctx.cache {
        Some(cache) => match cache.get_ball(center, q.radius) {
            Some(b) => {
                budget.note_ball_cache(true);
                b
            }
            None => {
                budget.note_ball_cache(false);
                let b = Arc::new(ssn.pois().network_ball_with(
                    ssn.road(),
                    ctx.ws,
                    &center_pos,
                    q.radius,
                ));
                cache.put_ball(center, q.radius, Arc::clone(&b));
                b
            }
        },
        None => Arc::new(
            ssn.pois()
                .network_ball_with(ssn.road(), ctx.ws, &center_pos, q.radius),
        ),
    };
    drop(ball_span);
    if ball.is_empty() {
        return Ok(out);
    }
    let r_ids: Vec<PoiId> = ball.iter().map(|&(o, _)| o).collect();
    let union = ssn.pois().keyword_union(&r_ids);

    // Matching eligibility (the query user must qualify).
    if match_score_keywords(ssn.social().interest(q.user), &union) < q.theta {
        return Ok(out);
    }

    // Exact cost of the query user first — one Dijkstra, cheapest exit.
    let positions: Vec<NetworkPoint> = r_ids.iter().map(|&o| ssn.pois().get(o).position).collect();
    let Some(cq_dists) = row_from_user(ssn, ctx, q.user, &r_ids, &positions) else {
        return Ok(out);
    };
    let cq = cq_dists.into_iter().fold(0.0f64, f64::max);
    if cq >= best_so_far || budget.is_tripped() {
        return Ok(out); // any group containing u_q costs at least cq
    }

    let mut eligible: Vec<UserId> = candidates
        .iter()
        .copied()
        .filter(|&u| match_score_keywords(ssn.social().interest(u), &union) >= q.theta)
        .collect();
    if !eligible.contains(&q.user) {
        eligible.push(q.user);
    }
    if eligible.len() < q.tau {
        return Ok(out);
    }

    // Exact user costs c(u) = max_{o ∈ R} dist_RN(u, o), computed with
    // one multi-target Dijkstra per ball POI (columns), which beats one
    // Dijkstra per user whenever |R| < |eligible| — the common case.
    let homes: Vec<NetworkPoint> = eligible.iter().map(|&u| ssn.home(u)).collect();
    let mut cost_vec = vec![0.0f64; eligible.len()];
    if positions.len() <= eligible.len() {
        for (&o, pos) in r_ids.iter().zip(&positions) {
            let Some(col) = col_from_poi(ssn, ctx, o, pos, &eligible, &homes) else {
                return Ok(out);
            };
            for (c, d) in cost_vec.iter_mut().zip(col) {
                *c = c.max(d);
            }
        }
    } else {
        for (c, &u) in cost_vec.iter_mut().zip(&eligible) {
            let Some(row) = row_from_user(ssn, ctx, u, &r_ids, &positions) else {
                return Ok(out);
            };
            *c = row.into_iter().fold(0.0f64, f64::max);
        }
    }
    let mut costs: Vec<(UserId, f64)> = eligible.iter().copied().zip(cost_vec).collect();
    // Total order (panic-proof under NaN) with an id tie-break, so the
    // enabled prefix at any length is canonical — independent of the
    // candidate ordering the caller happened to pass.
    costs.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    // Only prefixes that beat the incumbent are worth exploring.
    let usable = costs.partition_point(|&(_, c)| c < best_so_far);
    let costs = &costs[..usable];
    if costs.len() < q.tau || !costs.iter().any(|&(u, _)| u == q.user) {
        return Ok(out);
    }

    // Binary search the smallest feasible enabled prefix (feasibility is
    // monotone in the prefix length).
    let graph = ssn.social().graph();
    let m = ssn.social().num_users();
    let feasible_at = |k: usize, out: &mut CenterVerification| -> Option<Vec<UserId>> {
        let mut allowed = vec![false; m];
        for &(u, _) in &costs[..k] {
            allowed[u as usize] = true;
        }
        if !allowed[q.user as usize] {
            return None;
        }
        let mut found: Option<Vec<UserId>> = None;
        let mut visits = 0u64;
        enumerate_connected_subsets(graph, q.user, q.tau, Some(&allowed), &mut |s| {
            visits += 1;
            budget.note_group();
            if budget.is_tripped() {
                return false;
            }
            if ssn.social().pairwise_interest_holds(s, q.gamma) {
                found = Some(s.to_vec());
                return false;
            }
            visits < enumeration_cap as u64
        });
        out.subsets_examined += visits;
        found
    };

    // Every feasibility probe below may be cut short by the budget. A
    // trip only invalidates the probe's *verdict* (a truncated `None`
    // proves nothing, so the binary search must never narrow on it); a
    // group the probe did return was checked exactly before the trip and
    // stays a valid answer. So: keep the cheapest group seen, and on a
    // trip stop searching and report it — the caller folds this center's
    // lower bound into the anytime gap, which keeps the bound sound.
    let group_maxdist = |g: &[UserId]| -> Result<f64, GpSsnError> {
        let mut md = 0.0f64;
        for &u in g {
            match costs.iter().find(|&&(v, _)| v == u) {
                Some(&(_, c)) => md = md.max(c),
                // Feasibility probes only enable users drawn from the
                // cost prefix, so a missing member is a broken internal
                // invariant — surface it as a typed error, not a panic.
                None => {
                    return Err(GpSsnError::Internal(format!(
                        "refinement invariant violated: group member {u} missing from cost table \
                         of center {center}"
                    )))
                }
            }
        }
        Ok(md)
    };
    // Two trackers over the feasibility probes: `min_prefix_group` is
    // the group from the feasible probe at the *smallest* prefix
    // (feasible probes occur at strictly decreasing prefixes, so a
    // plain overwrite suffices). On a completed search that probe is at
    // the minimal feasible prefix `k*` — the binary search always
    // probes `k*` itself — making the group a pure function of the
    // center and the costs, independent of `best_so_far` (see the
    // determinism note on [`verify_center`]). `best_verified` is the
    // cheapest group any probe returned: the fallback reported when a
    // budget trip stops the search before it reaches `k*`.
    let mut best_verified: Option<(Vec<UserId>, f64)> = None;
    let mut min_prefix_group: Option<Vec<UserId>> = None;
    let record = |g: Vec<UserId>,
                  best: &mut Option<(Vec<UserId>, f64)>,
                  minp: &mut Option<Vec<UserId>>|
     -> Result<(), GpSsnError> {
        let md = group_maxdist(&g)?;
        if best.as_ref().is_none_or(|&(_, b)| md < b) {
            *best = Some((g.clone(), md));
        }
        *minp = Some(g);
        Ok(())
    };
    let mut lo = q.tau; // smallest prefix that could host a group
    let mut hi = costs.len();
    match feasible_at(hi, &mut out) {
        Some(g) => record(g, &mut best_verified, &mut min_prefix_group)?,
        None => return Ok(out), // infeasible (or truncated before any find)
    }
    while lo < hi && !budget.is_tripped() {
        let mid = (lo + hi) / 2;
        match feasible_at(mid, &mut out) {
            Some(g) => {
                record(g, &mut best_verified, &mut min_prefix_group)?;
                hi = mid;
            }
            None => {
                if budget.is_tripped() {
                    break; // verdict truncated: proves nothing
                }
                lo = mid + 1;
            }
        }
    }
    // When the search ran to completion, `hi` is the minimal feasible
    // prefix and its probe's group is optimal: its maxdist equals
    // costs[hi-1].1, and any cheaper group would fit inside a shorter,
    // infeasible prefix. On a trip, fall back to the best group
    // verified before the cut.
    let chosen = if budget.is_tripped() {
        best_verified
    } else {
        match min_prefix_group {
            Some(g) => {
                let md = group_maxdist(&g)?;
                Some((g, md))
            }
            None => None,
        }
    };
    if let Some((group, maxdist)) = chosen {
        if maxdist < best_so_far {
            let mut users = group;
            users.sort_unstable();
            let mut pois = r_ids;
            pois.sort_unstable();
            out.answer = Some(GpSsnAnswer {
                users,
                pois,
                maxdist,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpssn_road::{Poi, PoiSet, RoadNetwork};
    use gpssn_social::{InterestVector, SocialNetwork};
    use gpssn_spatial::Point;

    /// Drives [`verify_center`] with a fresh workspace, no cache, and an
    /// unlimited budget.
    fn verify(
        ssn: &SpatialSocialNetwork,
        q: &GpSsnQuery,
        candidates: &[UserId],
        center: PoiId,
        best: f64,
    ) -> CenterVerification {
        let mut ws = DijkstraWorkspace::new();
        let budget = BudgetState::unlimited();
        let mut ctx = VerifyContext {
            ws: &mut ws,
            ch: None,
            cache: None,
            breaker: None,
            budget: &budget,
            obs: None,
            span_parent: 0,
        };
        verify_center(ssn, q, candidates, center, best, usize::MAX, &mut ctx)
            .expect("no invariant faults in tests")
    }

    /// Line road 0..4 (x = 0, 2, 4, 6, 8); POIs at x = 1, 3, 7.
    /// Users: 0 at x=0, 1 at x=2, 2 at x=4, 3 at x=8.
    fn fixture() -> SpatialSocialNetwork {
        let locs: Vec<Point> = (0..5).map(|i| Point::new(2.0 * i as f64, 0.0)).collect();
        let road = RoadNetwork::from_euclidean_edges(locs, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let pois = PoiSet::new(
            &road,
            vec![
                Poi::new(NetworkPoint::new(&road, 0, 1.0), vec![0]), // x=1
                Poi::new(NetworkPoint::new(&road, 1, 1.0), vec![1]), // x=3
                Poi::new(NetworkPoint::new(&road, 3, 1.0), vec![0, 1]), // x=7
            ],
        );
        let social = SocialNetwork::new(
            vec![
                InterestVector::new(vec![0.9, 0.9]),
                InterestVector::new(vec![0.8, 0.8]),
                InterestVector::new(vec![0.9, 0.1]),
                InterestVector::new(vec![0.9, 0.9]),
            ],
            &[(0, 1), (1, 2), (2, 3)],
        );
        let homes = vec![
            NetworkPoint::new(&road, 0, 0.0), // x=0
            NetworkPoint::new(&road, 0, 2.0), // x=2
            NetworkPoint::new(&road, 1, 2.0), // x=4
            NetworkPoint::new(&road, 3, 2.0), // x=8
        ];
        SpatialSocialNetwork::new(road, pois, social, homes)
    }

    #[test]
    fn finds_best_group_for_center() {
        let ssn = fixture();
        // Center POI 0 (x=1), r=2.1: ball = {POI0 (x=1), POI1 (x=3)}.
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.5,
            theta: 0.5,
            radius: 2.1,
        };
        let v = verify(&ssn, &q, &[0, 1, 2, 3], 0, f64::INFINITY);
        let ans = v.answer.expect("feasible");
        assert_eq!(ans.users, vec![0, 1]);
        // c(0)=dist to x=3 -> 3; c(1)=max(1,1)=1 -> maxdist = 3.
        assert!((ans.maxdist - 3.0).abs() < 1e-9);
        assert!(v.subsets_examined > 0);
    }

    #[test]
    fn theta_excludes_nonmatching_users() {
        let ssn = fixture();
        // Ball around POI 0 with tiny radius: only keyword 0. User 2 has
        // w=(0.9,0.1): match=0.9. All users match keyword 0 well except
        // none fail... use theta high enough to exclude user 1 (0.8).
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.0,
            theta: 0.85,
            radius: 0.5,
        };
        let v = verify(&ssn, &q, &[0, 1, 2, 3], 0, f64::INFINITY);
        // Eligible: users 0 (0.9), 2 (0.9), 3 (0.9); group must be
        // connected & contain 0: {0,2}? not adjacent (0-1,1-2) -> no.
        assert!(v.answer.is_none());
    }

    #[test]
    fn gamma_blocks_incompatible_groups() {
        let ssn = fixture();
        // score(0,1) = 0.72+0.72 = 1.44; gamma above that blocks {0,1}.
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 1.5,
            theta: 0.0,
            radius: 2.1,
        };
        let v = verify(&ssn, &q, &[0, 1, 2, 3], 0, f64::INFINITY);
        assert!(v.answer.is_none());
    }

    #[test]
    fn best_so_far_short_circuits() {
        let ssn = fixture();
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.5,
            theta: 0.5,
            radius: 2.1,
        };
        // Optimal is 3.0; a bound of 2.9 must yield nothing.
        let v = verify(&ssn, &q, &[0, 1, 2, 3], 0, 2.9);
        assert!(v.answer.is_none());
    }

    #[test]
    fn tau_one_returns_query_user_alone() {
        let ssn = fixture();
        let q = GpSsnQuery {
            user: 1,
            tau: 1,
            gamma: 9.9,
            theta: 0.5,
            radius: 2.1,
        };
        let v = verify(&ssn, &q, &[0, 1, 2, 3], 0, f64::INFINITY);
        let ans = v.answer.expect("singleton group");
        assert_eq!(ans.users, vec![1]);
        assert!((ans.maxdist - 1.0).abs() < 1e-9); // max(dist to x=1, x=3) = 1
    }

    #[test]
    fn empty_candidates_still_considers_query_user() {
        let ssn = fixture();
        let q = GpSsnQuery {
            user: 0,
            tau: 1,
            gamma: 0.0,
            theta: 0.0,
            radius: 2.1,
        };
        let v = verify(&ssn, &q, &[], 0, f64::INFINITY);
        assert!(v.answer.is_some());
    }

    #[test]
    fn infeasible_tau_returns_none() {
        let ssn = fixture();
        let q = GpSsnQuery {
            user: 0,
            tau: 5,
            gamma: 0.0,
            theta: 0.0,
            radius: 2.1,
        };
        let v = verify(&ssn, &q, &[0, 1, 2, 3], 0, f64::INFINITY);
        assert!(v.answer.is_none());
    }
}
