//! Cross-query distance cache shared by refinement workers.
//!
//! Verifying a center recomputes two expensive artifacts that depend
//! only on the immutable network, never on the query's social
//! parameters: the road-network ball `⊙(o_i, r)` (a function of the
//! center POI and the radius) and exact `dist_RN(u, o)` values (a
//! function of a user's home and a POI position). Across a batch of
//! queries — and even within one query, when several centers share ball
//! members — the same pairs recur constantly. This module caches both,
//! keyed so that a hit returns the *bit-identical* value the uncached
//! computation would have produced:
//!
//! * balls are keyed by `(center, radius.to_bits())` — exact radius,
//!   no bucketing slack, so the cached member list is exactly what
//!   [`gpssn_road::PoiSet::network_ball`] returns;
//! * distances are keyed by `(user, poi, direction)`. Direction matters
//!   for bit-identity: Dijkstra from the user's home and Dijkstra from
//!   the POI traverse the same shortest path but sum its edge weights
//!   in opposite orders, which floating-point addition does not promise
//!   to reconcile. Keying the direction means a hit only ever replaces
//!   a run that would have produced the very same bits.
//!
//! The cache is sharded (one mutex per shard) so parallel refinement
//! workers and batch query threads do not serialize on a single lock,
//! and each shard is capacity-bounded with FIFO eviction — an evicted
//! entry is simply recomputed, so eviction can never change results. A
//! shard whose mutex was poisoned by a panicking worker recovers the
//! inner value ([`std::sync::Mutex::into_inner`] semantics): the map is
//! either intact or mid-insert of a single entry, and every stored
//! value is immutable once present, so the worst case is one lost
//! insert — never a wrong distance.

use gpssn_road::PoiId;
use gpssn_social::UserId;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Which endpoint seeded the Dijkstra that produced a cached distance.
/// See the module docs for why this is part of the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistDir {
    /// Seeded at the user's home, targeting POI positions.
    FromUser,
    /// Seeded at the POI position, targeting user homes.
    FromPoi,
}

/// Capacity configuration for [`DistanceCache`].
#[derive(Debug, Clone)]
pub struct DistanceCacheConfig {
    /// Total ball entries retained (FIFO per shard). `0` disables ball
    /// caching.
    pub ball_capacity: usize,
    /// Total `dist_RN` entries retained (FIFO per shard). `0` disables
    /// distance caching.
    pub dist_capacity: usize,
    /// Number of independently locked shards per map.
    pub shards: usize,
}

impl Default for DistanceCacheConfig {
    fn default() -> Self {
        DistanceCacheConfig {
            ball_capacity: 4096,
            dist_capacity: 1 << 17,
            shards: 8,
        }
    }
}

type BallKey = (PoiId, u64);
/// A cached ball row: the `(poi, dist_RN)` pairs inside `⊙(center, r)`,
/// shared by `Arc` so hits never copy.
type BallRow = Arc<Vec<(PoiId, f64)>>;
type DistKey = (UserId, PoiId, DistDir);

/// One FIFO-bounded map. Insertion order is the eviction order;
/// re-inserting an existing key refreshes the value without re-queueing.
struct Shard<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
    /// Lifetime entries displaced by the capacity bound.
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            evictions: 0,
        }
    }

    fn get(&self, k: &K) -> Option<V> {
        self.map.get(k).cloned()
    }

    fn insert(&mut self, k: K, v: V) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(k.clone(), v).is_none() {
            self.order.push_back(k);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                    self.evictions += 1;
                }
            }
        }
    }
}

/// Lifetime counters of one [`DistanceCache`] (never reset; a per-query
/// view lives in [`crate::CacheStats`]). All sums saturate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLifetimeStats {
    /// Ball lookups served from the cache.
    pub ball_hits: u64,
    /// Ball lookups that missed.
    pub ball_misses: u64,
    /// Ball entries displaced by the capacity bound.
    pub ball_evictions: u64,
    /// `dist_RN` lookups served from the cache.
    pub dist_hits: u64,
    /// `dist_RN` lookups that missed.
    pub dist_misses: u64,
    /// `dist_RN` entries displaced by the capacity bound.
    pub dist_evictions: u64,
}

impl CacheLifetimeStats {
    /// Lifetime hit fraction over both maps, `0.0` before any lookup
    /// (saturating arithmetic — see [`crate::CacheStats::hit_rate`]).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.ball_hits.saturating_add(self.dist_hits);
        let total = hits
            .saturating_add(self.ball_misses)
            .saturating_add(self.dist_misses);
        hits as f64 / total.max(1) as f64
    }
}

/// Resident entries and capacity of one shard, for occupancy gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOccupancy {
    /// Entries currently resident.
    pub entries: usize,
    /// FIFO capacity of this shard.
    pub capacity: usize,
}

/// Sharded, capacity-bounded cache of road-network balls and exact
/// `dist_RN` values, shared across queries (and across refinement
/// workers within one query). See the module docs for the exactness
/// argument.
pub struct DistanceCache {
    balls: Vec<Mutex<Shard<BallKey, BallRow>>>,
    dists: Vec<Mutex<Shard<DistKey, f64>>>,
    /// Lifetime hit/miss tallies (evictions live inside the shards).
    ball_hits: AtomicU64,
    ball_misses: AtomicU64,
    dist_hits: AtomicU64,
    dist_misses: AtomicU64,
}

/// Locks a shard, recovering from poisoning (see module docs).
fn lock_shard<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Poisons `m` by panicking while holding its guard (the panic is
/// caught here). Only reachable from the `cache::poison` fail-point;
/// exercises the [`lock_shard`] recovery path under chaos schedules.
fn poison_shard<T>(m: &Mutex<T>) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _guard = lock_shard(m);
        panic!("injected fault: cache::poison");
    }));
    debug_assert!(result.is_err());
}

fn shard_of<K: Hash>(key: &K, shards: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % shards
}

impl DistanceCache {
    /// Builds an empty cache with the given capacities.
    pub fn new(cfg: &DistanceCacheConfig) -> Self {
        let shards = cfg.shards.max(1);
        let per = |total: usize| {
            if total == 0 {
                0
            } else {
                total.div_ceil(shards)
            }
        };
        DistanceCache {
            balls: (0..shards)
                .map(|_| Mutex::new(Shard::new(per(cfg.ball_capacity))))
                .collect(),
            dists: (0..shards)
                .map(|_| Mutex::new(Shard::new(per(cfg.dist_capacity))))
                .collect(),
            ball_hits: AtomicU64::new(0),
            ball_misses: AtomicU64::new(0),
            dist_hits: AtomicU64::new(0),
            dist_misses: AtomicU64::new(0),
        }
    }

    /// The cached ball `⊙(center, radius)`, if present.
    pub fn get_ball(&self, center: PoiId, radius: f64) -> Option<Arc<Vec<(PoiId, f64)>>> {
        if gpssn_failpoint::failpoint!("cache::spurious_miss") {
            // A dropped entry is indistinguishable from a FIFO eviction:
            // the caller recomputes bit-identically and re-inserts.
            self.ball_misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let key = (center, radius.to_bits());
        let hit = lock_shard(&self.balls[shard_of(&key, self.balls.len())]).get(&key);
        let tally = if hit.is_some() {
            &self.ball_hits
        } else {
            &self.ball_misses
        };
        tally.fetch_add(1, Ordering::Relaxed);
        hit
    }

    /// Stores the ball `⊙(center, radius)`.
    pub fn put_ball(&self, center: PoiId, radius: f64, ball: Arc<Vec<(PoiId, f64)>>) {
        let key = (center, radius.to_bits());
        let shard = &self.balls[shard_of(&key, self.balls.len())];
        if gpssn_failpoint::failpoint!("cache::poison") {
            poison_shard(shard);
        }
        lock_shard(shard).insert(key, ball);
    }

    /// The cached `dist_RN(user, poi)` computed in direction `dir`, if
    /// present.
    pub fn get_dist(&self, user: UserId, poi: PoiId, dir: DistDir) -> Option<f64> {
        if gpssn_failpoint::failpoint!("cache::spurious_miss") {
            self.dist_misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let key = (user, poi, dir);
        let hit = lock_shard(&self.dists[shard_of(&key, self.dists.len())]).get(&key);
        let tally = if hit.is_some() {
            &self.dist_hits
        } else {
            &self.dist_misses
        };
        tally.fetch_add(1, Ordering::Relaxed);
        hit
    }

    /// Stores `dist_RN(user, poi)` computed in direction `dir`.
    pub fn put_dist(&self, user: UserId, poi: PoiId, dir: DistDir, d: f64) {
        let key = (user, poi, dir);
        let shard = &self.dists[shard_of(&key, self.dists.len())];
        if gpssn_failpoint::failpoint!("cache::poison") {
            poison_shard(shard);
        }
        lock_shard(shard).insert(key, d);
    }

    /// Ball entries currently resident (across all shards).
    pub fn ball_entries(&self) -> usize {
        self.balls.iter().map(|s| lock_shard(s).map.len()).sum()
    }

    /// Distance entries currently resident (across all shards).
    pub fn dist_entries(&self) -> usize {
        self.dists.iter().map(|s| lock_shard(s).map.len()).sum()
    }

    /// Lifetime hit/miss/eviction counters across all shards.
    pub fn lifetime_stats(&self) -> CacheLifetimeStats {
        CacheLifetimeStats {
            ball_hits: self.ball_hits.load(Ordering::Relaxed),
            ball_misses: self.ball_misses.load(Ordering::Relaxed),
            ball_evictions: self.balls.iter().map(|s| lock_shard(s).evictions).sum(),
            dist_hits: self.dist_hits.load(Ordering::Relaxed),
            dist_misses: self.dist_misses.load(Ordering::Relaxed),
            dist_evictions: self.dists.iter().map(|s| lock_shard(s).evictions).sum(),
        }
    }

    /// Per-shard occupancy of the ball map, in shard order.
    pub fn ball_shard_occupancy(&self) -> Vec<ShardOccupancy> {
        self.balls
            .iter()
            .map(|s| {
                let g = lock_shard(s);
                ShardOccupancy {
                    entries: g.map.len(),
                    capacity: g.capacity,
                }
            })
            .collect()
    }

    /// Per-shard occupancy of the `dist_RN` map, in shard order.
    pub fn dist_shard_occupancy(&self) -> Vec<ShardOccupancy> {
        self.dists
            .iter()
            .map(|s| {
                let g = lock_shard(s);
                ShardOccupancy {
                    entries: g.map.len(),
                    capacity: g.capacity,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DistanceCacheConfig {
        DistanceCacheConfig {
            ball_capacity: 4,
            dist_capacity: 4,
            shards: 1,
        }
    }

    #[test]
    fn round_trips_values() {
        let c = DistanceCache::new(&tiny());
        assert!(c.get_dist(1, 2, DistDir::FromUser).is_none());
        c.put_dist(1, 2, DistDir::FromUser, 3.25);
        assert_eq!(c.get_dist(1, 2, DistDir::FromUser), Some(3.25));
        // Direction is part of the key.
        assert!(c.get_dist(1, 2, DistDir::FromPoi).is_none());

        let ball = Arc::new(vec![(7u32, 1.5f64), (9, 2.0)]);
        c.put_ball(3, 2.5, Arc::clone(&ball));
        assert_eq!(c.get_ball(3, 2.5), Some(ball));
        assert!(c.get_ball(3, 2.5000001).is_none()); // exact radius key
    }

    #[test]
    fn fifo_eviction_bounds_residency() {
        let c = DistanceCache::new(&tiny());
        for i in 0..10u32 {
            c.put_dist(i, 0, DistDir::FromUser, i as f64);
        }
        assert_eq!(c.dist_entries(), 4);
        // Oldest entries left; newest retained.
        assert!(c.get_dist(0, 0, DistDir::FromUser).is_none());
        assert_eq!(c.get_dist(9, 0, DistDir::FromUser), Some(9.0));
    }

    #[test]
    fn lifetime_stats_track_hits_misses_evictions() {
        let c = DistanceCache::new(&tiny());
        // Fresh cache: all-zero stats and a safe hit rate.
        assert_eq!(c.lifetime_stats(), CacheLifetimeStats::default());
        assert_eq!(c.lifetime_stats().hit_rate(), 0.0);
        c.put_dist(1, 1, DistDir::FromUser, 1.0);
        assert!(c.get_dist(1, 1, DistDir::FromUser).is_some()); // hit
        assert!(c.get_dist(2, 2, DistDir::FromUser).is_none()); // miss
        for i in 0..10u32 {
            c.put_dist(i, 0, DistDir::FromPoi, i as f64); // overflows cap 4
        }
        let s = c.lifetime_stats();
        assert_eq!(s.dist_hits, 1);
        assert_eq!(s.dist_misses, 1);
        assert!(s.dist_evictions >= 6, "expected evictions, got {s:?}");
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shard_occupancy_reports_entries_and_capacity() {
        let c = DistanceCache::new(&DistanceCacheConfig {
            ball_capacity: 8,
            dist_capacity: 8,
            shards: 2,
        });
        c.put_dist(1, 1, DistDir::FromUser, 1.0);
        let occ = c.dist_shard_occupancy();
        assert_eq!(occ.len(), 2);
        assert_eq!(occ.iter().map(|o| o.entries).sum::<usize>(), 1);
        assert!(occ.iter().all(|o| o.capacity == 4));
        assert_eq!(c.ball_shard_occupancy().len(), 2);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let c = DistanceCache::new(&DistanceCacheConfig {
            ball_capacity: 0,
            dist_capacity: 0,
            shards: 4,
        });
        c.put_dist(1, 1, DistDir::FromPoi, 1.0);
        c.put_ball(1, 1.0, Arc::new(vec![]));
        assert_eq!(c.dist_entries(), 0);
        assert_eq!(c.ball_entries(), 0);
    }

    #[test]
    fn reinsert_refreshes_without_duplicating() {
        let c = DistanceCache::new(&tiny());
        for _ in 0..10 {
            c.put_dist(1, 1, DistDir::FromUser, 2.0);
        }
        assert_eq!(c.dist_entries(), 1);
    }

    #[test]
    fn poisoned_shard_recovers_with_data_intact() {
        let c = Arc::new(DistanceCache::new(&tiny()));
        c.put_dist(5, 5, DistDir::FromUser, 7.5);
        // Poison the (single) dist shard by panicking while holding it.
        let c2 = Arc::clone(&c);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = c2.dists[0].lock().unwrap();
            panic!("injected fault while holding the shard lock");
        }));
        assert!(c.dists[0].is_poisoned());
        // Reads and writes keep working; prior entries survive.
        assert_eq!(c.get_dist(5, 5, DistDir::FromUser), Some(7.5));
        c.put_dist(6, 6, DistDir::FromPoi, 1.25);
        assert_eq!(c.get_dist(6, 6, DistDir::FromPoi), Some(1.25));
    }
}
