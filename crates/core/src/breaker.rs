//! A deterministic circuit breaker guarding the CH distance backend.
//!
//! The contraction-hierarchy oracle (PR 3) is a pure accelerator: the
//! plain Dijkstra path produces bit-identical answers, just slower. If
//! the oracle misbehaves — a panic out of `batch_dists`, an injected
//! `ch::*` fault — the engine should not keep paying a failure per
//! batch; it should *open the breaker*, serve from Dijkstra, and probe
//! the oracle occasionally until it recovers.
//!
//! Classic breakers key their cooldown on wall-clock time, which makes
//! recovery schedules irreproducible. This one is **clock-free**: the
//! cooldown is counted in *denied admissions* (each CH batch the
//! breaker redirects to Dijkstra burns one tick), and the exponential
//! backoff jitter comes from a seeded hash of the backoff level — the
//! whole state machine is a pure function of the fault sequence, so a
//! chaos schedule replays the exact same open/half-open/close
//! transitions every run.
//!
//! State machine:
//!
//! ```text
//!            failure × threshold                cooldown exhausted
//!  CLOSED ───────────────────────► OPEN ──────────────────────────► HALF_OPEN
//!    ▲                              ▲                                 │    │
//!    │ probe success                │         probe failure           │    │
//!    └──────────────────────────────┼─────────────────────────────────┘    │
//!                                   └──────────────────────────────────────┘
//!                                     (backoff level += 1, longer cooldown)
//! ```
//!
//! In `HALF_OPEN` exactly one in-flight probe is admitted; concurrent
//! callers are denied until the probe resolves.

use gpssn_obs::Obs;
use std::sync::Mutex;

/// Breaker states, exposed for tests and stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every batch goes to the CH oracle.
    Closed,
    /// Tripped: batches are redirected to Dijkstra while the cooldown
    /// (counted in denied admissions) burns down.
    Open,
    /// Cooldown exhausted: one probe batch is in flight; its outcome
    /// decides between reclosing and reopening with a longer cooldown.
    HalfOpen,
}

impl BreakerState {
    fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Tuning knobs for [`CircuitBreaker`]. The defaults are deliberately
/// small: chaos schedules run tens of batches per query, not millions.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive CH failures (in `Closed`) that open the breaker.
    pub failure_threshold: u32,
    /// Base cooldown, in denied admissions, before the first probe.
    pub cooldown_base: u64,
    /// Backoff level cap: cooldown = `base << min(level, cap)` + jitter.
    pub max_backoff_level: u32,
    /// Seed for the deterministic cooldown jitter.
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_base: 8,
            max_backoff_level: 6,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    /// Consecutive failures while `Closed`.
    consecutive_failures: u32,
    /// Denied admissions left before `Open` → `HalfOpen`.
    cooldown_remaining: u64,
    /// Escalates on every probe failure; reset on reclose.
    backoff_level: u32,
}

/// See the module docs. Shared by reference across refinement workers;
/// internally a mutex (one uncontended lock per distance batch — noise
/// next to the batch itself).
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                cooldown_remaining: 0,
                backoff_level: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Plain counters: a poisoned guard is still coherent.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Deterministic cooldown for `level`: exponential base shift plus
    /// a seeded jitter in `[0, base)` so repeated open/close cycles do
    /// not phase-lock with periodic workloads.
    fn cooldown_for(&self, level: u32) -> u64 {
        let capped = level.min(self.cfg.max_backoff_level);
        let base = self.cfg.cooldown_base.max(1);
        let jitter = splitmix64(self.cfg.seed ^ u64::from(level)) % base;
        (base << capped) + jitter
    }

    /// May this batch use the CH oracle? `false` means: serve from
    /// Dijkstra. In `Open` each denial burns one cooldown tick; the
    /// call that exhausts the cooldown becomes the half-open probe and
    /// is admitted.
    pub fn admit(&self, obs: Option<&Obs>) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if inner.cooldown_remaining > 1 {
                    inner.cooldown_remaining -= 1;
                    false
                } else {
                    inner.cooldown_remaining = 0;
                    transition(&mut inner, BreakerState::HalfOpen, obs);
                    true
                }
            }
            // One probe at a time: everyone else keeps using Dijkstra
            // until the in-flight probe resolves.
            BreakerState::HalfOpen => false,
        }
    }

    /// The admitted batch completed cleanly.
    pub fn record_success(&self, obs: Option<&Obs>) {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.consecutive_failures = 0;
                inner.backoff_level = 0;
                transition(&mut inner, BreakerState::Closed, obs);
            }
            // A success racing the transition that opened the breaker;
            // the failure that opened it already made the decision.
            BreakerState::Open => {}
        }
    }

    /// The admitted batch failed (panicked or was faulted).
    pub fn record_failure(&self, obs: Option<&Obs>) {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.cfg.failure_threshold {
                    let level = inner.backoff_level;
                    inner.cooldown_remaining = self.cooldown_for(level);
                    transition(&mut inner, BreakerState::Open, obs);
                }
            }
            BreakerState::HalfOpen => {
                inner.backoff_level += 1;
                let level = inner.backoff_level;
                inner.cooldown_remaining = self.cooldown_for(level);
                transition(&mut inner, BreakerState::Open, obs);
            }
            BreakerState::Open => {}
        }
    }

    /// Current state (racy by nature; exact in single-threaded tests).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Current backoff level (0 until a probe has failed).
    pub fn backoff_level(&self) -> u32 {
        self.lock().backoff_level
    }
}

fn transition(inner: &mut Inner, to: BreakerState, obs: Option<&Obs>) {
    inner.state = to;
    if let Some(o) = obs {
        o.inc("gpssn_breaker_transitions_total", &[("to", to.label())], 1);
    }
}

/// SplitMix64 finalizer (jitter hash).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D4_9BCB_8D5B_21E5);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_base: 4,
            max_backoff_level: 3,
            seed: 42,
        })
    }

    #[test]
    fn stays_closed_under_success() {
        let b = breaker();
        for _ in 0..50 {
            assert!(b.admit(None));
            b.record_success(None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn sparse_failures_never_open() {
        let b = breaker();
        for _ in 0..20 {
            assert!(b.admit(None));
            b.record_failure(None);
            assert!(b.admit(None));
            b.record_success(None); // resets the consecutive count
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn consecutive_failures_open_then_probe_recloses() {
        let b = breaker();
        for _ in 0..3 {
            assert!(b.admit(None));
            b.record_failure(None);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Burn the cooldown; the exhausting admit is the probe.
        let mut denials = 0u64;
        loop {
            if b.admit(None) {
                break;
            }
            denials += 1;
            assert!(denials < 1000, "cooldown never exhausted");
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Concurrent admits are denied while the probe is in flight.
        assert!(!b.admit(None));
        b.record_success(None);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.backoff_level(), 0);
        assert!(b.admit(None));
    }

    #[test]
    fn failed_probe_escalates_backoff() {
        let b = breaker();
        let mut denial_runs = Vec::new();
        for _ in 0..3 {
            // Drive to Open (first iteration) or observe it's already
            // Open after a failed probe.
            while b.state() == BreakerState::Closed {
                assert!(b.admit(None));
                b.record_failure(None);
            }
            let mut denials = 0u64;
            while !b.admit(None) {
                denials += 1;
                assert!(denials < 100_000);
            }
            denial_runs.push(denials);
            b.record_failure(None); // probe fails → reopen, longer cooldown
        }
        assert!(
            denial_runs[0] < denial_runs[1] && denial_runs[1] < denial_runs[2],
            "backoff should escalate: {denial_runs:?}"
        );
    }

    #[test]
    fn schedule_is_deterministic() {
        let run = || -> Vec<bool> {
            let b = breaker();
            let mut out = Vec::new();
            for i in 0..200 {
                let admitted = b.admit(None);
                out.push(admitted);
                if admitted {
                    // Fail every admitted batch: worst-case schedule.
                    if i % 7 == 0 {
                        b.record_success(None);
                    } else {
                        b.record_failure(None);
                    }
                }
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn transitions_are_counted() {
        let obs = Obs::with_metrics();
        let b = breaker();
        for _ in 0..3 {
            assert!(b.admit(Some(&obs)));
            b.record_failure(Some(&obs));
        }
        while !b.admit(Some(&obs)) {}
        b.record_success(Some(&obs));
        let snap = obs.base_registry().snapshot();
        let count = |to: &str| snap.counter("gpssn_breaker_transitions_total", &[("to", to)]);
        assert_eq!(count("open"), 1);
        assert_eq!(count("half_open"), 1);
        assert_eq!(count("closed"), 1);
    }
}
