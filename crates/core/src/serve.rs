//! Long-running query service: work-balanced scheduling, admission
//! control, and a streaming JSONL front-end.
//!
//! Geo-social group queries are bursty and interactive (impromptu
//! activity planning), and per-query cost is wildly skewed — exactly the
//! variance the paper's pruning lemmas induce: one large-radius query
//! with a dense social neighborhood can cost orders of magnitude more
//! than its neighbors. This module turns the one-shot engine into a
//! service:
//!
//! * **Scheduling** — worker threads pull requests off a shared bounded
//!   queue one at a time (the same work-stealing discipline as
//!   [`crate::BatchSchedule::WorkStealing`]), so a skewed request never
//!   strands cheap ones behind it. Responses are delivered strictly in
//!   submission order through a reorder buffer, and each response is
//!   released as soon as it *and everything before it* is done —
//!   streaming, not batch-at-the-end.
//! * **Admission control** — the submission queue is bounded
//!   ([`ServeConfig::queue_capacity`]). A full queue either blocks the
//!   submitter (backpressure, the default) or sheds the request with
//!   [`GpSsnError::Overloaded`] ([`OverloadPolicy::Shed`]). Requests
//!   whose deadline has already expired — at submission, or after
//!   waiting in the queue — are shed with [`GpSsnError::DeadlineExpired`]
//!   *before any engine work is spent on them*; a request that is
//!   dispatched late runs under its remaining deadline only.
//! * **Isolation** — every request runs panic-isolated (the batch
//!   contract): a panic inside one query surfaces as
//!   [`GpSsnError::Internal`] in that request's response and the service
//!   keeps draining. The scoped panic-capture hook is held for the
//!   serve call only (see [`crate::panic_capture`]).
//! * **Telemetry** — when the engine carries a live metrics sink:
//!   `gpssn_serve_queue_depth` (gauge), `gpssn_serve_submitted_total`,
//!   `gpssn_serve_served_total`, `gpssn_serve_shed_total{reason}`
//!   (counters), and the per-request `gpssn_serve_queue_wait_ns`
//!   histogram.
//! * **Continuous observability** — independent of the engine's `Obs`,
//!   every serve call records into an always-on [`ServeObs`]: a
//!   [flight recorder](gpssn_obs::flight) of recent completed-request
//!   records, [rolling SLO windows](gpssn_obs::window) over latency and
//!   queue wait, and [tail-based trace sampling](gpssn_obs::tail) that
//!   commits a query's buffered span tree to the trace sink only when
//!   the query was slow, errored, shed, or degraded (plus a
//!   deterministic 1-in-N head sample). Set
//!   [`ServeConfig::telemetry_addr`] to expose it all over a
//!   zero-dependency HTTP listener (`/metrics`, `/health`, `/slo`,
//!   `/flight` — see [`crate::telemetry`]), or send a JSONL control
//!   line (`{"control":"flight"}`) to get the same dumps in-stream.
//!
//! [`serve`] is the programmatic entry point (an iterator of
//! [`Submission`]s in, an in-order response callback out); [`serve_jsonl`]
//! wraps it with a line-by-line JSONL protocol shared by `gpq serve` and
//! `gpq`'s file mode — input is never slurped into memory, and a
//! malformed line produces a per-line error record instead of aborting
//! the stream. Draining is graceful: on end of input the queue closes,
//! every admitted request still completes, and the callback sees every
//! submission exactly once.
//!
//! Chaos: the `serve::queue_full` fail-point (armed with `--features
//! failpoints`) simulates a full submission queue at admission time; the
//! affected request is shed with [`GpSsnError::Overloaded`] under either
//! overload policy, exercising the shedding path without real pressure.

use crate::algorithm::{resolve_threads, run_isolated, GpSsnEngine, QueryOptions};
use crate::error::{Completion, GpSsnError, QueryBudget};
use crate::query::{GpSsnAnswer, GpSsnQuery};
use crate::stats::QueryOutcome;
use gpssn_obs::{
    json, FlightConfig, FlightCounters, FlightRecord, FlightRecorder, Obs, Registry, ServeClass,
    SloConfig, SloMonitor, SpanRecord, TailConfig, TailDecision, TailSampler, WindowConfig,
};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// What to do when a request arrives and the submission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Block the submitter until a worker frees a slot (backpressure).
    /// The right choice when the submitter reads from a stream it can
    /// simply stop consuming, like `gpq serve` on stdin.
    #[default]
    Block,
    /// Reject the request immediately with [`GpSsnError::Overloaded`].
    /// The right choice when blocking the submitter would block the
    /// caller's event loop.
    Shed,
}

/// Continuous-observability knobs for one serve call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeObsConfig {
    /// Flight-recorder ring size.
    pub flight: FlightConfig,
    /// Tail-sampling policy (latency threshold, head rate, seed).
    pub tail: TailConfig,
    /// Rolling-window shape shared by the latency / queue-wait / SLO
    /// windows.
    pub window: WindowConfig,
    /// The SLO evaluated over the rolling window.
    pub slo: SloConfig,
}

/// The always-on serve-path observability state: flight recorder,
/// rolling SLO windows, tail sampler, and live queue depth. One
/// instance is shared (via `Arc` in [`ServeConfig::telemetry`]) by the
/// serve workers, the telemetry endpoint, and the caller, who can
/// inspect it after — or, from another thread, during — the serve call.
///
/// Unlike the engine's optional `Obs`, this layer stays on even when
/// metrics and tracing are disabled; it is sized to cost one short
/// mutex acquisition per completed request.
pub struct ServeObs {
    flight: FlightRecorder,
    slo: SloMonitor,
    tail: TailSampler,
    queue_depth: AtomicI64,
    bound: Mutex<Option<SocketAddr>>,
    listener_error: Mutex<Option<String>>,
}

impl std::fmt::Debug for ServeObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeObs")
            .field("flight_records", &self.flight.len())
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

impl ServeObs {
    pub fn new(cfg: &ServeObsConfig) -> Self {
        ServeObs {
            flight: FlightRecorder::new(&cfg.flight),
            slo: SloMonitor::new(&cfg.window, cfg.slo),
            tail: TailSampler::new(&cfg.tail),
            queue_depth: AtomicI64::new(0),
            bound: Mutex::new(None),
            listener_error: Mutex::new(None),
        }
    }

    /// The flight recorder (ring of recent completed-request records).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The rolling SLO monitor.
    pub fn slo(&self) -> &SloMonitor {
        &self.slo
    }

    /// The tail sampler's state.
    pub fn tail(&self) -> &TailSampler {
        &self.tail
    }

    /// Requests admitted to the queue and not yet dispatched. Exactly 0
    /// after a serve call drains.
    pub fn queue_depth(&self) -> i64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// The address the telemetry listener actually bound (useful with
    /// a `:0` port), or `None` when no listener is running.
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        *lock(&self.bound)
    }

    /// Why the telemetry listener failed to start, if it did.
    pub fn listener_error(&self) -> Option<String> {
        lock(&self.listener_error).clone()
    }

    /// Publishes the rolling windows, tail-sampler tallies, and flight
    /// gauges into `reg` as absolute values — safe to call repeatedly
    /// before every scrape.
    pub fn publish(&self, reg: &Registry) {
        self.slo.publish(reg, self.slo.now_ns());
        let (outcome, slow, head, dropped) = self.tail.stats();
        for (reason, n) in [("outcome", outcome), ("slow", slow), ("head", head)] {
            reg.set_counter("gpssn_trace_tail_committed_total", &[("reason", reason)], n);
        }
        reg.set_counter("gpssn_trace_tail_dropped_total", &[], dropped);
        reg.set_gauge("gpssn_flight_records", &[], self.flight.len() as f64);
        reg.set_counter("gpssn_flight_evicted_total", &[], self.flight.dropped());
        reg.set_gauge("gpssn_serve_queue_depth", &[], self.queue_depth() as f64);
    }
}

impl Default for ServeObs {
    fn default() -> Self {
        ServeObs::new(&ServeObsConfig::default())
    }
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` uses the machine's available parallelism
    /// (resolved by the same rule as every other thread knob).
    pub threads: usize,
    /// Bound on queued-but-not-dispatched requests. With
    /// [`OverloadPolicy::Block`] a zero capacity is clamped to 1 (a
    /// zero-capacity blocking queue could never admit anything).
    pub queue_capacity: usize,
    /// Budget applied to requests that carry none of their own.
    pub default_budget: QueryBudget,
    /// Engine options shared by every request this service answers.
    pub options: QueryOptions,
    /// Full-queue behavior.
    pub overload: OverloadPolicy,
    /// The continuous-observability state this serve call records into.
    /// Cloning the config shares it; keep a clone of the `Arc` to read
    /// the flight recorder / SLO windows after (or during) the call.
    pub telemetry: Arc<ServeObs>,
    /// When set, a hand-rolled HTTP/1.1 listener binds here for the
    /// duration of the serve call, serving `GET /metrics`, `/health`,
    /// `/slo`, and `/flight` concurrently with query traffic. Use a
    /// `:0` port and [`ServeObs::telemetry_addr`] to let the OS pick.
    pub telemetry_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 0,
            queue_capacity: 256,
            default_budget: QueryBudget::unlimited(),
            options: QueryOptions::default(),
            overload: OverloadPolicy::Block,
            telemetry: Arc::new(ServeObs::default()),
            telemetry_addr: None,
        }
    }
}

/// One query request submitted to the service.
///
/// `budget.deadline` is interpreted as measured **from submission**: the
/// time a request spends waiting in the queue counts against it, an
/// expired request is shed without engine work, and a late-dispatched
/// request runs under its remaining deadline only. The work-unit caps
/// are passed to the engine unchanged.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The query.
    pub query: GpSsnQuery,
    /// Per-request budget (see the deadline note above).
    pub budget: QueryBudget,
}

/// One unit of input to [`serve`].
#[derive(Debug, Clone)]
pub enum Submission {
    /// A request to admit and run.
    Request(ServeRequest),
    /// A slot that already failed upstream (e.g. a malformed JSONL
    /// line). It flows through the ordered response stream as an error
    /// record without touching the queue or the engine.
    Rejected {
        /// Correlation id echoed in the response.
        id: u64,
        /// Why the slot never became a request.
        error: GpSsnError,
    },
}

/// One response, delivered in submission order.
#[derive(Debug)]
pub struct ServeResponse {
    /// The request's correlation id.
    pub id: u64,
    /// The outcome: `Ok` iff the engine ran the query to an outcome
    /// (which may itself report a degraded completion); shed and
    /// pre-rejected submissions carry the typed error.
    pub result: Result<QueryOutcome, GpSsnError>,
    /// Time the request waited in the submission queue
    /// (`Duration::ZERO` for requests that never reached it).
    pub queue_wait: Duration,
}

/// What one [`serve`] call did, in submission counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submissions consumed from the input (requests + rejected slots).
    pub submitted: u64,
    /// Requests that reached the engine.
    pub served: u64,
    /// Requests shed because their deadline expired before dispatch.
    pub shed_expired: u64,
    /// Requests shed because the queue was full (only under
    /// [`OverloadPolicy::Shed`] or the `serve::queue_full` fail-point).
    pub shed_overloaded: u64,
    /// Pre-rejected slots passed through (malformed JSONL lines).
    pub rejected: u64,
}

/// A queued, admitted request.
struct Queued {
    seq: u64,
    req: ServeRequest,
    enqueued: Instant,
    deadline_at: Option<Instant>,
}

/// The bounded submission queue. `closed` flips on end of input; workers
/// drain what remains and exit.
struct QueueState {
    queue: VecDeque<Queued>,
    closed: bool,
}

/// Reorder buffer releasing responses in submission order.
struct Emitter<F> {
    next_seq: u64,
    pending: BTreeMap<u64, ServeResponse>,
    on_response: F,
}

impl<F: FnMut(ServeResponse)> Emitter<F> {
    fn emit(&mut self, seq: u64, resp: ServeResponse) {
        self.pending.insert(seq, resp);
        while let Some(r) = self.pending.remove(&self.next_seq) {
            (self.on_response)(r);
            self.next_seq += 1;
        }
    }
}

/// The engine's metrics sink, when live.
fn metrics_of<'e>(engine: &'e GpSsnEngine<'_>) -> Option<&'e Obs> {
    engine
        .obs_handle()
        .map(|o| o.as_ref())
        .filter(|o| o.metrics_on())
}

fn lock<'m, T>(m: &'m Mutex<T>) -> MutexGuard<'m, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Runs the service over a stream of submissions, invoking
/// `on_response` for every submission **in submission order**, as soon
/// as each response (and everything before it) is ready. Returns once
/// the input is exhausted and every admitted request has completed.
///
/// The input iterator is pulled lazily on the calling thread, so under
/// [`OverloadPolicy::Block`] a full queue stops consumption — natural
/// backpressure for streaming inputs.
pub fn serve<I, F>(
    engine: &GpSsnEngine<'_>,
    cfg: &ServeConfig,
    requests: I,
    on_response: F,
) -> ServeStats
where
    I: IntoIterator<Item = Submission>,
    F: FnMut(ServeResponse) + Send,
{
    let threads = resolve_threads(cfg.threads, usize::MAX);
    let capacity = match cfg.overload {
        OverloadPolicy::Block => cfg.queue_capacity.max(1),
        OverloadPolicy::Shed => cfg.queue_capacity,
    };
    let _capture = crate::panic_capture::capture_scope();
    let obs = metrics_of(engine);
    let tele = cfg.telemetry.as_ref();

    let state = Mutex::new(QueueState {
        queue: VecDeque::new(),
        closed: false,
    });
    let not_empty = Condvar::new();
    let not_full = Condvar::new();
    let emitter = Mutex::new(Emitter {
        next_seq: 0,
        pending: BTreeMap::new(),
        on_response,
    });
    let served = AtomicU64::new(0);
    let shed_expired = AtomicU64::new(0);

    // The telemetry listener (when requested) binds before any query
    // runs, so a scrape racing the first request still connects.
    let listener =
        cfg.telemetry_addr
            .as_deref()
            .and_then(|addr| match std::net::TcpListener::bind(addr) {
                Ok(l) => {
                    if let Err(e) = l.set_nonblocking(true) {
                        *lock(&tele.listener_error) = Some(e.to_string());
                        return None;
                    }
                    *lock(&tele.bound) = l.local_addr().ok();
                    Some(l)
                }
                Err(e) => {
                    *lock(&tele.listener_error) = Some(format!("bind {addr}: {e}"));
                    None
                }
            });
    let stop = AtomicBool::new(false);

    let mut stats = ServeStats::default();
    std::thread::scope(|outer| {
        if let Some(l) = listener {
            let ctx = crate::telemetry::TelemetryCtx {
                engine,
                tele,
                queue_capacity: capacity,
                workers: threads,
            };
            let stop = &stop;
            outer.spawn(move || crate::telemetry::run_listener(l, stop, ctx));
        }
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    worker_loop(
                        engine,
                        cfg,
                        &state,
                        &not_empty,
                        &not_full,
                        &emitter,
                        obs,
                        &served,
                        &shed_expired,
                    );
                });
            }

            // Submitter: the calling thread. Each submission gets the
            // next seq so responses come back in input order.
            let mut seq = 0u64;
            for sub in requests {
                stats.submitted += 1;
                if let Some(o) = obs {
                    o.inc("gpssn_serve_submitted_total", &[], 1);
                }
                let req = match sub {
                    Submission::Rejected { id, error } => {
                        stats.rejected += 1;
                        let result = Err(error);
                        record_completion(
                            tele,
                            seq,
                            &result,
                            Duration::ZERO,
                            Duration::ZERO,
                            Vec::new(),
                            false,
                        );
                        lock(&emitter).emit(
                            seq,
                            ServeResponse {
                                id,
                                result,
                                queue_wait: Duration::ZERO,
                            },
                        );
                        seq += 1;
                        continue;
                    }
                    Submission::Request(req) => req,
                };
                let now = Instant::now();
                // Submission-time shed: a deadline of zero was dead on
                // arrival; don't even queue it.
                if req.budget.deadline.is_some_and(|d| d.is_zero()) {
                    stats.shed_expired += 1;
                    shed(obs, "expired");
                    let result = Err(GpSsnError::DeadlineExpired);
                    record_completion(
                        tele,
                        seq,
                        &result,
                        Duration::ZERO,
                        Duration::ZERO,
                        Vec::new(),
                        false,
                    );
                    lock(&emitter).emit(
                        seq,
                        ServeResponse {
                            id: req.id,
                            result,
                            queue_wait: Duration::ZERO,
                        },
                    );
                    seq += 1;
                    continue;
                }
                let deadline_at = req.budget.deadline.map(|d| now + d);
                // Fault site: pretend the queue is full at admission.
                // Shed under either policy — blocking on a fault that
                // nothing will ever clear would wedge the submitter.
                let forced_full = gpssn_failpoint::failpoint!("serve::queue_full");
                let mut st = lock(&state);
                let admitted = if forced_full {
                    false
                } else {
                    loop {
                        if st.queue.len() < capacity {
                            break true;
                        }
                        match cfg.overload {
                            OverloadPolicy::Shed => break false,
                            OverloadPolicy::Block => {
                                st = not_full.wait(st).unwrap_or_else(|p| p.into_inner());
                            }
                        }
                    }
                };
                if !admitted {
                    let depth = st.queue.len();
                    drop(st);
                    stats.shed_overloaded += 1;
                    shed(obs, "overloaded");
                    let result = Err(GpSsnError::Overloaded { depth, capacity });
                    record_completion(
                        tele,
                        seq,
                        &result,
                        Duration::ZERO,
                        Duration::ZERO,
                        Vec::new(),
                        false,
                    );
                    lock(&emitter).emit(
                        seq,
                        ServeResponse {
                            id: req.id,
                            result,
                            queue_wait: Duration::ZERO,
                        },
                    );
                    seq += 1;
                    continue;
                }
                st.queue.push_back(Queued {
                    seq,
                    req,
                    enqueued: now,
                    deadline_at,
                });
                let depth = tele.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                note_depth(obs, depth);
                drop(st);
                not_empty.notify_one();
                seq += 1;
            }

            // Graceful drain: close the queue; workers finish what is
            // admitted and exit.
            lock(&state).closed = true;
            not_empty.notify_all();
        });
        // Workers are done; stop the listener and let the outer scope
        // join it.
        stop.store(true, Ordering::Relaxed);
    });

    // Every admitted request was dispatched, so the depth counter — and
    // the gauge derived from it — must read exactly zero again. The
    // counter is the source of truth; resync the gauge in case gauge
    // writes raced.
    debug_assert_eq!(tele.queue_depth(), 0, "queue depth must drain to 0");
    note_depth(obs, tele.queue_depth());

    stats.served = served.load(Ordering::Relaxed);
    stats.shed_expired += shed_expired.load(Ordering::Relaxed);
    stats
}

/// One worker: pop, shed-if-expired, run panic-isolated, emit.
#[allow(clippy::too_many_arguments)]
fn worker_loop<F: FnMut(ServeResponse)>(
    engine: &GpSsnEngine<'_>,
    cfg: &ServeConfig,
    state: &Mutex<QueueState>,
    not_empty: &Condvar,
    not_full: &Condvar,
    emitter: &Mutex<Emitter<F>>,
    obs: Option<&Obs>,
    served: &AtomicU64,
    shed_expired: &AtomicU64,
) {
    let tele = cfg.telemetry.as_ref();
    let tracer = engine.obs_handle().map(|o| o.tracer());
    loop {
        let mut st = lock(state);
        let item = loop {
            if let Some(it) = st.queue.pop_front() {
                break Some(it);
            }
            if st.closed {
                break None;
            }
            st = not_empty.wait(st).unwrap_or_else(|p| p.into_inner());
        };
        if item.is_some() {
            // Decrement on *every* dequeue — the request may yet shed
            // on deadline or panic, but it has left the queue.
            let depth = tele.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
            note_depth(obs, depth);
        }
        drop(st);
        let Some(it) = item else {
            return;
        };
        not_full.notify_one();

        let wait = it.enqueued.elapsed();
        if let Some(o) = obs {
            o.observe(
                "gpssn_serve_queue_wait_ns",
                &[],
                wait.as_nanos().min(NS_MAX) as u64,
            );
        }
        let now = Instant::now();
        // Buffer this request's spans; the tail sampler decides at
        // completion whether the trace survives. `None` when tracing
        // is off — nothing to buffer, nothing to decide.
        let capture = tracer.and_then(|t| t.begin_capture());
        let result = {
            let _root = tracer.map(|t| t.span("serve_request"));
            match it.deadline_at {
                // Dispatch-time shed: the request aged out in the
                // queue. The engine never sees it.
                Some(at) if now >= at => {
                    shed_expired.fetch_add(1, Ordering::Relaxed);
                    shed(obs, "expired");
                    Err(GpSsnError::DeadlineExpired)
                }
                _ => {
                    let mut budget = it.req.budget.clone();
                    if let Some(at) = it.deadline_at {
                        // The queue wait already spent part of the
                        // deadline.
                        budget.deadline = Some(at.saturating_duration_since(now));
                    }
                    served.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = obs {
                        o.inc("gpssn_serve_served_total", &[], 1);
                    }
                    run_isolated(engine, &it.req.query, &cfg.options, &budget)
                }
            }
        };
        let total = it.enqueued.elapsed();
        let (class, _, _) = classify(&result);
        let mut phases = Vec::new();
        let mut committed = false;
        if let Some(cap) = capture {
            phases = phase_breakdown(&cap.records());
            let interesting = class != ServeClass::Ok;
            match tele
                .tail
                .decide(total.as_nanos().min(NS_MAX) as u64, interesting)
            {
                TailDecision::Keep(_) => {
                    if let Some(t) = tracer {
                        cap.commit(t);
                        committed = true;
                    }
                }
                TailDecision::Drop => cap.discard(),
            }
        }
        record_completion(tele, it.seq, &result, total, wait, phases, committed);
        lock(emitter).emit(
            it.seq,
            ServeResponse {
                id: it.req.id,
                result,
                queue_wait: wait,
            },
        );
    }
}

fn shed(obs: Option<&Obs>, reason: &'static str) {
    if let Some(o) = obs {
        o.inc("gpssn_serve_shed_total", &[("reason", reason)], 1);
    }
}

fn note_depth(obs: Option<&Obs>, depth: i64) {
    if let Some(o) = obs {
        o.registry()
            .set_gauge("gpssn_serve_queue_depth", &[], depth as f64);
    }
}

/// Coarse outcome class plus the degradation rung and error code,
/// derived from one response's result.
fn classify(result: &Result<QueryOutcome, GpSsnError>) -> (ServeClass, &'static str, &'static str) {
    match result {
        Ok(out) => match &out.completion {
            Completion::Exact => (ServeClass::Ok, "exact", ""),
            Completion::TruncatedWithGap(_) => (ServeClass::Degraded, "truncated", ""),
            Completion::DegradedSampling => (ServeClass::Degraded, "sampling", ""),
            Completion::Failed(e) => (ServeClass::Error, "failed", error_code(e)),
        },
        Err(e @ (GpSsnError::DeadlineExpired | GpSsnError::Overloaded { .. })) => {
            (ServeClass::Shed, "", error_code(e))
        }
        Err(e) => (ServeClass::Error, "", error_code(e)),
    }
}

/// Which distance backend actually served the request's batches.
fn backend_label(out: &QueryOutcome) -> &'static str {
    let b = &out.metrics.backend_served;
    match (b.ch_batches > 0, b.dijkstra_batches > 0) {
        (true, true) => "mixed",
        (true, false) => "ch",
        (false, true) => "dijkstra",
        (false, false) => "",
    }
}

/// The Fig-7 pruning counters of a finished outcome, flattened for the
/// flight record.
fn flight_counters(out: &QueryOutcome) -> FlightCounters {
    let s = &out.metrics.stats;
    FlightCounters {
        users_total: s.users_total as u64,
        users_pruned_index: s.users_pruned_index as u64,
        users_pruned_object: s.users_pruned_object as u64,
        pois_total: s.pois_total as u64,
        pois_pruned_index: s.pois_pruned_index as u64,
        pois_pruned_object: s.pois_pruned_object as u64,
        candidate_users: s.candidate_users as u64,
        candidate_pois: s.candidate_pois as u64,
        pairs_refined: s.pairs_refined,
    }
}

/// Per-phase wall-clock breakdown from a query's captured spans: the
/// children of the engine's `query` span(s) (falling back to children
/// of the `serve_request` root when the engine never opened one),
/// aggregated by name in first-start order.
fn phase_breakdown(recs: &[SpanRecord]) -> Vec<(&'static str, u64)> {
    use std::collections::HashSet;
    let mut parents: HashSet<u64> = recs
        .iter()
        .filter(|r| r.name == "query")
        .map(|r| r.id)
        .collect();
    if parents.is_empty() {
        parents = recs
            .iter()
            .filter(|r| r.name == "serve_request")
            .map(|r| r.id)
            .collect();
    }
    let mut order: Vec<&'static str> = Vec::new();
    let mut sums: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in recs {
        if parents.contains(&r.parent) {
            let e = sums.entry(r.name).or_insert_with(|| {
                order.push(r.name);
                0
            });
            *e += r.dur_ns;
        }
    }
    order.into_iter().map(|n| (n, sums[n])).collect()
}

const NS_MAX: u128 = u64::MAX as u128;

/// Records one finished (or shed, or rejected) submission into the
/// flight recorder and the rolling SLO windows. Called on every path
/// that emits a response, so the continuous layer sees exactly the
/// stream the caller sees.
#[allow(clippy::too_many_arguments)]
fn record_completion(
    tele: &ServeObs,
    seq: u64,
    result: &Result<QueryOutcome, GpSsnError>,
    total: Duration,
    queue_wait: Duration,
    phases: Vec<(&'static str, u64)>,
    trace_committed: bool,
) {
    let (class, completion, code) = classify(result);
    let total_ns = total.as_nanos().min(NS_MAX) as u64;
    let queue_wait_ns = queue_wait.as_nanos().min(NS_MAX) as u64;
    let now_ns = tele.slo.now_ns();
    tele.slo.record(now_ns, total_ns, queue_wait_ns, class);
    let (backend, io_pages, heap_pops, settles, cache_hits, cache_misses, counters) = match result {
        Ok(out) => {
            let c = &out.metrics.cache;
            (
                backend_label(out),
                out.metrics.io_pages,
                out.metrics.heap_pops,
                out.metrics.total_settles(),
                c.ball_hits + c.dist_hits,
                c.ball_misses + c.dist_misses,
                flight_counters(out),
            )
        }
        Err(_) => ("", 0, 0, 0, 0, 0, FlightCounters::default()),
    };
    tele.flight.record(FlightRecord {
        id: 0, // assigned by the recorder
        seq,
        class: class.label(),
        completion,
        code,
        backend,
        end_ns: now_ns,
        total_ns,
        queue_wait_ns,
        io_pages,
        heap_pops,
        settles,
        cache_hits,
        cache_misses,
        counters,
        phases,
        trace_committed,
    });
}

// ---------------------------------------------------------------------
// JSONL protocol
// ---------------------------------------------------------------------

/// Stable machine-readable code for each error class (the string twin
/// of `gpq`'s numeric exit codes).
pub fn error_code(e: &GpSsnError) -> &'static str {
    match e {
        GpSsnError::InvalidQuery(_) => "invalid_query",
        GpSsnError::UnknownUser { .. } => "unknown_user",
        GpSsnError::RadiusOutOfIndexRange { .. } => "radius_out_of_range",
        GpSsnError::Infeasible { .. } => "infeasible",
        GpSsnError::DeadlineExceeded => "deadline_exceeded",
        GpSsnError::BudgetExhausted { .. } => "budget_exhausted",
        GpSsnError::Overloaded { .. } => "overloaded",
        GpSsnError::DeadlineExpired => "deadline_expired",
        GpSsnError::IndexCorrupt { .. } => "index_corrupt",
        GpSsnError::Internal(_) => "internal",
    }
}

/// Parses one JSONL request line. Field reference:
///
/// ```json
/// {"id":7,"user":11,"tau":4,"gamma":0.3,"theta":0.4,"r":2.0,
///  "timeout_ms":250,"max_pops":100000,"max_groups":50000,"max_settles":2000000}
/// ```
///
/// Only `user` is required; `tau`/`gamma`/`theta`/`r` default to
/// [`GpSsnQuery::with_defaults`], `id` defaults to the 1-based line
/// number, and absent budget fields inherit `default_budget`.
fn parse_request(
    line: &str,
    lineno: u64,
    default_budget: &QueryBudget,
) -> Result<ServeRequest, String> {
    let v = json::parse(line)?;
    if !matches!(v, json::Value::Object(_)) {
        return Err("request must be a JSON object".to_string());
    }
    let uint = |key: &str| -> Result<Option<u64>, String> {
        match v.get(key) {
            None | Some(json::Value::Null) => Ok(None),
            Some(w) => {
                let n = w
                    .as_f64()
                    .ok_or_else(|| format!("field {key:?} must be a number"))?;
                if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
                    return Err(format!("field {key:?} must be a non-negative integer"));
                }
                Ok(Some(n as u64))
            }
        }
    };
    let float = |key: &str| -> Result<Option<f64>, String> {
        match v.get(key) {
            None | Some(json::Value::Null) => Ok(None),
            Some(w) => {
                Ok(Some(w.as_f64().ok_or_else(|| {
                    format!("field {key:?} must be a number")
                })?))
            }
        }
    };
    let user = uint("user")?.ok_or_else(|| "missing required field \"user\"".to_string())?;
    let user = u32::try_from(user).map_err(|_| "field \"user\" out of range".to_string())?;
    let mut query = GpSsnQuery::with_defaults(user);
    if let Some(tau) = uint("tau")? {
        query.tau = tau as usize;
    }
    if let Some(g) = float("gamma")? {
        query.gamma = g;
    }
    if let Some(t) = float("theta")? {
        query.theta = t;
    }
    if let Some(r) = float("r")? {
        query.radius = r;
    }
    let mut budget = default_budget.clone();
    if let Some(ms) = uint("timeout_ms")? {
        budget.deadline = Some(Duration::from_millis(ms));
    }
    if let Some(n) = uint("max_pops")? {
        budget.max_heap_pops = Some(n);
    }
    if let Some(n) = uint("max_groups")? {
        budget.max_groups_enumerated = Some(n);
    }
    if let Some(n) = uint("max_settles")? {
        budget.max_dijkstra_settles = Some(n);
    }
    Ok(ServeRequest {
        id: uint("id")?.unwrap_or(lineno),
        query,
        budget,
    })
}

fn push_ids(line: &mut String, key: &str, ids: &[u32]) {
    line.push_str(&format!(",\"{key}\":["));
    for (i, u) in ids.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&u.to_string());
    }
    line.push(']');
}

fn push_answer(line: &mut String, answer: Option<&GpSsnAnswer>) {
    match answer {
        Some(ans) => {
            line.push_str(&format!(",\"maxdist\":{}", ans.maxdist));
            push_ids(line, "users", &ans.users);
            push_ids(line, "pois", &ans.pois);
        }
        None => line.push_str(",\"maxdist\":null"),
    }
}

/// Renders one response as a JSONL line (no trailing newline).
///
/// `status` is `"ok"` for any outcome the engine produced — including
/// truncated and sampling-degraded completions, which scripts can tell
/// apart by `completion` (and `gap`) — and `"error"` for validation
/// failures, shed requests, and `Failed` completions.
pub(crate) fn response_line(resp: &ServeResponse) -> String {
    let mut line = format!("{{\"id\":{}", resp.id);
    match &resp.result {
        Ok(out) if !matches!(out.completion, crate::Completion::Failed(_)) => {
            line.push_str(&format!(
                ",\"status\":\"ok\",\"completion\":\"{}\"",
                out.completion.rung()
            ));
            if let crate::Completion::TruncatedWithGap(gap) = out.completion {
                line.push_str(&format!(",\"gap\":{gap}"));
            }
            push_answer(&mut line, out.answer.as_ref());
            line.push_str(&format!(
                ",\"cpu_us\":{},\"io_pages\":{}",
                out.metrics.cpu.as_micros(),
                out.metrics.io_pages
            ));
        }
        Ok(out) => {
            let crate::Completion::Failed(e) = &out.completion else {
                unreachable!("guarded by the match arm above");
            };
            push_error(&mut line, e);
        }
        Err(e) => push_error(&mut line, e),
    }
    line.push_str(&format!(
        ",\"queue_wait_us\":{}}}",
        resp.queue_wait.as_micros()
    ));
    line
}

fn push_error(line: &mut String, e: &GpSsnError) {
    line.push_str(&format!(
        ",\"status\":\"error\",\"code\":\"{}\",\"error\":\"{}\"",
        error_code(e),
        json::escape(&e.to_string())
    ));
}

/// Renders one `{"control":...}` line's reply: the same dumps the HTTP
/// endpoint serves, delivered in-stream on demand.
fn control_response(engine: &GpSsnEngine<'_>, tele: &ServeObs, what: &str) -> String {
    match what {
        "flight" => format!("{{\"control\":\"flight\",\"data\":{}}}", tele.flight().to_json()),
        "slo" => format!(
            "{{\"control\":\"slo\",\"data\":{}}}",
            tele.slo().to_json(tele.slo().now_ns())
        ),
        "metrics" => format!(
            "{{\"control\":\"metrics\",\"data\":{}}}",
            crate::telemetry::metrics_json(engine, tele)
        ),
        other => format!(
            "{{\"control\":\"{}\",\"error\":\"unknown control (expected flight, slo, or metrics)\"}}",
            json::escape(other)
        ),
    }
}

/// Streams JSONL requests from `input` through the service and writes
/// one JSONL response line per input line to `output`, in input order,
/// flushing after every line so downstream consumers see answers as
/// they complete. Input is read incrementally — one line at a time,
/// never slurped — so `gpq serve` on stdin and file mode share this one
/// reader. A malformed line yields an in-order error record
/// (`"code":"invalid_query"`) and the stream continues.
///
/// A line of the form `{"control":"flight"}` (or `"slo"`, `"metrics"`)
/// is not a query: it writes one `{"control":...,"data":...}` dump line
/// immediately — ahead of responses still in flight — and does not
/// count as a submission.
///
/// The returned `Err` only reports I/O failures on `input`/`output`;
/// query-level failures are response records.
pub fn serve_jsonl<R: BufRead, W: Write + Send>(
    engine: &GpSsnEngine<'_>,
    cfg: &ServeConfig,
    input: R,
    output: W,
) -> std::io::Result<ServeStats> {
    let io_err: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let out = Mutex::new(output);
    let submissions = input.lines().enumerate().filter_map(|(i, line)| {
        let lineno = i as u64 + 1;
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                // Surface the read error as this line's record and
                // remember it for the caller; later lines may still
                // parse (BufRead keeps yielding after e.g. invalid
                // UTF-8 errors on some readers, and stopping here
                // would silently drop them).
                let mut slot = lock(&io_err);
                let msg = e.to_string();
                if slot.is_none() {
                    *slot = Some(e);
                }
                return Some(Submission::Rejected {
                    id: lineno,
                    error: GpSsnError::InvalidQuery(format!("line {lineno}: read error: {msg}")),
                });
            }
        };
        if line.trim().is_empty() {
            return Some(Submission::Rejected {
                id: lineno,
                error: GpSsnError::InvalidQuery(format!("line {lineno}: empty line")),
            });
        }
        // Control lines answer immediately and never enter the queue.
        if line.contains("\"control\"") {
            if let Ok(v) = json::parse(&line) {
                if let Some(what) = v.get("control").and_then(|c| c.as_str()) {
                    let reply = control_response(engine, &cfg.telemetry, what);
                    let mut w = lock(&out);
                    let res = writeln!(w, "{reply}").and_then(|()| w.flush());
                    if let Err(e) = res {
                        let mut slot = lock(&io_err);
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                    return None;
                }
            }
        }
        match parse_request(&line, lineno, &cfg.default_budget) {
            Ok(req) => Some(Submission::Request(req)),
            Err(msg) => Some(Submission::Rejected {
                id: lineno,
                error: GpSsnError::InvalidQuery(format!("line {lineno}: {msg}")),
            }),
        }
    });
    let stats = serve(engine, cfg, submissions, |resp| {
        let mut w = lock(&out);
        let line = response_line(&resp);
        let res = writeln!(w, "{line}").and_then(|()| w.flush());
        if let Err(e) = res {
            let mut slot = lock(&io_err);
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    });
    let first_err = lock(&io_err).take();
    match first_err {
        Some(e) => Err(e),
        None => Ok(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_request_defaults_and_overrides() {
        let b = QueryBudget::unlimited();
        let req = parse_request(r#"{"user":3}"#, 7, &b).expect("minimal request parses");
        assert_eq!(req.id, 7); // line number fallback
        assert_eq!(req.query.user, 3);
        assert_eq!(req.query, GpSsnQuery::with_defaults(3));
        assert!(req.budget.is_unlimited());

        let req = parse_request(
            r#"{"id":42,"user":1,"tau":2,"gamma":0.25,"theta":0.5,"r":1.5,"timeout_ms":30,"max_pops":1000}"#,
            1,
            &b,
        )
        .expect("full request parses");
        assert_eq!(req.id, 42);
        assert_eq!(req.query.tau, 2);
        assert_eq!(req.query.gamma, 0.25);
        assert_eq!(req.query.radius, 1.5);
        assert_eq!(req.budget.deadline, Some(Duration::from_millis(30)));
        assert_eq!(req.budget.max_heap_pops, Some(1000));
        assert_eq!(req.budget.max_groups_enumerated, None);
    }

    #[test]
    fn parse_request_rejects_malformed() {
        let b = QueryBudget::unlimited();
        assert!(parse_request("not json", 1, &b).is_err());
        assert!(parse_request("[1,2]", 1, &b).is_err(), "non-object");
        assert!(parse_request("{}", 1, &b).is_err(), "missing user");
        assert!(
            parse_request(r#"{"user":-1}"#, 1, &b).is_err(),
            "negative user"
        );
        assert!(
            parse_request(r#"{"user":1,"tau":2.5}"#, 1, &b).is_err(),
            "fractional tau"
        );
        assert!(
            parse_request(r#"{"user":"alice"}"#, 1, &b).is_err(),
            "non-numeric user"
        );
    }

    #[test]
    fn response_lines_are_valid_json() {
        let shed = ServeResponse {
            id: 9,
            result: Err(GpSsnError::Overloaded {
                depth: 4,
                capacity: 4,
            }),
            queue_wait: Duration::from_micros(12),
        };
        let line = response_line(&shed);
        let v = json::parse(&line).expect("error record is valid JSON");
        assert_eq!(v.get("id").and_then(|x| x.as_f64()), Some(9.0));
        assert_eq!(v.get("status").and_then(|x| x.as_str()), Some("error"));
        assert_eq!(
            v.get("code").and_then(|x| x.as_str()),
            Some("overloaded"),
            "{line}"
        );

        let ok = ServeResponse {
            id: 1,
            result: Ok(QueryOutcome {
                answer: Some(GpSsnAnswer {
                    users: vec![0, 2],
                    pois: vec![5],
                    maxdist: 1.25,
                }),
                completion: crate::Completion::Exact,
                metrics: Default::default(),
            }),
            queue_wait: Duration::ZERO,
        };
        let line = response_line(&ok);
        let v = json::parse(&line).expect("ok record is valid JSON");
        assert_eq!(v.get("status").and_then(|x| x.as_str()), Some("ok"));
        assert_eq!(v.get("completion").and_then(|x| x.as_str()), Some("exact"));
        assert_eq!(v.get("maxdist").and_then(|x| x.as_f64()), Some(1.25));
        assert_eq!(
            v.get("users").and_then(|x| x.as_array()).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn error_codes_are_distinct_and_stable() {
        let cases = [
            error_code(&GpSsnError::DeadlineExpired),
            error_code(&GpSsnError::Overloaded {
                depth: 1,
                capacity: 1,
            }),
            error_code(&GpSsnError::DeadlineExceeded),
            error_code(&GpSsnError::InvalidQuery(String::new())),
        ];
        let mut uniq = cases.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), cases.len(), "codes must be distinct: {cases:?}");
        assert_eq!(cases[0], "deadline_expired");
        assert_eq!(cases[1], "overloaded");
    }
}
