//! Approximate refinement via subset sampling — the paper's stated
//! future-work extension ("to enhance the efficiency of the enumeration,
//! we can apply subset sampling by randomly expanding the subgraph
//! starting from the query vertex `u_q`", Section 5).
//!
//! [`sample_connected_group`] grows a random connected `τ`-subset from
//! `u_q` by repeatedly absorbing a uniformly random frontier vertex.
//! [`verify_center_sampled`] replaces the exhaustive feasibility check of
//! the exact refinement with a fixed number of such draws: the result is
//! a *valid* answer whenever one is returned (every Definition-5
//! predicate is still checked exactly) but may be suboptimal or missed —
//! the classic sampling trade-off, quantified in the ablation benches.

use crate::error::BudgetState;
use crate::query::{GpSsnAnswer, GpSsnQuery};
use gpssn_road::{dist_rn_many_counted, NetworkPoint, PoiId};
use gpssn_social::UserId;
use gpssn_ssn::{match_score_keywords, SpatialSocialNetwork};
use rand::Rng;

/// Draws one connected subset of size `k` containing `root` by random
/// frontier expansion, restricted to `allowed` vertices. Returns `None`
/// when the expansion gets stuck (frontier exhausted before size `k`).
pub fn sample_connected_group<R: Rng + ?Sized>(
    graph: &gpssn_graph::CsrGraph,
    root: UserId,
    k: usize,
    allowed: &[bool],
    rng: &mut R,
) -> Option<Vec<UserId>> {
    if k == 0 || !allowed[root as usize] {
        return None;
    }
    let mut in_set = vec![false; graph.num_nodes()];
    let mut set = Vec::with_capacity(k);
    let mut frontier: Vec<UserId> = Vec::new();
    in_set[root as usize] = true;
    set.push(root);
    let push_neighbors = |v: UserId, frontier: &mut Vec<UserId>, in_set: &[bool]| {
        for nb in graph.neighbors(v) {
            let u = nb.node;
            if allowed[u as usize] && !in_set[u as usize] && !frontier.contains(&u) {
                frontier.push(u);
            }
        }
    };
    push_neighbors(root, &mut frontier, &in_set);
    while set.len() < k {
        if frontier.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..frontier.len());
        let v = frontier.swap_remove(idx);
        in_set[v as usize] = true;
        set.push(v);
        push_neighbors(v, &mut frontier, &in_set);
    }
    set.sort_unstable();
    Some(set)
}

/// Sampled counterpart of [`crate::refinement::verify_center`]: draws up
/// to `samples` random connected groups among the `θ`-eligible candidate
/// users and keeps the best feasible one. Exact in its *checks*,
/// approximate in its *search*. Each draw counts against the budget's
/// group allowance and each cost Dijkstra against its settle allowance;
/// a trip abandons the center (returning whatever was already verified
/// stays sound, but we return `None` to keep the anytime gap
/// conservative — the caller treats the center as unresolved).
#[allow(clippy::too_many_arguments)]
pub fn verify_center_sampled<R: Rng + ?Sized>(
    ssn: &SpatialSocialNetwork,
    q: &GpSsnQuery,
    candidates: &[UserId],
    center: PoiId,
    best_so_far: f64,
    samples: usize,
    rng: &mut R,
    budget: &BudgetState,
) -> Option<GpSsnAnswer> {
    let center_pos = ssn.pois().get(center).position;
    let ball = ssn.pois().network_ball(ssn.road(), &center_pos, q.radius);
    if ball.is_empty() {
        return None;
    }
    let r_ids: Vec<PoiId> = ball.iter().map(|&(o, _)| o).collect();
    let union = ssn.pois().keyword_union(&r_ids);
    if match_score_keywords(ssn.social().interest(q.user), &union) < q.theta {
        return None;
    }
    let mut allowed = vec![false; ssn.social().num_users()];
    let mut eligible_count = 0usize;
    for &u in candidates {
        if match_score_keywords(ssn.social().interest(u), &union) >= q.theta {
            allowed[u as usize] = true;
            eligible_count += 1;
        }
    }
    if !allowed[q.user as usize] {
        allowed[q.user as usize] = true;
        eligible_count += 1;
    }
    if eligible_count < q.tau {
        return None;
    }

    let positions: Vec<NetworkPoint> = r_ids.iter().map(|&o| ssn.pois().get(o).position).collect();
    let mut cost_cache: std::collections::HashMap<UserId, f64> = Default::default();
    let cost = |u: UserId, cache: &mut std::collections::HashMap<UserId, f64>| -> f64 {
        *cache.entry(u).or_insert_with(|| {
            let (dists, settled) = dist_rn_many_counted(ssn.road(), &ssn.home(u), &positions);
            budget.add_settles(settled);
            dists.into_iter().fold(0.0f64, f64::max)
        })
    };
    if cost(q.user, &mut cost_cache) >= best_so_far || budget.is_tripped() {
        return None;
    }

    let mut best: Option<GpSsnAnswer> = None;
    let mut best_val = best_so_far;
    for _ in 0..samples {
        budget.note_group();
        if budget.is_tripped() {
            return None;
        }
        let Some(group) =
            sample_connected_group(ssn.social().graph(), q.user, q.tau, &allowed, rng)
        else {
            continue;
        };
        if !ssn.social().pairwise_interest_holds(&group, q.gamma) {
            continue;
        }
        let maxdist = group
            .iter()
            .map(|&u| cost(u, &mut cost_cache))
            .fold(0.0f64, f64::max);
        if budget.is_tripped() {
            return None;
        }
        if maxdist < best_val {
            best_val = maxdist;
            let mut pois = r_ids.clone();
            pois.sort_unstable();
            best = Some(GpSsnAnswer {
                users: group,
                pois,
                maxdist,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::exact_baseline;
    use crate::query::check_answer;
    use gpssn_ssn::{synthetic, SyntheticConfig};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn sampled_groups_are_connected_and_sized() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 3);
        let graph = ssn.social().graph();
        let allowed = vec![true; ssn.social().num_users()];
        let mut rng = StdRng::seed_from_u64(5);
        let mut drawn = 0;
        for _ in 0..50 {
            if let Some(g) = sample_connected_group(graph, 0, 3, &allowed, &mut rng) {
                drawn += 1;
                assert_eq!(g.len(), 3);
                assert!(g.contains(&0));
                assert!(gpssn_graph::is_connected_subset(graph, &g));
            }
        }
        assert!(drawn > 0, "sampler never produced a group");
    }

    #[test]
    fn stuck_expansion_returns_none() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 3);
        let mut allowed = vec![false; ssn.social().num_users()];
        allowed[0] = true; // only the root allowed: size-2 groups impossible
        let mut rng = StdRng::seed_from_u64(5);
        assert!(sample_connected_group(ssn.social().graph(), 0, 2, &allowed, &mut rng).is_none());
    }

    #[test]
    fn sampled_answers_are_valid_and_no_better_than_exact() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.006), 9);
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.3,
            theta: 0.3,
            radius: 2.5,
        };
        let exact = exact_baseline(&ssn, &q);
        let mut rng = StdRng::seed_from_u64(1);
        let candidates: Vec<u32> = (0..ssn.social().num_users() as u32).collect();
        let mut best: Option<GpSsnAnswer> = None;
        for center in 0..ssn.pois().len() as u32 {
            let bound = best.as_ref().map_or(f64::INFINITY, |b| b.maxdist);
            if let Some(a) = verify_center_sampled(
                &ssn,
                &q,
                &candidates,
                center,
                bound,
                20,
                &mut rng,
                &BudgetState::unlimited(),
            ) {
                best = Some(a);
            }
        }
        if let Some(ans) = &best {
            check_answer(&ssn, &q, ans).expect("sampled answer violates Definition 5");
            if let Some(e) = &exact {
                assert!(
                    ans.maxdist + 1e-9 >= e.maxdist,
                    "sampling beat the exact optimum"
                );
            }
        }
    }
}
