//! Typed errors, resource budgets, and completion reporting for
//! fault-tolerant query serving.
//!
//! The engine's `try_*` entry points return [`GpSsnError`] instead of
//! panicking, accept a [`QueryBudget`] bounding wall-clock time and the
//! three dominant work units (best-first heap pops, connected-subset
//! enumerations, Dijkstra settles), and report how the answer terminated
//! via [`Completion`]: a tripped budget degrades into an *anytime* answer
//! — the best verified `(S, R)` pair so far plus an optimality-gap bound
//! derived from the smallest outstanding `lb_maxdist` (Eq. 17), which
//! lower-bounds every answer the truncated search did not examine.
//!
//! [`BudgetState`] is the per-query metering object threaded through the
//! traversal, refinement, sampling, and baseline code paths. Checks are
//! cheap: saturating counter bumps, with the clock consulted only every
//! [`DEADLINE_CHECK_PERIOD`] events.

use gpssn_social::UserId;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Everything that can go wrong while serving a GP-SSN query.
#[derive(Debug, Clone, PartialEq)]
pub enum GpSsnError {
    /// The query parameters fail [`crate::GpSsnQuery::validate`].
    InvalidQuery(String),
    /// The query radius falls outside the `[r_min, r_max]` range the road
    /// index was built for.
    RadiusOutOfIndexRange {
        /// The requested radius.
        radius: f64,
        /// Smallest radius the index supports.
        r_min: f64,
        /// Largest radius the index supports.
        r_max: f64,
    },
    /// The query user id is not a vertex of the social network.
    UnknownUser {
        /// The requested user id.
        user: UserId,
        /// Number of users in the network.
        num_users: usize,
    },
    /// No answer can exist, with a proof sketch (e.g. `τ` exceeds the
    /// user population, or the query user has no friends and `τ ≥ 2`).
    Infeasible {
        /// Why no feasible answer exists.
        reason: String,
    },
    /// The [`QueryBudget::deadline`] elapsed before the search finished
    /// and no verified answer was available to degrade to.
    DeadlineExceeded,
    /// A work-unit budget ran out before the search finished and no
    /// verified answer was available to degrade to.
    BudgetExhausted {
        /// Which budget tripped (`"heap pops"`, `"groups enumerated"`,
        /// `"dijkstra settles"`).
        resource: &'static str,
    },
    /// The serving layer's bounded submission queue was full and the
    /// overload policy sheds instead of blocking; the request never
    /// reached the engine. Only produced by [`crate::serve`].
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The request's deadline had already expired before any engine work
    /// was spent on it (at submission, or after waiting in the serving
    /// queue), so admission control shed it. Distinct from
    /// [`GpSsnError::DeadlineExceeded`], which reports a deadline that
    /// tripped *mid-query*. Only produced by [`crate::serve`].
    DeadlineExpired,
    /// A persisted index failed its per-section checksum (or parse) on
    /// load. `section` names the corrupt section (`"cfg"`, `"pivots"`,
    /// `"pois"`, `"ch"`); a corrupt `ch` section is recoverable by
    /// rebuilding the oracle from the road graph (see
    /// `gpssn_index::load_road_index_healing`).
    IndexCorrupt {
        /// Which serialized section failed verification.
        section: String,
    },
    /// A query panicked inside a batch; the payload message is preserved.
    /// Only produced by [`crate::GpSsnEngine::try_query_batch`], which
    /// isolates the panic to the offending slot.
    Internal(String),
}

impl std::fmt::Display for GpSsnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpSsnError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            GpSsnError::RadiusOutOfIndexRange {
                radius,
                r_min,
                r_max,
            } => {
                write!(
                    f,
                    "radius {radius} outside the index's [{r_min}, {r_max}] range"
                )
            }
            GpSsnError::UnknownUser { user, num_users } => {
                write!(
                    f,
                    "unknown user {user} (social network has {num_users} users)"
                )
            }
            GpSsnError::Infeasible { reason } => write!(f, "query is infeasible: {reason}"),
            GpSsnError::DeadlineExceeded => write!(f, "deadline exceeded"),
            GpSsnError::BudgetExhausted { resource } => {
                write!(f, "resource budget exhausted: {resource}")
            }
            GpSsnError::Overloaded { depth, capacity } => {
                write!(
                    f,
                    "service overloaded: submission queue at depth {depth} of capacity {capacity}"
                )
            }
            GpSsnError::DeadlineExpired => {
                write!(f, "deadline expired before the query started")
            }
            GpSsnError::IndexCorrupt { section } => {
                write!(f, "index corrupt: section {section:?} failed verification")
            }
            GpSsnError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for GpSsnError {}

/// How a query terminated.
#[derive(Debug, Clone, PartialEq)]
pub enum Completion {
    /// The search ran to completion: the answer (or its absence) is the
    /// exact optimum.
    Exact,
    /// A budget tripped mid-search. The reported answer is the best
    /// verified one and the true optimum `opt` satisfies
    /// `answer.maxdist - gap <= opt <= answer.maxdist`. For top-k queries
    /// with fewer than `k` answers found, the gap is `f64::INFINITY`.
    TruncatedWithGap(f64),
    /// The exact pipeline could not produce an answer (fault or budget
    /// trip with nothing verified) and the degradation ladder served
    /// one from the sampling estimator instead (the paper's §6.3
    /// baseline device). The answer satisfies every query constraint —
    /// it passes `check_answer` — but its `maxdist` is only an upper
    /// bound on the optimum, with no gap estimate. Only produced when
    /// [`crate::DegradationPolicy::Ladder`] is selected.
    DegradedSampling,
    /// A budget tripped before any answer was verified; the error names
    /// the tripped resource.
    Failed(GpSsnError),
}

impl Completion {
    /// Whether the result is the exact optimum.
    pub fn is_exact(&self) -> bool {
        matches!(self, Completion::Exact)
    }

    /// The degradation-ladder rung this completion was served from, as
    /// a stable label: `"exact"`, `"truncated"`, `"sampling"`, or
    /// `"failed"` (used for exit codes and the
    /// `gpssn_degraded_rung_total` counter).
    pub fn rung(&self) -> &'static str {
        match self {
            Completion::Exact => "exact",
            Completion::TruncatedWithGap(_) => "truncated",
            Completion::DegradedSampling => "sampling",
            Completion::Failed(_) => "failed",
        }
    }
}

/// Resource limits for one query. The default is unlimited (every field
/// `None`), which makes the budgeted code paths behave exactly like the
/// unbudgeted ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryBudget {
    /// Wall-clock deadline, measured from query start.
    pub deadline: Option<Duration>,
    /// Cap on best-first heap pops (road-index traversal, Eq. 17 order).
    pub max_heap_pops: Option<u64>,
    /// Cap on connected user subsets enumerated (refinement, sampling,
    /// feasibility probes, baseline).
    pub max_groups_enumerated: Option<u64>,
    /// Cap on vertices settled by refinement-time Dijkstra runs.
    pub max_dijkstra_settles: Option<u64>,
}

impl QueryBudget {
    /// No limits at all (same as `Default`).
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        QueryBudget {
            deadline: Some(deadline),
            ..Default::default()
        }
    }

    /// Whether every limit is absent.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_heap_pops.is_none()
            && self.max_groups_enumerated.is_none()
            && self.max_dijkstra_settles.is_none()
    }
}

/// Which budget tripped first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trip {
    /// The wall-clock deadline elapsed.
    Deadline,
    /// [`QueryBudget::max_heap_pops`] ran out.
    HeapPops,
    /// [`QueryBudget::max_groups_enumerated`] ran out.
    Groups,
    /// [`QueryBudget::max_dijkstra_settles`] ran out.
    DijkstraSettles,
}

impl From<Trip> for GpSsnError {
    fn from(t: Trip) -> GpSsnError {
        match t {
            Trip::Deadline => GpSsnError::DeadlineExceeded,
            Trip::HeapPops => GpSsnError::BudgetExhausted {
                resource: "heap pops",
            },
            Trip::Groups => GpSsnError::BudgetExhausted {
                resource: "groups enumerated",
            },
            Trip::DijkstraSettles => GpSsnError::BudgetExhausted {
                resource: "dijkstra settles",
            },
        }
    }
}

/// The clock is consulted once per this many counted events (and once per
/// chunky operation), keeping the common-case budget check branch-and-add
/// cheap.
pub const DEADLINE_CHECK_PERIOD: u64 = 64;

/// Per-query budget metering. Cheap to consult; once any limit trips the
/// state is sticky — every later check reports the same [`Trip`] so the
/// whole pipeline unwinds cooperatively.
///
/// Counters are relaxed atomics so one meter can be shared by the
/// intra-query parallel refinement workers (`&self` everywhere, `Sync`);
/// one instance still serves exactly one query. Caps remain *global*
/// across workers: the combined work of all threads is charged to the
/// same counters, so a budget of `N` settles admits `N` settles total,
/// not `N` per thread.
#[derive(Debug)]
pub struct BudgetState {
    deadline_at: Option<Instant>,
    max_pops: u64,
    max_groups: u64,
    max_settles: u64,
    pops: AtomicU64,
    groups: AtomicU64,
    settles: AtomicU64,
    /// `0` = not tripped; otherwise `1 + Trip discriminant` of the first
    /// trip (sticky via compare-exchange).
    tripped: AtomicU8,
    /// Cross-query distance-cache hit/miss tallies for this query
    /// (ball cache, then exact `dist_RN` cache).
    ball_hits: AtomicU64,
    ball_misses: AtomicU64,
    dist_hits: AtomicU64,
    dist_misses: AtomicU64,
    /// Contraction-hierarchy oracle usage: batches run and vertices
    /// settled by CH sweeps (a breakout of `settles` — CH work charges
    /// the same settle budget as plain Dijkstra).
    ch_batches: AtomicU64,
    ch_settles: AtomicU64,
    /// Plain-Dijkstra batches (the non-CH complement of `ch_batches`).
    dijkstra_batches: AtomicU64,
    /// Workspace telemetry folded in by the refinement workers: runs
    /// prepared, runs that reused already-sized storage, and CH near-tie
    /// path unpacks.
    ws_resets: AtomicU64,
    heap_recycles: AtomicU64,
    ch_unpacks: AtomicU64,
    /// Faults that cost the query verified work (a refinement worker
    /// panic caught and absorbed): the center involved is unresolved,
    /// so a nonzero count disqualifies the `Exact` completion even if
    /// no budget tripped.
    faults: AtomicU64,
    /// CH batches that panicked and were re-served from the Dijkstra
    /// path. Informational only — the fallback row is bit-identical,
    /// so these do *not* degrade the completion.
    ch_faults: AtomicU64,
}

const TRIP_NONE: u8 = 0;

fn trip_encode(t: Trip) -> u8 {
    match t {
        Trip::Deadline => 1,
        Trip::HeapPops => 2,
        Trip::Groups => 3,
        Trip::DijkstraSettles => 4,
    }
}

fn trip_decode(v: u8) -> Option<Trip> {
    match v {
        TRIP_NONE => None,
        1 => Some(Trip::Deadline),
        2 => Some(Trip::HeapPops),
        3 => Some(Trip::Groups),
        _ => Some(Trip::DijkstraSettles),
    }
}

impl BudgetState {
    /// Starts metering `budget` from now.
    pub fn new(budget: &QueryBudget) -> Self {
        BudgetState {
            deadline_at: budget.deadline.map(|d| Instant::now() + d),
            max_pops: budget.max_heap_pops.unwrap_or(u64::MAX),
            max_groups: budget.max_groups_enumerated.unwrap_or(u64::MAX),
            max_settles: budget.max_dijkstra_settles.unwrap_or(u64::MAX),
            pops: AtomicU64::new(0),
            groups: AtomicU64::new(0),
            settles: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
            ball_hits: AtomicU64::new(0),
            ball_misses: AtomicU64::new(0),
            dist_hits: AtomicU64::new(0),
            dist_misses: AtomicU64::new(0),
            ch_batches: AtomicU64::new(0),
            ch_settles: AtomicU64::new(0),
            dijkstra_batches: AtomicU64::new(0),
            ws_resets: AtomicU64::new(0),
            heap_recycles: AtomicU64::new(0),
            ch_unpacks: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            ch_faults: AtomicU64::new(0),
        }
    }

    /// A meter that never trips (counters still accumulate).
    pub fn unlimited() -> Self {
        BudgetState::new(&QueryBudget::unlimited())
    }

    /// Records one best-first heap pop; returns the trip if any budget is
    /// now (or was already) exhausted. A budget of `N` admits exactly `N`
    /// pops: the `N+1`-th attempt trips *without* being counted, so the
    /// reported metric never exceeds the budget.
    #[inline]
    pub fn note_pop(&self) -> Option<Trip> {
        self.note_counted(&self.pops, self.max_pops, Trip::HeapPops)
    }

    /// Records one enumerated connected subset; returns the trip if any
    /// budget is now (or was already) exhausted. As with [`Self::note_pop`],
    /// the tripping attempt itself is not counted.
    #[inline]
    pub fn note_group(&self) -> Option<Trip> {
        self.note_counted(&self.groups, self.max_groups, Trip::Groups)
    }

    #[inline]
    fn note_counted(&self, counter: &AtomicU64, max: u64, kind: Trip) -> Option<Trip> {
        if let Some(t) = self.trip() {
            return Some(t);
        }
        let n = counter.fetch_add(1, Ordering::Relaxed);
        if n >= max {
            // Uncount the tripping attempt so the reported metric never
            // exceeds the budget, even when several workers race here.
            counter.fetch_sub(1, Ordering::Relaxed);
            return self.trip_now(kind);
        }
        if (n + 1).is_multiple_of(DEADLINE_CHECK_PERIOD) {
            return self.check_deadline();
        }
        None
    }

    /// Charges `n` Dijkstra-settled vertices; returns the trip if any
    /// budget is now (or was already) exhausted. Dijkstra runs are chunky,
    /// so the deadline is consulted on every call.
    #[inline]
    pub fn add_settles(&self, n: u64) -> Option<Trip> {
        if let Some(t) = self.trip() {
            return Some(t);
        }
        let total = self
            .settles
            .fetch_add(n, Ordering::Relaxed)
            .saturating_add(n);
        if total > self.max_settles {
            return self.trip_now(Trip::DijkstraSettles);
        }
        self.check_deadline()
    }

    /// Records a cross-query distance-cache lookup for a road-network
    /// ball (`hit = true` when served from the cache).
    #[inline]
    pub fn note_ball_cache(&self, hit: bool) {
        let c = if hit {
            &self.ball_hits
        } else {
            &self.ball_misses
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` cross-query distance-cache lookups for exact
    /// `dist_RN(u, o)` values (`hit = true` when served from the cache).
    #[inline]
    pub fn note_dist_cache(&self, hit: bool, n: u64) {
        let c = if hit {
            &self.dist_hits
        } else {
            &self.dist_misses
        };
        c.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one contraction-hierarchy oracle batch that settled `n`
    /// vertices across its sweeps. Pure bookkeeping for
    /// [`Self::ch_tallies`]; the settles themselves must still be
    /// charged through [`Self::add_settles`] so CH work counts against
    /// the same budget as plain Dijkstra.
    #[inline]
    pub fn note_ch_batch(&self, n: u64) {
        self.ch_batches.fetch_add(1, Ordering::Relaxed);
        self.ch_settles.fetch_add(n, Ordering::Relaxed);
    }

    /// `(batches, settles)` recorded so far against the CH oracle.
    pub fn ch_tallies(&self) -> (u64, u64) {
        (
            self.ch_batches.load(Ordering::Relaxed),
            self.ch_settles.load(Ordering::Relaxed),
        )
    }

    /// Records one multi-target batch served by plain Dijkstra (the
    /// complement of [`Self::note_ch_batch`]; its settles are charged
    /// through [`Self::add_settles`] like everything else).
    #[inline]
    pub fn note_dijkstra_batch(&self) {
        self.dijkstra_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Plain-Dijkstra batches recorded so far.
    pub fn dijkstra_batches(&self) -> u64 {
        self.dijkstra_batches.load(Ordering::Relaxed)
    }

    /// Folds workspace lifetime telemetry into the meter: `resets` runs
    /// prepared, `recycles` runs that reused already-sized storage, and
    /// `unpacks` CH near-tie path unpacks. Called once per workspace at
    /// the end of each refinement scope, not per run.
    pub fn note_workspace(&self, resets: u64, recycles: u64, unpacks: u64) {
        self.ws_resets.fetch_add(resets, Ordering::Relaxed);
        self.heap_recycles.fetch_add(recycles, Ordering::Relaxed);
        self.ch_unpacks.fetch_add(unpacks, Ordering::Relaxed);
    }

    /// `(ws_resets, heap_recycles, ch_unpacks)` folded in so far.
    pub fn workspace_tallies(&self) -> (u64, u64, u64) {
        (
            self.ws_resets.load(Ordering::Relaxed),
            self.heap_recycles.load(Ordering::Relaxed),
            self.ch_unpacks.load(Ordering::Relaxed),
        )
    }

    /// Records a fault that cost this query verified work — a caught
    /// refinement panic or an errored center. See the `faults` field:
    /// any nonzero count keeps the completion from claiming `Exact`.
    #[inline]
    pub fn note_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Exactness-affecting faults recorded so far.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Records a CH batch panic absorbed by the bit-identical Dijkstra
    /// fallback (informational; does not affect the completion).
    #[inline]
    pub fn note_ch_fault(&self) {
        self.ch_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Absorbed CH faults recorded so far.
    pub fn ch_faults(&self) -> u64 {
        self.ch_faults.load(Ordering::Relaxed)
    }

    /// Re-checks the sticky trip state and the deadline without charging
    /// any work (used between pipeline stages).
    #[inline]
    pub fn check(&self) -> Option<Trip> {
        if let Some(t) = self.trip() {
            return Some(t);
        }
        self.check_deadline()
    }

    /// Whether any budget has tripped.
    pub fn is_tripped(&self) -> bool {
        self.trip().is_some()
    }

    /// The first trip, if any.
    pub fn trip(&self) -> Option<Trip> {
        trip_decode(self.tripped.load(Ordering::Relaxed))
    }

    /// Heap pops recorded so far.
    pub fn pops(&self) -> u64 {
        self.pops.load(Ordering::Relaxed)
    }

    /// Connected subsets recorded so far.
    pub fn groups(&self) -> u64 {
        self.groups.load(Ordering::Relaxed)
    }

    /// Dijkstra-settled vertices recorded so far.
    pub fn settles(&self) -> u64 {
        self.settles.load(Ordering::Relaxed)
    }

    /// `(ball hits, ball misses, dist hits, dist misses)` recorded so far
    /// against the cross-query distance cache.
    pub fn cache_tallies(&self) -> (u64, u64, u64, u64) {
        (
            self.ball_hits.load(Ordering::Relaxed),
            self.ball_misses.load(Ordering::Relaxed),
            self.dist_hits.load(Ordering::Relaxed),
            self.dist_misses.load(Ordering::Relaxed),
        )
    }

    #[inline]
    fn check_deadline(&self) -> Option<Trip> {
        match self.deadline_at {
            Some(at) if Instant::now() >= at => self.trip_now(Trip::Deadline),
            _ => None,
        }
    }

    fn trip_now(&self, t: Trip) -> Option<Trip> {
        // First trip wins; later (possibly different) trips from racing
        // workers keep reporting the original cause.
        match self.tripped.compare_exchange(
            TRIP_NONE,
            trip_encode(t),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => Some(t),
            Err(prev) => trip_decode(prev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = BudgetState::unlimited();
        for _ in 0..10_000 {
            assert_eq!(b.note_pop(), None);
            assert_eq!(b.note_group(), None);
        }
        assert_eq!(b.add_settles(1 << 40), None);
        assert!(!b.is_tripped());
        assert_eq!(b.pops(), 10_000);
        assert_eq!(b.groups(), 10_000);
    }

    #[test]
    fn pop_budget_trips_and_sticks() {
        let b = BudgetState::new(&QueryBudget {
            max_heap_pops: Some(3),
            ..Default::default()
        });
        assert_eq!(b.note_pop(), None);
        assert_eq!(b.note_pop(), None);
        assert_eq!(b.note_pop(), None);
        assert_eq!(b.note_pop(), Some(Trip::HeapPops));
        // Sticky: every later check reports the same trip.
        assert_eq!(b.note_group(), Some(Trip::HeapPops));
        assert_eq!(b.add_settles(1), Some(Trip::HeapPops));
        assert_eq!(b.check(), Some(Trip::HeapPops));
        // The tripping attempt is never counted: metrics stay <= budget.
        assert_eq!(b.pops(), 3);
    }

    #[test]
    fn group_and_settle_budgets_trip() {
        let b = BudgetState::new(&QueryBudget {
            max_groups_enumerated: Some(2),
            ..Default::default()
        });
        assert_eq!(b.note_group(), None);
        assert_eq!(b.note_group(), None);
        assert_eq!(b.note_group(), Some(Trip::Groups));

        let b = BudgetState::new(&QueryBudget {
            max_dijkstra_settles: Some(10),
            ..Default::default()
        });
        assert_eq!(b.add_settles(10), None);
        assert_eq!(b.add_settles(1), Some(Trip::DijkstraSettles));
    }

    #[test]
    fn zero_deadline_trips_on_first_period() {
        let b = BudgetState::new(&QueryBudget::with_deadline(Duration::ZERO));
        // The deadline is only consulted every DEADLINE_CHECK_PERIOD pops.
        let mut tripped = false;
        for _ in 0..DEADLINE_CHECK_PERIOD {
            if b.note_pop().is_some() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
        assert_eq!(b.trip(), Some(Trip::Deadline));
        // check() consults the clock immediately.
        let b2 = BudgetState::new(&QueryBudget::with_deadline(Duration::ZERO));
        assert_eq!(b2.check(), Some(Trip::Deadline));
    }

    #[test]
    fn errors_display_one_line() {
        let cases: Vec<GpSsnError> = vec![
            GpSsnError::InvalidQuery("tau must be at least 1".into()),
            GpSsnError::RadiusOutOfIndexRange {
                radius: 9.0,
                r_min: 0.5,
                r_max: 4.0,
            },
            GpSsnError::UnknownUser {
                user: 7,
                num_users: 3,
            },
            GpSsnError::Infeasible {
                reason: "tau exceeds population".into(),
            },
            GpSsnError::DeadlineExceeded,
            GpSsnError::Overloaded {
                depth: 128,
                capacity: 128,
            },
            GpSsnError::DeadlineExpired,
            Trip::HeapPops.into(),
            Trip::Groups.into(),
            Trip::DijkstraSettles.into(),
            GpSsnError::IndexCorrupt {
                section: "ch".into(),
            },
            GpSsnError::Internal("boom".into()),
        ];
        for e in cases {
            let line = e.to_string();
            assert!(!line.is_empty() && !line.contains('\n'), "{line:?}");
        }
    }

    #[test]
    fn budget_constructors() {
        assert!(QueryBudget::unlimited().is_unlimited());
        let d = QueryBudget::with_deadline(Duration::from_millis(5));
        assert!(!d.is_unlimited());
        assert_eq!(d.max_heap_pops, None);
    }
}
