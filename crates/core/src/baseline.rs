//! The Baseline competitor (paper Section 6.1, "Competitor").
//!
//! "We first find all user sets `S` of size `τ` (containing query user
//! `u_q`) from social networks `G_s` that satisfy the constraint of the
//! interest score threshold `γ`. Then, we obtain all sets `R` of POIs in
//! a circular region with radius `r`, which `θ`-match with user sets `S`.
//! Finally, we return a pair `(S, R)` with the smallest maximum
//! distance."
//!
//! [`exact_baseline`] runs that enumeration literally (feasible for the
//! small instances used in correctness tests — this is the oracle the
//! engine's property tests compare against). For realistic sizes the
//! paper estimates the Baseline cost by sampling 100 user sets and
//! extrapolating by the total pair count `C(m, τ)`; we reproduce that in
//! [`estimate_baseline_cost`].

use crate::error::{BudgetState, GpSsnError, QueryBudget};
use crate::query::{GpSsnAnswer, GpSsnQuery};
use crate::stats::binomial_f64;
use gpssn_graph::enumerate_connected_subsets;
use gpssn_road::{dist_rn_many, dist_rn_many_counted, NetworkPoint, PoiId};
use gpssn_social::UserId;
use gpssn_ssn::{match_score_keywords, SpatialSocialNetwork};
use std::time::Instant;

/// Exhaustively solves a GP-SSN query: every connected `τ`-subset
/// containing `u_q` with pairwise interest `>= γ`, against every
/// candidate POI ball `⊙(o_i, r)` that `θ`-matches the whole group.
/// Returns the optimal answer, or `None` if no pair is feasible.
///
/// Complexity is exponential in `τ` — use only on small instances.
pub fn exact_baseline(ssn: &SpatialSocialNetwork, q: &GpSsnQuery) -> Option<GpSsnAnswer> {
    match try_exact_baseline(ssn, q, &QueryBudget::unlimited()) {
        Ok(ans) => ans,
        Err(e @ GpSsnError::InvalidQuery(_)) => panic!("invalid query parameters: {e}"),
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`exact_baseline`] under a resource budget. The Baseline
/// enumerates in arbitrary (not best-first) order, so there is no sound
/// anytime gap to report: a budget trip returns the trip's error rather
/// than a partial answer.
pub fn try_exact_baseline(
    ssn: &SpatialSocialNetwork,
    q: &GpSsnQuery,
    budget: &QueryBudget,
) -> Result<Option<GpSsnAnswer>, GpSsnError> {
    try_exact_baseline_with_obs(ssn, q, budget, None)
}

/// [`try_exact_baseline`] with telemetry: a `baseline` span wrapping
/// the run, phase spans/timers for group enumeration and the ball scan,
/// and a `gpssn_queries_total{path="baseline"}` counter.
pub fn try_exact_baseline_with_obs(
    ssn: &SpatialSocialNetwork,
    q: &GpSsnQuery,
    budget: &QueryBudget,
    obs: Option<&gpssn_obs::Obs>,
) -> Result<Option<GpSsnAnswer>, GpSsnError> {
    q.validate().map_err(GpSsnError::InvalidQuery)?;
    let num_users = ssn.social().num_users();
    if q.user as usize >= num_users {
        return Err(GpSsnError::UnknownUser {
            user: q.user,
            num_users,
        });
    }
    let obs = obs.filter(|o| o.active());
    let _qspan = obs
        .filter(|o| o.tracing_on())
        .map(|o| o.tracer().span("baseline"));
    if let Some(o) = obs {
        o.inc("gpssn_queries_total", &[("path", "baseline")], 1);
    }
    let meter = BudgetState::new(budget);
    // All feasible user groups.
    let mut groups: Vec<Vec<UserId>> = Vec::new();
    gpssn_obs::phase(obs, "enumerate_groups", || {
        enumerate_connected_subsets(ssn.social().graph(), q.user, q.tau, None, &mut |s| {
            meter.note_group();
            if meter.is_tripped() {
                return false;
            }
            if ssn.social().pairwise_interest_holds(s, q.gamma) {
                groups.push(s.to_vec());
            }
            true
        })
    });
    if let Some(trip) = meter.trip() {
        return Err(trip.into());
    }
    if groups.is_empty() {
        return Ok(None);
    }
    // All candidate balls.
    let n = ssn.pois().len();
    let mut best: Option<GpSsnAnswer> = None;
    let _scan_span = obs
        .filter(|o| o.tracing_on())
        .map(|o| o.tracer().span("scan_balls"));
    for center in 0..n as PoiId {
        let pos = ssn.pois().get(center).position;
        let ball = ssn.pois().network_ball(ssn.road(), &pos, q.radius);
        if ball.is_empty() {
            continue;
        }
        let r_ids: Vec<PoiId> = ball.iter().map(|&(o, _)| o).collect();
        let union = ssn.pois().keyword_union(&r_ids);
        let positions: Vec<NetworkPoint> =
            r_ids.iter().map(|&o| ssn.pois().get(o).position).collect();
        // Cache per-user costs for this ball.
        let mut cost_cache: std::collections::HashMap<UserId, f64> = Default::default();
        for group in &groups {
            meter.note_group();
            if let Some(trip) = meter.trip() {
                return Err(trip.into());
            }
            if group
                .iter()
                .any(|&u| match_score_keywords(ssn.social().interest(u), &union) < q.theta)
            {
                continue;
            }
            let mut maxdist = 0.0f64;
            for &u in group {
                let c = *cost_cache.entry(u).or_insert_with(|| {
                    let (dists, settled) =
                        dist_rn_many_counted(ssn.road(), &ssn.home(u), &positions);
                    meter.add_settles(settled);
                    dists.into_iter().fold(0.0f64, f64::max)
                });
                maxdist = maxdist.max(c);
            }
            if let Some(trip) = meter.trip() {
                return Err(trip.into());
            }
            if best.as_ref().is_none_or(|b| maxdist < b.maxdist) {
                let mut users = group.clone();
                users.sort_unstable();
                let mut pois = r_ids.clone();
                pois.sort_unstable();
                best = Some(GpSsnAnswer {
                    users,
                    pois,
                    maxdist,
                });
            }
        }
    }
    Ok(best)
}

/// Exhaustive top-`k`: the best feasible answer of every candidate
/// center, globally sorted by objective, truncated to `k` — the oracle
/// for [`crate::GpSsnEngine::query_top_k`]'s semantics.
pub fn exact_baseline_top_k(
    ssn: &SpatialSocialNetwork,
    q: &GpSsnQuery,
    k: usize,
) -> Vec<GpSsnAnswer> {
    let mut groups: Vec<Vec<UserId>> = Vec::new();
    enumerate_connected_subsets(ssn.social().graph(), q.user, q.tau, None, &mut |s| {
        if ssn.social().pairwise_interest_holds(s, q.gamma) {
            groups.push(s.to_vec());
        }
        true
    });
    if groups.is_empty() {
        return Vec::new();
    }
    let mut per_center: Vec<GpSsnAnswer> = Vec::new();
    for center in 0..ssn.pois().len() as PoiId {
        let pos = ssn.pois().get(center).position;
        let ball = ssn.pois().network_ball(ssn.road(), &pos, q.radius);
        if ball.is_empty() {
            continue;
        }
        let r_ids: Vec<PoiId> = ball.iter().map(|&(o, _)| o).collect();
        let union = ssn.pois().keyword_union(&r_ids);
        let positions: Vec<NetworkPoint> =
            r_ids.iter().map(|&o| ssn.pois().get(o).position).collect();
        let mut cost_cache: std::collections::HashMap<UserId, f64> = Default::default();
        let mut best_here: Option<GpSsnAnswer> = None;
        for group in &groups {
            if group
                .iter()
                .any(|&u| match_score_keywords(ssn.social().interest(u), &union) < q.theta)
            {
                continue;
            }
            let mut maxdist = 0.0f64;
            for &u in group {
                let c = *cost_cache.entry(u).or_insert_with(|| {
                    dist_rn_many(ssn.road(), &ssn.home(u), &positions)
                        .into_iter()
                        .fold(0.0f64, f64::max)
                });
                maxdist = maxdist.max(c);
            }
            if best_here.as_ref().is_none_or(|b| maxdist < b.maxdist) {
                let mut users = group.clone();
                users.sort_unstable();
                let mut pois = r_ids.clone();
                pois.sort_unstable();
                best_here = Some(GpSsnAnswer {
                    users,
                    pois,
                    maxdist,
                });
            }
        }
        if let Some(a) = best_here {
            per_center.push(a);
        }
    }
    per_center.sort_by(|a, b| a.maxdist.total_cmp(&b.maxdist));
    // The engine deduplicates identical (S, R) pairs; mirror that.
    let mut out: Vec<GpSsnAnswer> = Vec::new();
    for a in per_center {
        if !out.iter().any(|b| b.users == a.users && b.pois == a.pois) {
            out.push(a);
        }
        if out.len() == k {
            break;
        }
    }
    out
}

/// The paper's extrapolated Baseline cost estimate.
#[derive(Debug, Clone)]
pub struct BaselineEstimate {
    /// Estimated total CPU seconds (`avg per-pair cost × C(m, τ)`).
    pub cpu_seconds: f64,
    /// Estimated I/O page accesses (POI pages scanned per pair × pairs).
    pub io_pages: f64,
    /// Number of sampled user sets actually measured.
    pub samples: usize,
    /// The extrapolation factor `C(m, τ)`.
    pub total_pairs: f64,
}

/// Estimates the Baseline cost the way the paper does (Figure 8): sample
/// `samples` user sets, measure the average cost of checking one `(S, R)`
/// pair stream, and multiply by the total number `C(m, τ)` of user sets.
pub fn estimate_baseline_cost(
    ssn: &SpatialSocialNetwork,
    q: &GpSsnQuery,
    samples: usize,
) -> BaselineEstimate {
    let m = ssn.social().num_users();
    let n = ssn.pois().len();
    let total_pairs = binomial_f64(m, q.tau);
    // Sample user sets by random BFS growth from u_q (the paper samples
    // 100 sets S).
    let mut sampled = 0usize;
    let started = Instant::now();
    let mut sink = 0.0f64;
    enumerate_connected_subsets(ssn.social().graph(), q.user, q.tau, None, &mut |s| {
        sampled += 1;
        // Measure the work of validating this S against a slice of the
        // POI stream: interest + matching + distance for a few balls.
        let _ = ssn.social().pairwise_interest_holds(s, q.gamma);
        let probe = (sampled * 7919) % n.max(1);
        let pos = ssn.pois().get(probe as PoiId).position;
        let ball = ssn.pois().network_ball(ssn.road(), &pos, q.radius);
        if !ball.is_empty() {
            let ids: Vec<PoiId> = ball.iter().map(|&(o, _)| o).collect();
            let union = ssn.pois().keyword_union(&ids);
            for &u in s {
                sink += match_score_keywords(ssn.social().interest(u), &union);
            }
            let positions: Vec<NetworkPoint> =
                ids.iter().map(|&o| ssn.pois().get(o).position).collect();
            sink += dist_rn_many(ssn.road(), &ssn.home(s[0]), &positions)
                .into_iter()
                .fold(0.0f64, f64::max);
        }
        sampled < samples
    });
    std::hint::black_box(sink);
    let elapsed = started.elapsed().as_secs_f64();
    let per_pair = if sampled == 0 {
        0.0
    } else {
        elapsed / sampled as f64
    };
    // Each pair scans the POI stream once: page accesses ~ n / capacity.
    let pages_per_pair = (n as f64 / 32.0).max(1.0);
    BaselineEstimate {
        cpu_seconds: per_pair * total_pairs,
        io_pages: pages_per_pair * total_pairs,
        samples: sampled,
        total_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::check_answer;
    use gpssn_ssn::{synthetic, SyntheticConfig};

    #[test]
    fn exact_baseline_answers_validate() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), 23);
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.3,
            theta: 0.2,
            radius: 3.0,
        };
        if let Some(ans) = exact_baseline(&ssn, &q) {
            check_answer(&ssn, &q, &ans).expect("baseline answer satisfies Definition 5");
        }
    }

    #[test]
    fn baseline_none_when_gamma_unattainable() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), 23);
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 5.0,
            theta: 0.2,
            radius: 3.0,
        };
        assert!(exact_baseline(&ssn, &q).is_none());
    }

    #[test]
    fn estimate_scales_with_binomial() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 7);
        let q = GpSsnQuery {
            user: 0,
            tau: 3,
            gamma: 0.2,
            theta: 0.2,
            radius: 2.0,
        };
        let est = estimate_baseline_cost(&ssn, &q, 20);
        assert!(est.samples > 0);
        assert_eq!(est.total_pairs, binomial_f64(ssn.social().num_users(), 3));
        assert!(est.cpu_seconds >= 0.0);
        assert!(est.io_pages > 0.0);
    }
}
