//! The social network `G_s` (Definition 3): users, friendships, and
//! per-user interest vectors.

use crate::interest::{interest_score, InterestVector};
use gpssn_graph::{CsrGraph, NodeId};

/// Identifier of a user (a vertex of `G_s`).
pub type UserId = NodeId;

/// A social network: an unweighted friendship graph plus one interest
/// vector per user.
#[derive(Debug, Clone)]
pub struct SocialNetwork {
    graph: CsrGraph,
    interests: Vec<InterestVector>,
    num_topics: usize,
}

impl SocialNetwork {
    /// Builds a social network from a friendship edge list and per-user
    /// interest vectors (one per user, all of the same dimension).
    ///
    /// # Panics
    /// Panics if interest dimensions are inconsistent.
    pub fn new(interests: Vec<InterestVector>, friendships: &[(UserId, UserId)]) -> Self {
        let num_topics = interests.first().map_or(0, InterestVector::dim);
        assert!(
            interests.iter().all(|w| w.dim() == num_topics),
            "all interest vectors must share one dimension"
        );
        let edges: Vec<(NodeId, NodeId, f64)> =
            friendships.iter().map(|&(a, b)| (a, b, 1.0)).collect();
        let graph = CsrGraph::from_edges(interests.len(), &edges);
        SocialNetwork {
            graph,
            interests,
            num_topics,
        }
    }

    /// Underlying friendship graph.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Number of users `m = |V(G_s)|`.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of friendship edges `|E(G_s)|`.
    #[inline]
    pub fn num_friendships(&self) -> usize {
        self.graph.num_edges()
    }

    /// Topic dimensionality `d`.
    #[inline]
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// Interest vector of user `u` (`u.w`).
    #[inline]
    pub fn interest(&self, u: UserId) -> &InterestVector {
        &self.interests[u as usize]
    }

    /// All interest vectors.
    #[inline]
    pub fn interests(&self) -> &[InterestVector] {
        &self.interests
    }

    /// `Interest_Score(u_j, u_k)` between two users (Eq. 1).
    #[inline]
    pub fn score(&self, a: UserId, b: UserId) -> f64 {
        interest_score(&self.interests[a as usize], &self.interests[b as usize])
    }

    /// Whether `a` and `b` are friends.
    #[inline]
    pub fn are_friends(&self, a: UserId, b: UserId) -> bool {
        self.graph.has_edge(a, b)
    }

    /// Friends of `u`.
    pub fn friends(&self, u: UserId) -> impl Iterator<Item = UserId> + '_ {
        self.graph.neighbors(u).iter().map(|nb| nb.node)
    }

    /// Average friendship degree (Table 2's `deg(G_s)`).
    pub fn average_degree(&self) -> f64 {
        self.graph.average_degree()
    }

    /// Whether every pair in `group` meets the interest threshold `γ`
    /// (Definition 5, condition 3).
    pub fn pairwise_interest_holds(&self, group: &[UserId], gamma: f64) -> bool {
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                if self.score(a, b) < gamma {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 5-user example of Figure 1 / Table 1.
    pub(crate) fn paper_example() -> SocialNetwork {
        let interests = vec![
            InterestVector::new(vec![0.7, 0.3, 0.7]), // u_1
            InterestVector::new(vec![0.2, 0.9, 0.3]), // u_2
            InterestVector::new(vec![0.4, 0.8, 0.8]), // u_3
            InterestVector::new(vec![0.9, 0.7, 0.7]), // u_4
            InterestVector::new(vec![0.1, 0.8, 0.5]), // u_5
        ];
        // Friendships as drawn in Figure 1 (a plausible reading).
        SocialNetwork::new(interests, &[(0, 1), (0, 3), (1, 2), (2, 3), (1, 4), (2, 4)])
    }

    #[test]
    fn basic_accessors() {
        let net = paper_example();
        assert_eq!(net.num_users(), 5);
        assert_eq!(net.num_friendships(), 6);
        assert_eq!(net.num_topics(), 3);
        assert!(net.are_friends(0, 1));
        assert!(!net.are_friends(0, 4));
        assert_eq!(net.friends(0).count(), 2);
    }

    #[test]
    fn score_matches_table1() {
        let net = paper_example();
        // u_3 · u_5 = 0.04 + 0.64 + 0.40 = 1.08
        assert!((net.score(2, 4) - 1.08).abs() < 1e-12);
    }

    #[test]
    fn pairwise_interest_threshold() {
        let net = paper_example();
        // Scores: (1,2)=0.62, (1,3)=1.08, (2,3)=1.04.
        assert!(net.pairwise_interest_holds(&[0, 1, 2], 0.6));
        assert!(!net.pairwise_interest_holds(&[0, 1, 2], 0.7));
        assert!(net.pairwise_interest_holds(&[0], 99.0)); // singleton
        assert!(net.pairwise_interest_holds(&[], 99.0)); // empty
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn rejects_mixed_dimensions() {
        SocialNetwork::new(
            vec![
                InterestVector::new(vec![0.1]),
                InterestVector::new(vec![0.1, 0.2]),
            ],
            &[],
        );
    }

    #[test]
    fn empty_network() {
        let net = SocialNetwork::new(vec![], &[]);
        assert_eq!(net.num_users(), 0);
        assert_eq!(net.num_topics(), 0);
    }
}
