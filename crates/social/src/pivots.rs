//! Social-network pivots `sp_1..sp_l` and hop-distance lower bounds.
//!
//! The paper precomputes `dist_SN(u_j, sp_k)` for every user and `l`
//! pivots (Section 4.1) and lower-bounds unknown hop distances with the
//! triangle inequality (the equation after Lemma 4, with the `max` over
//! pivots used by Eq. 19). Unreachable pivot distances are handled
//! conservatively: a pair that provably lies in different components gets
//! an infinite lower bound; a pivot that sees neither user contributes
//! nothing.

use crate::hops::UNREACHABLE_HOPS;
use crate::network::{SocialNetwork, UserId};
use gpssn_graph::bfs;

/// A set of social pivots with full hop-distance tables.
#[derive(Debug, Clone)]
pub struct SocialPivots {
    pivots: Vec<UserId>,
    /// `table[k][u]` = exact hops from pivot `k` to user `u`.
    table: Vec<Vec<u32>>,
}

impl SocialPivots {
    /// Precomputes hop tables for the given pivot users (one BFS each),
    /// sequentially.
    pub fn new(net: &SocialNetwork, pivots: Vec<UserId>) -> Self {
        Self::new_with_threads(net, pivots, 1)
    }

    /// [`SocialPivots::new`] with the columns computed over `threads`
    /// scoped workers (`0` = all cores). Each column is an independent
    /// BFS merged back in pivot order, so the table is identical for
    /// every thread count.
    pub fn new_with_threads(net: &SocialNetwork, pivots: Vec<UserId>, threads: usize) -> Self {
        assert!(!pivots.is_empty(), "at least one pivot is required");
        let table = hop_columns(net, &pivots, threads);
        SocialPivots { pivots, table }
    }

    /// Number of pivots `l`.
    #[inline]
    pub fn len(&self) -> usize {
        self.pivots.len()
    }

    /// Never true for a constructed value.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pivots.is_empty()
    }

    /// The pivot users.
    #[inline]
    pub fn pivots(&self) -> &[UserId] {
        &self.pivots
    }

    /// Exact hops from pivot `k` to user `u`
    /// ([`UNREACHABLE_HOPS`] when disconnected).
    #[inline]
    pub fn dist(&self, k: usize, u: UserId) -> u32 {
        self.table[k][u as usize]
    }

    /// Per-pivot distance vector of user `u` (stored in `I_S` leaves).
    pub fn user_dists(&self, u: UserId) -> Vec<u32> {
        (0..self.pivots.len())
            .map(|k| self.table[k][u as usize])
            .collect()
    }

    /// Triangle-inequality lower bound on `dist_SN(a, b)`:
    /// `max_k |d(a, sp_k) - d(sp_k, b)|`, treating component mismatches as
    /// infinite.
    pub fn lb_dist(&self, a: UserId, b: UserId) -> u32 {
        let mut lb = 0u32;
        for k in 0..self.pivots.len() {
            let da = self.table[k][a as usize];
            let db = self.table[k][b as usize];
            match (da == UNREACHABLE_HOPS, db == UNREACHABLE_HOPS) {
                (false, false) => lb = lb.max(da.abs_diff(db)),
                (true, true) => {}            // pivot sees neither: no information
                _ => return UNREACHABLE_HOPS, // different components
            }
        }
        lb
    }
}

/// Computes the pivot hop columns, fanning contiguous pivot chunks out
/// over scoped threads when more than one worker is requested. Chunk
/// boundaries depend only on the pivot count, and each column is
/// computed whole by one worker, so the merged table matches the
/// sequential one exactly.
// Audited expect: `join` only fails when a column worker panicked, and
// propagating that panic is exactly the intended behavior.
#[allow(clippy::expect_used)]
fn hop_columns(net: &SocialNetwork, pivots: &[UserId], threads: usize) -> Vec<Vec<u32>> {
    let auto = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let workers = if threads == 0 { auto() } else { threads }.min(pivots.len());
    if workers <= 1 {
        return pivots
            .iter()
            .map(|&p| bfs::hop_distances(net.graph(), p))
            .collect();
    }
    let chunk = pivots.len().div_ceil(workers);
    let mut table = Vec::with_capacity(pivots.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = pivots
            .chunks(chunk)
            .map(|ps| {
                scope.spawn(move || {
                    ps.iter()
                        .map(|&p| bfs::hop_distances(net.graph(), p))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            table.extend(h.join().expect("pivot column worker panicked"));
        }
    });
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hops::dist_sn;
    use crate::interest::InterestVector;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn chain(n: usize) -> SocialNetwork {
        let interests = (0..n).map(|_| InterestVector::new(vec![0.5])).collect();
        let edges: Vec<(UserId, UserId)> = (1..n).map(|i| (i as UserId - 1, i as UserId)).collect();
        SocialNetwork::new(interests, &edges)
    }

    #[test]
    fn exact_on_chain_with_end_pivot() {
        let net = chain(6);
        let pv = SocialPivots::new(&net, vec![0]);
        // On a path with an end pivot, the bound is exact.
        assert_eq!(pv.lb_dist(1, 4), 3);
        assert_eq!(pv.lb_dist(4, 1), 3);
        assert_eq!(dist_sn(&net, 1, 4), 3);
    }

    #[test]
    fn user_dists_vector() {
        let net = chain(4);
        let pv = SocialPivots::new(&net, vec![0, 3]);
        assert_eq!(pv.user_dists(1), vec![1, 2]);
        assert_eq!(pv.len(), 2);
    }

    #[test]
    fn cross_component_is_infinite() {
        let interests = (0..4).map(|_| InterestVector::new(vec![0.5])).collect();
        let net = SocialNetwork::new(interests, &[(0, 1), (2, 3)]);
        let pv = SocialPivots::new(&net, vec![0]);
        assert_eq!(pv.lb_dist(0, 2), UNREACHABLE_HOPS);
        // Pivot sees neither 2 nor 3: no information, bound 0.
        assert_eq!(pv.lb_dist(2, 3), 0);
    }

    #[test]
    #[should_panic(expected = "at least one pivot")]
    fn rejects_empty_pivots() {
        SocialPivots::new(&chain(2), vec![]);
    }

    #[test]
    fn parallel_tables_match_sequential() {
        let net = chain(12);
        let pivots = vec![0u32, 3, 7, 11];
        let base = SocialPivots::new(&net, pivots.clone());
        for threads in [2, 3, 8, 0] {
            let par = SocialPivots::new_with_threads(&net, pivots.clone(), threads);
            assert_eq!(par.pivots(), base.pivots());
            for k in 0..pivots.len() {
                for u in 0..12u32 {
                    assert_eq!(par.dist(k, u), base.dist(k, u), "threads={threads}");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The pivot bound never exceeds the true hop distance.
        #[test]
        fn lower_bound_is_sound(seed in 0u64..500, n in 2usize..30, l in 1usize..4) {
            let mut rng = StdRng::seed_from_u64(seed);
            let interests = (0..n).map(|_| InterestVector::new(vec![0.5])).collect();
            let mut edges = Vec::new();
            for v in 1..n {
                if rng.gen_bool(0.85) {
                    edges.push((rng.gen_range(0..v) as UserId, v as UserId));
                }
            }
            let net = SocialNetwork::new(interests, &edges);
            let pivots: Vec<UserId> = (0..l).map(|_| rng.gen_range(0..n) as UserId).collect();
            let pv = SocialPivots::new(&net, pivots);
            let a = rng.gen_range(0..n) as UserId;
            let b = rng.gen_range(0..n) as UserId;
            let exact = dist_sn(&net, a, b);
            let lb = pv.lb_dist(a, b);
            if exact == UNREACHABLE_HOPS {
                // Any bound is fine for disconnected pairs.
            } else {
                prop_assert!(lb <= exact, "lb {lb} > exact {exact}");
            }
        }
    }
}
