//! Social-network distance `dist_SN` (hop counts).
//!
//! Lemma 4 of the paper: a connected group of `τ` users containing `u_q`
//! can only contain users within `τ - 1` hops of `u_q`, so anything with
//! `lb_dist_SN(u_k, u_q) >= τ` is safely pruned. The exact oracle here is
//! plain BFS; the index-level lower bounds come from [`crate::pivots`].

use crate::network::{SocialNetwork, UserId};
use gpssn_graph::bfs;

/// Sentinel hop distance for unreachable users.
pub const UNREACHABLE_HOPS: u32 = u32::MAX;

/// Exact hop distances from `source` to every user.
pub fn dist_sn_all(net: &SocialNetwork, source: UserId) -> Vec<u32> {
    bfs::hop_distances(net.graph(), source)
}

/// Exact hop distances truncated at `max_hops` (vertices farther away
/// report [`UNREACHABLE_HOPS`]). This is the `(τ-1)`-bounded exploration
/// GP-SSN uses to gather candidate users around `u_q`.
pub fn dist_sn_bounded(net: &SocialNetwork, source: UserId, max_hops: u32) -> Vec<u32> {
    bfs::bounded_hops(net.graph(), source, max_hops)
}

/// Exact hop distance between two users ([`UNREACHABLE_HOPS`] when
/// disconnected).
pub fn dist_sn(net: &SocialNetwork, a: UserId, b: UserId) -> u32 {
    dist_sn_all(net, a)[b as usize]
}

/// Users within `max_hops` of `source`, in BFS order (includes `source`).
pub fn users_within(net: &SocialNetwork, source: UserId, max_hops: u32) -> Vec<UserId> {
    bfs::ball(net.graph(), source, max_hops)
        .into_iter()
        .map(|(u, _)| u)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interest::InterestVector;

    fn chain(n: usize) -> SocialNetwork {
        let interests = (0..n).map(|_| InterestVector::new(vec![0.5])).collect();
        let edges: Vec<(UserId, UserId)> = (1..n).map(|i| (i as UserId - 1, i as UserId)).collect();
        SocialNetwork::new(interests, &edges)
    }

    #[test]
    fn chain_distances() {
        let net = chain(5);
        assert_eq!(dist_sn(&net, 0, 4), 4);
        assert_eq!(dist_sn(&net, 2, 2), 0);
    }

    #[test]
    fn bounded_matches_lemma4_usage() {
        let net = chain(6);
        let tau = 3u32;
        let d = dist_sn_bounded(&net, 0, tau - 1);
        // Users with d >= tau are exactly those reported unreachable here.
        assert_eq!(d[2], 2);
        assert_eq!(d[3], UNREACHABLE_HOPS);
    }

    #[test]
    fn users_within_contains_source_first() {
        let net = chain(4);
        let w = users_within(&net, 1, 1);
        assert_eq!(w[0], 1);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn disconnected_users_unreachable() {
        let interests = (0..3).map(|_| InterestVector::new(vec![0.5])).collect();
        let net = SocialNetwork::new(interests, &[(0, 1)]);
        assert_eq!(dist_sn(&net, 0, 2), UNREACHABLE_HOPS);
    }
}
