//! # gpssn-social — the social network substrate `G_s`
//!
//! Implements Definition 3 of the paper: users with `d`-dimensional
//! interest (topic) vectors, connected by friendship edges.
//!
//! * [`interest`] — [`InterestVector`] and the common-interest score
//!   `Interest_Score(u_j, u_k) = Σ_f w_f^{(j)}·w_f^{(k)}` (Eq. 1), plus
//!   normalization helpers.
//! * [`network`] — [`SocialNetwork`]: CSR friendship graph + per-user
//!   interest vectors.
//! * [`hops`] — social-network distance `dist_SN` (hop counts) used by
//!   Lemma 4's distance pruning.
//! * [`pivots`] — social pivots `sp_1..sp_l` with hop-distance tables and
//!   the triangle-inequality lower bound of Eq. (19).
//! * [`generator`] — synthetic social networks (Uniform/Zipf degrees,
//!   Section 6.1) and heavy-tailed "Brightkite/Gowalla-like" graphs for
//!   the surrogate real datasets.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod generator;
pub mod hops;
pub mod interest;
pub mod metrics;
pub mod network;
pub mod pivots;

pub use generator::{
    generate_power_law_network, generate_social_network, InterestNormalization, SocialGenConfig,
};
pub use hops::UNREACHABLE_HOPS;
pub use interest::{interest_score, InterestVector};
pub use metrics::{hamming_distance, jaccard_score};
pub use network::{SocialNetwork, UserId};
pub use pivots::SocialPivots;
