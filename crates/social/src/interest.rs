//! Interest keyword vectors and the common-interest score (Eq. 1).
//!
//! Each user `u_j` carries a vector `u_j.w = (w_1.p, …, w_d.p)` of topic
//! probabilities in `[0,1]`. The common-interest score between two users
//! is their dot product, which the paper rewrites as
//! `‖u_j.w‖·‖u_k.w‖·cos θ` (Eq. 4) — the cosine-similarity form behind
//! the geometric user-pruning region of Section 3.2.

/// A user's interest (topic) vector; weights lie in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct InterestVector {
    weights: Vec<f64>,
}

impl InterestVector {
    /// Creates an interest vector.
    ///
    /// # Panics
    /// Panics if any weight is outside `[0, 1]` or non-finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights
                .iter()
                .all(|w| w.is_finite() && (0.0..=1.0).contains(w)),
            "interest weights must lie in [0, 1]"
        );
        InterestVector { weights }
    }

    /// The zero vector of dimension `d`.
    pub fn zeros(d: usize) -> Self {
        InterestVector {
            weights: vec![0.0; d],
        }
    }

    /// Dimensionality `d` (number of topics).
    #[inline]
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Weight of topic `f`.
    #[inline]
    pub fn weight(&self, f: usize) -> f64 {
        self.weights[f]
    }

    /// All weights.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Euclidean norm `‖w‖`.
    pub fn norm(&self) -> f64 {
        self.weights.iter().map(|w| w * w).sum::<f64>().sqrt()
    }

    /// Dot product with another vector of the same dimension.
    pub fn dot(&self, other: &InterestVector) -> f64 {
        debug_assert_eq!(self.dim(), other.dim(), "interest dimension mismatch");
        self.weights
            .iter()
            .zip(other.weights.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Returns a copy scaled to unit Euclidean norm. The zero vector is
    /// returned unchanged. Unit-norm vectors make `Interest_Score` a pure
    /// cosine in `[0, 1]`, matching the paper's `γ ∈ [0, 1]` convention.
    pub fn normalized(&self) -> InterestVector {
        let n = self.norm();
        if n == 0.0 {
            return self.clone();
        }
        InterestVector {
            weights: self.weights.iter().map(|w| w / n).collect(),
        }
    }

    /// Returns a copy scaled so weights sum to 1 (a topic distribution).
    /// The zero vector is returned unchanged.
    pub fn as_distribution(&self) -> InterestVector {
        let s: f64 = self.weights.iter().sum();
        if s == 0.0 {
            return self.clone();
        }
        InterestVector {
            weights: self.weights.iter().map(|w| w / s).collect(),
        }
    }
}

/// `Interest_Score(u_j, u_k)` — Eq. (1): the dot product of the two
/// interest vectors.
#[inline]
pub fn interest_score(a: &InterestVector, b: &InterestVector) -> f64 {
    a.dot(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_product_matches_paper_example() {
        // Table 1: u_1 = (0.7, 0.3, 0.7), u_4 = (0.9, 0.7, 0.7).
        let u1 = InterestVector::new(vec![0.7, 0.3, 0.7]);
        let u4 = InterestVector::new(vec![0.9, 0.7, 0.7]);
        let s = interest_score(&u1, &u4);
        assert!((s - (0.63 + 0.21 + 0.49)).abs() < 1e-12);
    }

    #[test]
    fn score_is_symmetric() {
        let a = InterestVector::new(vec![0.2, 0.9, 0.3]);
        let b = InterestVector::new(vec![0.4, 0.8, 0.8]);
        assert_eq!(interest_score(&a, &b), interest_score(&b, &a));
    }

    #[test]
    fn normalized_has_unit_norm() {
        let a = InterestVector::new(vec![0.3, 0.4]);
        let n = a.normalized();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!((n.weight(0) - 0.6).abs() < 1e-12);
        assert!((n.weight(1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_survives_normalization() {
        let z = InterestVector::zeros(3);
        assert_eq!(z.normalized(), z);
        assert_eq!(z.as_distribution(), z);
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn distribution_sums_to_one() {
        let a = InterestVector::new(vec![0.5, 0.25, 0.25]);
        let d = a.as_distribution();
        let s: f64 = d.weights().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn rejects_out_of_range_weights() {
        InterestVector::new(vec![0.5, 1.2]);
    }

    proptest! {
        /// Cosine form (Eq. 4) equals the dot product: score =
        /// ‖a‖·‖b‖·cosθ where cosθ is the normalized dot.
        #[test]
        fn cosine_form_equals_dot(a in proptest::collection::vec(0.0f64..1.0, 1..8)) {
            let b: Vec<f64> = a.iter().map(|x| (x * 0.7 + 0.1).min(1.0)).collect();
            let va = InterestVector::new(a);
            let vb = InterestVector::new(b);
            let dot = interest_score(&va, &vb);
            let na = va.norm();
            let nb = vb.norm();
            if na > 0.0 && nb > 0.0 {
                let cos = va.normalized().dot(&vb.normalized());
                prop_assert!((dot - na * nb * cos).abs() < 1e-9);
                prop_assert!(cos <= 1.0 + 1e-9, "Cauchy-Schwarz");
            }
        }

        /// Unit-norm scores stay within [0, 1] (nonnegative weights).
        #[test]
        fn normalized_scores_in_unit_interval(
            a in proptest::collection::vec(0.0f64..1.0, 2..6),
            b in proptest::collection::vec(0.0f64..1.0, 2..6),
        ) {
            let d = a.len().min(b.len());
            let va = InterestVector::new(a[..d].to_vec()).normalized();
            let vb = InterestVector::new(b[..d].to_vec()).normalized();
            let s = interest_score(&va, &vb);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&s));
        }
    }
}
