//! Alternative interest metrics — the paper's stated future work
//! ("for other metrics such as Jaccard similarity or Hamming distance,
//! we need to design specific techniques (e.g., pruning with lower/upper
//! bounds of these metrics)", Section 2.1).
//!
//! Interest vectors are binarized by a weight threshold (`topic f ∈ A`
//! iff `w_f >= tau_w`), and the set metrics plus safe index-level bounds
//! are provided:
//!
//! * [`jaccard_score`] with the node-level upper bound
//!   [`jaccard_ub_node`] — prune a node when even the optimistic overlap
//!   misses `γ` (mirrors Lemma 8's role for the dot-product metric);
//! * [`hamming_distance`] with the node-level lower bound
//!   [`hamming_lb_node`] — prune when even the optimistic agreement
//!   exceeds the allowed distance.

use crate::interest::InterestVector;

/// Topic set of `v` under binarization threshold `tau_w`.
pub fn topic_set(v: &InterestVector, tau_w: f64) -> Vec<usize> {
    (0..v.dim()).filter(|&f| v.weight(f) >= tau_w).collect()
}

/// Jaccard similarity of the binarized topic sets: `|A∩B| / |A∪B|`
/// (1.0 when both sets are empty, by convention).
pub fn jaccard_score(a: &InterestVector, b: &InterestVector, tau_w: f64) -> f64 {
    debug_assert_eq!(a.dim(), b.dim());
    let mut inter = 0usize;
    let mut union = 0usize;
    for f in 0..a.dim() {
        let ia = a.weight(f) >= tau_w;
        let ib = b.weight(f) >= tau_w;
        if ia && ib {
            inter += 1;
        }
        if ia || ib {
            union += 1;
        }
    }
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Hamming distance of the binarized topic sets (symmetric difference
/// size).
pub fn hamming_distance(a: &InterestVector, b: &InterestVector, tau_w: f64) -> usize {
    debug_assert_eq!(a.dim(), b.dim());
    (0..a.dim())
        .filter(|&f| (a.weight(f) >= tau_w) != (b.weight(f) >= tau_w))
        .count()
}

/// Per-topic membership summary of an index node, derived from its
/// interest MBR `[lb_w, ub_w]` (Eqs. 9–10): a topic is *definitely*
/// present for every user below when `lb_w >= tau_w`, and *possibly*
/// present when `ub_w >= tau_w`.
#[derive(Debug, Clone)]
pub struct NodeTopicBounds {
    /// `definite[f]`: all members contain topic `f`.
    pub definite: Vec<bool>,
    /// `possible[f]`: some member may contain topic `f`.
    pub possible: Vec<bool>,
}

impl NodeTopicBounds {
    /// Builds the summary from a node's interest MBR.
    pub fn from_mbr(lb_w: &[f64], ub_w: &[f64], tau_w: f64) -> Self {
        debug_assert_eq!(lb_w.len(), ub_w.len());
        NodeTopicBounds {
            definite: lb_w.iter().map(|&l| l >= tau_w).collect(),
            possible: ub_w.iter().map(|&u| u >= tau_w).collect(),
        }
    }
}

/// Upper bound on `Jaccard(Q, M)` over every member set `M` consistent
/// with the node bounds: intersection at most `|Q ∩ possible|`, union at
/// least `|Q ∪ definite|`.
///
/// A node whose bound falls below the Jaccard threshold `γ_J` is safely
/// pruned for the query set `Q`.
pub fn jaccard_ub_node(query: &[usize], node: &NodeTopicBounds) -> f64 {
    let d = node.possible.len();
    let in_q = |f: usize| query.contains(&f);
    let mut max_inter = 0usize;
    let mut min_union = 0usize;
    for f in 0..d {
        let q = in_q(f);
        if q && node.possible[f] {
            max_inter += 1;
        }
        if q || node.definite[f] {
            min_union += 1;
        }
    }
    if min_union == 0 {
        // Q empty and nothing definite: a member could also be empty.
        return 1.0;
    }
    (max_inter as f64 / min_union as f64).min(1.0)
}

/// Lower bound on `Hamming(Q, M)` over every member set `M` consistent
/// with the node bounds: topics where disagreement is *forced* — in `Q`
/// but impossible below, or outside `Q` but definite below.
pub fn hamming_lb_node(query: &[usize], node: &NodeTopicBounds) -> usize {
    let d = node.possible.len();
    let in_q = |f: usize| query.contains(&f);
    (0..d)
        .filter(|&f| {
            let q = in_q(f);
            (q && !node.possible[f]) || (!q && node.definite[f])
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(w: &[f64]) -> InterestVector {
        InterestVector::new(w.to_vec())
    }

    #[test]
    fn jaccard_basic_cases() {
        let a = iv(&[0.9, 0.9, 0.0]);
        let b = iv(&[0.9, 0.0, 0.9]);
        assert!((jaccard_score(&a, &b, 0.5) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard_score(&a, &a, 0.5), 1.0);
        let empty = iv(&[0.0, 0.0, 0.0]);
        assert_eq!(jaccard_score(&empty, &empty, 0.5), 1.0);
        assert_eq!(jaccard_score(&a, &empty, 0.5), 0.0);
    }

    #[test]
    fn hamming_counts_symmetric_difference() {
        let a = iv(&[0.9, 0.9, 0.0, 0.0]);
        let b = iv(&[0.9, 0.0, 0.9, 0.0]);
        assert_eq!(hamming_distance(&a, &b, 0.5), 2);
        assert_eq!(hamming_distance(&a, &a, 0.5), 0);
    }

    #[test]
    fn topic_set_extraction() {
        let a = iv(&[0.9, 0.1, 0.6]);
        assert_eq!(topic_set(&a, 0.5), vec![0, 2]);
        assert_eq!(topic_set(&a, 0.05), vec![0, 1, 2]);
    }

    #[test]
    fn node_bounds_classify_topics() {
        let b = NodeTopicBounds::from_mbr(&[0.6, 0.1, 0.0], &[0.9, 0.8, 0.2], 0.5);
        assert_eq!(b.definite, vec![true, false, false]);
        assert_eq!(b.possible, vec![true, true, false]);
    }

    #[test]
    fn jaccard_node_bound_examples() {
        let node = NodeTopicBounds::from_mbr(&[0.6, 0.0, 0.0], &[0.9, 0.9, 0.0], 0.5);
        // Q = {2}: possible∩Q = ∅, union >= |{2} ∪ {0}| = 2 -> ub = 0.
        assert_eq!(jaccard_ub_node(&[2], &node), 0.0);
        // Q = {0}: inter <= 1, union >= 1 -> ub = 1.
        assert_eq!(jaccard_ub_node(&[0], &node), 1.0);
    }

    #[test]
    fn hamming_node_bound_examples() {
        let node = NodeTopicBounds::from_mbr(&[0.6, 0.0, 0.0], &[0.9, 0.9, 0.0], 0.5);
        // Q = {2}: topic 2 impossible below (+1); topic 0 definite but
        // not in Q (+1) -> lb = 2.
        assert_eq!(hamming_lb_node(&[2], &node), 2);
        assert_eq!(hamming_lb_node(&[0], &node), 0);
    }

    proptest! {
        /// The node bounds are safe: for any member inside the MBR, the
        /// Jaccard ub dominates the true score and the Hamming lb stays
        /// below the true distance.
        #[test]
        fn node_bounds_are_safe(
            q in proptest::collection::vec(0.0f64..1.0, 3..7),
            member in proptest::collection::vec(0.0f64..1.0, 3..7),
            slack in proptest::collection::vec(0.0f64..0.3, 3..7),
            tau_w in 0.1f64..0.9,
        ) {
            let d = q.len().min(member.len()).min(slack.len());
            let vq = iv(&q[..d]);
            let vm = iv(&member[..d]);
            let lb_w: Vec<f64> = member[..d].iter().zip(&slack[..d]).map(|(&m, &s)| (m - s).max(0.0)).collect();
            let ub_w: Vec<f64> = member[..d].iter().zip(&slack[..d]).map(|(&m, &s)| (m + s).min(1.0)).collect();
            let node = NodeTopicBounds::from_mbr(&lb_w, &ub_w, tau_w);
            let qset = topic_set(&vq, tau_w);
            let actual_j = jaccard_score(&vq, &vm, tau_w);
            let actual_h = hamming_distance(&vq, &vm, tau_w);
            prop_assert!(jaccard_ub_node(&qset, &node) + 1e-12 >= actual_j,
                "jaccard ub violated");
            prop_assert!(hamming_lb_node(&qset, &node) <= actual_h,
                "hamming lb violated");
        }

        /// Jaccard is symmetric and within [0, 1]; Hamming is symmetric.
        #[test]
        fn metric_laws(
            a in proptest::collection::vec(0.0f64..1.0, 1..8),
            b in proptest::collection::vec(0.0f64..1.0, 1..8),
            tau_w in 0.1f64..0.9,
        ) {
            let d = a.len().min(b.len());
            let va = iv(&a[..d]);
            let vb = iv(&b[..d]);
            let j1 = jaccard_score(&va, &vb, tau_w);
            let j2 = jaccard_score(&vb, &va, tau_w);
            prop_assert!((j1 - j2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&j1));
            prop_assert_eq!(hamming_distance(&va, &vb, tau_w), hamming_distance(&vb, &va, tau_w));
        }
    }
}
