//! Synthetic social networks (Section 6.1 of the paper).
//!
//! The paper's synthetic pipeline: "randomly connect each user `u_j` with
//! `deg(G_s)` users via edges, where degree `deg(G_s)` follows the Uniform
//! or Zipf distribution within the range \[1,10\]"; each user gets a
//! `d`-dimensional interest vector whose probabilities follow the same
//! distribution within `\[0,1\]`.
//!
//! For the surrogate *real* datasets (Brightkite/Gowalla replacements) we
//! additionally provide a Chung–Lu style heavy-tailed generator that hits
//! a target average degree with a power-law degree profile, matching the
//! qualitative structure of location-based social networks.

use crate::interest::InterestVector;
use crate::network::{SocialNetwork, UserId};
use gpssn_graph::{IndexSampler, ValueDistribution};
use rand::Rng;

/// Configuration for [`generate_social_network`].
#[derive(Debug, Clone)]
pub struct SocialGenConfig {
    /// Number of users `m = |V(G_s)|`.
    pub num_users: usize,
    /// Topic dimensionality `d`.
    pub num_topics: usize,
    /// Per-user degree range upper bound (paper: 10).
    pub max_degree: usize,
    /// Distribution of degrees and interest weights.
    pub distribution: ValueDistribution,
    /// How to normalize interest vectors (the paper works with
    /// "(normalized) weighted vectors (distributions)").
    pub normalization: InterestNormalization,
    /// Probability that a friendship edge connects users sharing a
    /// dominant topic (interest homophily — the defining property of
    /// location-based social networks and what makes `γ`-constrained
    /// groups findable). `0.0` yields topic-independent random edges.
    pub homophily: f64,
}

/// Normalization applied to generated interest vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterestNormalization {
    /// Keep raw `\[0,1\]` weights (Table 1's illustration style).
    None,
    /// Scale to sum 1 — a topic *distribution*, the paper's model; makes
    /// `Interest_Score` live in `(0, 1]` so `γ ∈ \[0,1\]` is meaningful.
    Distribution,
    /// Scale to unit Euclidean norm (pure cosine similarity).
    UnitNorm,
}

impl Default for SocialGenConfig {
    fn default() -> Self {
        SocialGenConfig {
            num_users: 30_000,
            num_topics: 5,
            max_degree: 10,
            distribution: ValueDistribution::Uniform,
            normalization: InterestNormalization::Distribution,
            homophily: 0.5,
        }
    }
}

/// Generates a synthetic social network per the paper's pipeline.
pub fn generate_social_network<R: Rng + ?Sized>(
    cfg: &SocialGenConfig,
    rng: &mut R,
) -> SocialNetwork {
    assert!(cfg.num_users >= 2 && cfg.num_topics > 0 && cfg.max_degree >= 1);
    let interests = generate_interests(cfg, rng);
    let buckets = topic_buckets(&interests, cfg.num_topics);
    let degree_sampler = IndexSampler::new(cfg.distribution, cfg.max_degree);
    let m = cfg.num_users;
    let mut edges: Vec<(UserId, UserId)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for u in 0..m {
        let deg = degree_sampler.sample(rng) + 1; // range [1, max_degree]
        for _ in 0..deg {
            let v = sample_partner(u, &interests, &buckets, cfg.homophily, m, rng);
            if v == u {
                continue;
            }
            let key = if u < v {
                (u as UserId, v as UserId)
            } else {
                (v as UserId, u as UserId)
            };
            if seen.insert(key) {
                edges.push(key);
            }
        }
    }
    SocialNetwork::new(interests, &edges)
}

/// Users grouped by dominant topic.
fn topic_buckets(interests: &[InterestVector], num_topics: usize) -> Vec<Vec<usize>> {
    let mut buckets = vec![Vec::new(); num_topics.max(1)];
    for (u, w) in interests.iter().enumerate() {
        buckets[dominant_topic(w)].push(u);
    }
    buckets
}

/// Index of a vector's largest weight (0 for empty vectors).
fn dominant_topic(w: &InterestVector) -> usize {
    let mut best = 0usize;
    for f in 1..w.dim() {
        if w.weight(f) > w.weight(best) {
            best = f;
        }
    }
    best
}

/// Homophily-aware partner draw: with probability `homophily`, a user
/// sharing `u`'s dominant topic; otherwise uniform.
fn sample_partner<R: Rng + ?Sized>(
    u: usize,
    interests: &[InterestVector],
    buckets: &[Vec<usize>],
    homophily: f64,
    m: usize,
    rng: &mut R,
) -> usize {
    if homophily > 0.0 && rng.gen_bool(homophily.clamp(0.0, 1.0)) {
        let bucket = &buckets[dominant_topic(&interests[u])];
        if bucket.len() > 1 {
            return bucket[rng.gen_range(0..bucket.len())];
        }
    }
    rng.gen_range(0..m)
}

/// Generates a heavy-tailed (Chung–Lu) friendship graph targeting
/// `avg_degree`, used by the Brightkite/Gowalla surrogates.
// Audited unwrap: `partial_cmp` over a CDF of finite, normalized
// weights — never NaN.
#[allow(clippy::unwrap_used)]
pub fn generate_power_law_network<R: Rng + ?Sized>(
    num_users: usize,
    num_topics: usize,
    avg_degree: f64,
    rng: &mut R,
) -> SocialNetwork {
    assert!(num_users >= 2 && avg_degree > 0.0);
    // Power-law expected degrees w_i ∝ (i+1)^{-0.5}, scaled to the target
    // mean; edge endpoints sampled ∝ w.
    let weights: Vec<f64> = (0..num_users)
        .map(|i| 1.0 / ((i + 1) as f64).sqrt())
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(num_users);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let sample_endpoint = |rng: &mut R| -> usize {
        let u: f64 = rng.gen();
        match cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(num_users - 1),
            Err(i) => i.min(num_users - 1),
        }
    };
    let cfg = SocialGenConfig {
        num_users,
        num_topics,
        ..Default::default()
    };
    let interests = generate_interests(&cfg, rng);
    let buckets = topic_buckets(&interests, num_topics);
    let target_edges = (num_users as f64 * avg_degree / 2.0).round() as usize;
    let mut edges = Vec::with_capacity(target_edges);
    let mut seen = std::collections::HashSet::with_capacity(target_edges * 2);
    let mut attempts = 0usize;
    while edges.len() < target_edges && attempts < target_edges * 20 {
        attempts += 1;
        let a = sample_endpoint(rng);
        let b = sample_partner(a, &interests, &buckets, cfg.homophily, num_users, rng);
        if a == b {
            continue;
        }
        let key = if a < b {
            (a as UserId, b as UserId)
        } else {
            (b as UserId, a as UserId)
        };
        if seen.insert(key) {
            edges.push(key);
        }
    }
    SocialNetwork::new(interests, &edges)
}

/// Generates the per-user interest vectors of `cfg`.
///
/// Real interest profiles (and the check-in-derived vectors the paper
/// builds) are *topic-concentrated*: a user has a dominant interest, a
/// weaker secondary one, and background noise on the rest. We model that
/// explicitly — a dominant topic drawn from `cfg.distribution` (Zipf
/// makes popular topics popular), a distinct secondary topic, and small
/// uniform residual weights. After normalization, two users sharing a
/// dominant topic score well above `γ = 0.5` while unrelated users score
/// near 0.1, which reproduces the paper's interest-pruning power
/// (65%–75% at the default `γ`).
fn generate_interests<R: Rng + ?Sized>(cfg: &SocialGenConfig, rng: &mut R) -> Vec<InterestVector> {
    let topic = IndexSampler::new(cfg.distribution, cfg.num_topics);
    (0..cfg.num_users)
        .map(|_| {
            let mut weights: Vec<f64> = (0..cfg.num_topics)
                .map(|_| rng.gen_range(0.0..0.08))
                .collect();
            let dominant = topic.sample(rng);
            weights[dominant] = rng.gen_range(0.75..1.0);
            if cfg.num_topics > 1 {
                let mut secondary = topic.sample(rng);
                if secondary == dominant {
                    secondary = (secondary + 1) % cfg.num_topics;
                }
                weights[secondary] = rng.gen_range(0.15..0.35);
            }
            let v = InterestVector::new(weights);
            match cfg.normalization {
                InterestNormalization::None => v,
                InterestNormalization::Distribution => v.as_distribution(),
                InterestNormalization::UnitNorm => v.normalized(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn synthetic_network_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SocialGenConfig {
            num_users: 1000,
            num_topics: 5,
            ..Default::default()
        };
        let net = generate_social_network(&cfg, &mut rng);
        assert_eq!(net.num_users(), 1000);
        assert_eq!(net.num_topics(), 5);
        // Degrees in [1,10] per endpoint imply avg degree roughly in
        // [2, 20] (each edge counted from both sides, minus dedup).
        let deg = net.average_degree();
        assert!((1.0..=20.0).contains(&deg), "avg degree {deg}");
    }

    #[test]
    fn distribution_interests_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = SocialGenConfig {
            num_users: 50,
            ..Default::default()
        };
        let net = generate_social_network(&cfg, &mut rng);
        for u in 0..50u32 {
            let s: f64 = net.interest(u).weights().iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "user {u} sum {s}");
        }
    }

    #[test]
    fn unit_norm_mode_yields_unit_vectors() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SocialGenConfig {
            num_users: 50,
            normalization: InterestNormalization::UnitNorm,
            ..Default::default()
        };
        let net = generate_social_network(&cfg, &mut rng);
        for u in 0..50u32 {
            let n = net.interest(u).norm();
            assert!((n - 1.0).abs() < 1e-9, "user {u} norm {n}");
        }
    }

    #[test]
    fn raw_mode_stays_in_unit_box() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SocialGenConfig {
            num_users: 50,
            normalization: InterestNormalization::None,
            ..Default::default()
        };
        let net = generate_social_network(&cfg, &mut rng);
        for u in 0..50u32 {
            assert!(net
                .interest(u)
                .weights()
                .iter()
                .all(|&w| (0.0..=1.0).contains(&w)));
        }
    }

    #[test]
    fn power_law_hits_target_degree() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = generate_power_law_network(2000, 5, 10.0, &mut rng);
        let deg = net.average_degree();
        assert!((8.0..=11.0).contains(&deg), "avg degree {deg} vs target 10");
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = generate_power_law_network(2000, 5, 10.0, &mut rng);
        let mut degrees: Vec<usize> = (0..2000u32).map(|u| net.graph().degree(u)).collect();
        degrees.sort_unstable();
        let max = *degrees.last().unwrap();
        let median = degrees[1000];
        assert!(
            max > 4 * median,
            "max {max} vs median {median}: not heavy-tailed"
        );
    }

    #[test]
    fn zipf_degrees_skew_low() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = SocialGenConfig {
            num_users: 2000,
            distribution: ValueDistribution::Zipf,
            ..Default::default()
        };
        let zipf = generate_social_network(&cfg, &mut rng);
        let cfg_uni = SocialGenConfig {
            num_users: 2000,
            ..Default::default()
        };
        let uni = generate_social_network(&cfg_uni, &mut StdRng::seed_from_u64(6));
        assert!(zipf.average_degree() < uni.average_degree());
    }
}
