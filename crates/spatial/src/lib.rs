//! # gpssn-spatial — geometry and spatial indexing substrate
//!
//! Self-contained computational-geometry layer for GP-SSN:
//!
//! * [`geom`] — 2-D points and minimum bounding rectangles (MBRs) with the
//!   `mindist`/`maxdist` machinery used by every spatial pruning rule.
//! * [`rstar`] — a from-scratch R\*-tree (Beckmann et al., SIGMOD 1990;
//!   reference \[6\] of the paper): ChooseSubtree with overlap minimization,
//!   R\* topological split, and forced reinsertion. This is the backbone of
//!   the road-network index `I_R`.
//! * [`bitvec`] — hashed keyword signatures (`sup_K` / `sub_K` bit vectors
//!   of paper Section 4.1) with bit-OR aggregation up the tree.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod bitvec;
pub mod geom;
pub mod rstar;

pub use bitvec::KeywordSignature;
pub use geom::{Point, Rect};
pub use rstar::{Entry, Node, NodeId, RStarTree};
