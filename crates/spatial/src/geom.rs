//! 2-D points and minimum bounding rectangles.
//!
//! Provides the exact `mindist`/`maxdist` primitives the paper's pruning
//! rules rely on: Lemma 7 uses `mindist(e_Ri, e_Rj)` between index-node
//! MBRs, and Lemma 8 compares `maxdist(e_S.w, B')` with
//! `mindist(e_S.w, B)` between an interest-vector MBR and a point. The
//! same code serves both the 2-D spatial plane and (via the generic
//! `d`-dimensional variants in `gpssn-core`) the interest space.

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation between `self` (t=0) and `other` (t=1).
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

/// An axis-aligned minimum bounding rectangle (MBR).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl Rect {
    /// MBR of a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// Rectangle from explicit corners.
    ///
    /// # Panics
    /// Panics (in debug builds) if `min > max` on any axis.
    #[inline]
    pub fn new(min: Point, max: Point) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y, "invalid rect corners");
        Rect { min, max }
    }

    /// An "empty" rectangle that is the identity for [`Rect::union`].
    pub fn empty() -> Self {
        Rect {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Whether this is the empty rectangle.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x
    }

    /// Smallest rectangle containing both operands.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Grows the rectangle to contain `p`.
    pub fn extend(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Area (0 for empty and degenerate rectangles).
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.max.x - self.min.x) * (self.max.y - self.min.y)
    }

    /// Half-perimeter (the R\*-tree "margin").
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.max.x - self.min.x) + (self.max.y - self.min.y)
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Whether `p` lies inside (boundary inclusive).
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `other` lies fully inside (boundary inclusive).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min.x >= self.min.x
            && other.max.x <= self.max.x
            && other.min.y >= self.min.y
            && other.max.y <= self.max.y
    }

    /// Whether the rectangles overlap (boundary inclusive).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Area of the intersection (0 when disjoint).
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.max.x.min(other.max.x) - self.min.x.max(other.min.x)).max(0.0);
        let h = (self.max.y.min(other.max.y) - self.min.y.max(other.min.y)).max(0.0);
        w * h
    }

    /// Minimum Euclidean distance from `p` to any point of the rectangle
    /// (0 if `p` is inside).
    pub fn min_dist_point(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum Euclidean distance from `p` to any point of the rectangle.
    pub fn max_dist_point(&self, p: &Point) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum Euclidean distance between two rectangles (0 if they
    /// intersect). This is `mindist(e_Ri, e_Rj)` of Lemma 7.
    pub fn min_dist_rect(&self, other: &Rect) -> f64 {
        let dx = (self.min.x - other.max.x)
            .max(0.0)
            .max(other.min.x - self.max.x);
        let dy = (self.min.y - other.max.y)
            .max(0.0)
            .max(other.min.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(1.0, 2.0));
    }

    #[test]
    fn union_and_area() {
        let r1 = Rect::from_point(Point::new(0.0, 0.0));
        let r2 = Rect::from_point(Point::new(2.0, 3.0));
        let u = r1.union(&r2);
        assert_eq!(u.area(), 6.0);
        assert_eq!(u.margin(), 5.0);
        assert_eq!(u.center(), Point::new(1.0, 1.5));
    }

    #[test]
    fn empty_rect_is_union_identity() {
        let e = Rect::empty();
        let r = Rect::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0));
        assert!(e.is_empty());
        assert_eq!(e.union(&r), r);
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.margin(), 0.0);
    }

    #[test]
    fn containment_and_intersection() {
        let big = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let small = Rect::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        let outside = Rect::new(Point::new(20.0, 20.0), Point::new(21.0, 21.0));
        assert!(big.contains_rect(&small));
        assert!(!small.contains_rect(&big));
        assert!(big.intersects(&small));
        assert!(!big.intersects(&outside));
        assert!(big.contains_point(&Point::new(10.0, 10.0)));
        assert!(!big.contains_point(&Point::new(10.1, 10.0)));
    }

    #[test]
    fn intersection_area_cases() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Rect::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let c = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert_eq!(a.intersection_area(&b), 1.0);
        assert_eq!(a.intersection_area(&c), 0.0);
        assert_eq!(a.intersection_area(&a), 4.0);
    }

    #[test]
    fn min_max_dist_point() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        // Point inside.
        assert_eq!(r.min_dist_point(&Point::new(1.0, 1.0)), 0.0);
        // Point to the right.
        assert_eq!(r.min_dist_point(&Point::new(5.0, 1.0)), 3.0);
        // Diagonal.
        assert_eq!(r.min_dist_point(&Point::new(5.0, 6.0)), 5.0);
        // Max dist from corner is the far corner.
        assert_eq!(r.max_dist_point(&Point::new(0.0, 0.0)), (8.0f64).sqrt());
    }

    #[test]
    fn min_dist_rect_cases() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Rect::new(Point::new(4.0, 5.0), Point::new(6.0, 7.0));
        assert_eq!(a.min_dist_rect(&b), 5.0);
        assert_eq!(a.min_dist_rect(&a), 0.0);
        let touching = Rect::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert_eq!(a.min_dist_rect(&touching), 0.0);
    }

    fn arb_point() -> impl Strategy<Value = Point> {
        (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
    }

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (arb_point(), arb_point()).prop_map(|(a, b)| {
            Rect::new(
                Point::new(a.x.min(b.x), a.y.min(b.y)),
                Point::new(a.x.max(b.x), a.y.max(b.y)),
            )
        })
    }

    proptest! {
        /// mindist lower-bounds and maxdist upper-bounds the distance to
        /// every sampled point of the rectangle.
        #[test]
        fn min_max_dist_bracket_sampled_points(r in arb_rect(), p in arb_point(),
                                               tx in 0.0f64..1.0, ty in 0.0f64..1.0) {
            let q = Point::new(
                r.min.x + tx * (r.max.x - r.min.x),
                r.min.y + ty * (r.max.y - r.min.y),
            );
            let d = p.distance(&q);
            prop_assert!(r.min_dist_point(&p) <= d + 1e-9);
            prop_assert!(r.max_dist_point(&p) >= d - 1e-9);
        }

        /// Union contains both inputs; intersection area is symmetric and
        /// bounded by both areas.
        #[test]
        fn union_and_intersection_laws(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
            let i1 = a.intersection_area(&b);
            let i2 = b.intersection_area(&a);
            prop_assert!((i1 - i2).abs() < 1e-9);
            prop_assert!(i1 <= a.area() + 1e-9 && i1 <= b.area() + 1e-9);
        }

        /// Rect-rect mindist lower-bounds point distances across the rects.
        #[test]
        fn rect_mindist_is_lower_bound(a in arb_rect(), b in arb_rect(),
                                       t in 0.0f64..1.0, s in 0.0f64..1.0) {
            let pa = Point::new(a.min.x + t * (a.max.x - a.min.x), a.min.y + s * (a.max.y - a.min.y));
            let pb = Point::new(b.min.x + s * (b.max.x - b.min.x), b.min.y + t * (b.max.y - b.min.y));
            prop_assert!(a.min_dist_rect(&b) <= pa.distance(&pb) + 1e-9);
        }
    }
}
