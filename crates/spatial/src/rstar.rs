//! A from-scratch R\*-tree over 2-D points.
//!
//! Implements the classic R\*-tree of Beckmann, Kriegel, Schneider and
//! Seeger (SIGMOD 1990) — reference \[6\] of the GP-SSN paper — which the
//! paper uses to index POI locations (`I_R`, Section 4.1):
//!
//! * **ChooseSubtree**: minimum overlap enlargement at the level above the
//!   leaves, minimum area enlargement elsewhere (ties broken by area).
//! * **Forced reinsertion**: on first overflow per level per insertion, the
//!   30% of entries farthest from the node center are reinserted.
//! * **R\* split**: axis chosen by minimal margin sum over all candidate
//!   distributions, distribution by minimal overlap (ties by area).
//!
//! The tree is arena-allocated with parent pointers so that the GP-SSN
//! index layer can traverse nodes directly (level-by-level, as Algorithm 2
//! requires) and attach per-node aggregates (keyword signatures, pivot
//! distance bounds) keyed by [`NodeId`].

use crate::geom::{Point, Rect};

/// Identifier of a tree node (index into the arena).
pub type NodeId = u32;

/// Identifier of an indexed item (assigned by the caller).
pub type ItemId = u32;

/// An entry of a tree node.
#[derive(Debug, Clone, Copy)]
pub enum Entry {
    /// A data point in a leaf node.
    Item {
        /// Caller-assigned item id.
        item: ItemId,
        /// Location of the item.
        point: Point,
    },
    /// A child subtree in an internal node.
    Child {
        /// Arena id of the child node.
        node: NodeId,
        /// MBR of everything below the child.
        mbr: Rect,
    },
}

impl Entry {
    /// MBR of the entry (degenerate rect for items).
    #[inline]
    pub fn mbr(&self) -> Rect {
        match *self {
            Entry::Item { point, .. } => Rect::from_point(point),
            Entry::Child { mbr, .. } => mbr,
        }
    }
}

/// A tree node. `level == 0` means leaf.
#[derive(Debug, Clone)]
pub struct Node {
    /// Height above the leaves (0 = leaf).
    pub level: u32,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Entries (items for leaves, children otherwise).
    pub entries: Vec<Entry>,
}

/// R\*-tree over 2-D points.
#[derive(Debug, Clone)]
pub struct RStarTree {
    nodes: Vec<Node>,
    root: NodeId,
    max_entries: usize,
    min_entries: usize,
    len: usize,
}

/// Fraction of entries removed by forced reinsertion (the R\* paper's
/// recommended 30%).
const REINSERT_FRACTION: f64 = 0.3;

/// Resolves a thread-count knob: `0` means "use all available cores".
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Splits `items` into chunks of at most `cap`, redistributing the final
/// remainder so every chunk holds at least `min` items (assumes
/// `min <= cap / 2`, which [`RStarTree::new`] guarantees).
fn balanced_chunks<T: Clone>(items: &[T], cap: usize, min: usize) -> Vec<Vec<T>> {
    if items.is_empty() {
        return Vec::new();
    }
    if items.len() <= cap {
        return vec![items.to_vec()];
    }
    let mut chunks: Vec<Vec<T>> = items.chunks(cap).map(|c| c.to_vec()).collect();
    let last = chunks.len() - 1;
    if chunks[last].len() < min {
        // Steal from the previous (full) chunk.
        let need = min - chunks[last].len();
        let donor_len = chunks[last - 1].len();
        let stolen: Vec<T> = chunks[last - 1].split_off(donor_len - need);
        let mut merged = stolen;
        merged.extend(chunks[last].iter().cloned());
        chunks[last] = merged;
    }
    chunks
}

impl Default for RStarTree {
    fn default() -> Self {
        Self::new(32)
    }
}

impl RStarTree {
    /// Creates an empty tree with node capacity `max_entries` (minimum fill
    /// is 40% of capacity, per the R\* paper).
    ///
    /// # Panics
    /// Panics if `max_entries < 4`.
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R*-tree requires capacity >= 4");
        let min_entries = ((max_entries as f64 * 0.4).floor() as usize).max(2);
        RStarTree {
            nodes: vec![Node {
                level: 0,
                parent: None,
                entries: Vec::new(),
            }],
            root: 0,
            max_entries,
            min_entries,
            len: 0,
        }
    }

    /// Number of indexed items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Total number of nodes in the arena (== pages of the simulated
    /// paged index file).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree height (number of levels; 1 for a single leaf root).
    pub fn height(&self) -> u32 {
        self.nodes[self.root as usize].level + 1
    }

    /// MBR of a node's entries (empty rect for an empty root).
    pub fn node_mbr(&self, id: NodeId) -> Rect {
        let mut mbr = Rect::empty();
        for e in &self.nodes[id as usize].entries {
            mbr = mbr.union(&e.mbr());
        }
        mbr
    }

    /// Inserts an item. Duplicate points are allowed; item ids are the
    /// caller's responsibility.
    pub fn insert(&mut self, item: ItemId, point: Point) {
        let height = self.nodes[self.root as usize].level;
        let mut reinserted = vec![false; height as usize + 1];
        self.insert_entry(Entry::Item { item, point }, 0, &mut reinserted);
        self.len += 1;
    }

    /// Builds a tree from `(item, point)` pairs by repeated insertion.
    pub fn bulk_build(
        max_entries: usize,
        items: impl IntoIterator<Item = (ItemId, Point)>,
    ) -> Self {
        let mut tree = RStarTree::new(max_entries);
        let items: Vec<(ItemId, Point)> = items.into_iter().collect();
        // Reserve the arena from the known item count: at worst every
        // node is minimally filled, so `n / min_entries` leaves plus a
        // thin layer of internals covers the final size.
        tree.nodes
            .reserve(items.len() / tree.min_entries + items.len() / (tree.min_entries * 4) + 2);
        // One reinsertion bitmap reused across all inserts instead of a
        // fresh `Vec<bool>` per item.
        let mut reinserted: Vec<bool> = Vec::new();
        for (item, point) in items {
            let height = tree.nodes[tree.root as usize].level as usize;
            reinserted.clear();
            reinserted.resize(height + 1, false);
            tree.insert_entry(Entry::Item { item, point }, 0, &mut reinserted);
            tree.len += 1;
        }
        tree
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Items whose points fall inside `rect` (boundary inclusive).
    pub fn range_query(&self, rect: &Rect) -> Vec<(ItemId, Point)> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            for e in &self.nodes[id as usize].entries {
                match *e {
                    Entry::Item { item, point } => {
                        if rect.contains_point(&point) {
                            out.push((item, point));
                        }
                    }
                    Entry::Child { node, mbr } => {
                        if rect.intersects(&mbr) {
                            stack.push(node);
                        }
                    }
                }
            }
        }
        out
    }

    /// Items within Euclidean distance `radius` of `center`.
    pub fn within_radius(&self, center: &Point, radius: f64) -> Vec<(ItemId, Point)> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            for e in &self.nodes[id as usize].entries {
                match *e {
                    Entry::Item { item, point } => {
                        if center.distance(&point) <= radius {
                            out.push((item, point));
                        }
                    }
                    Entry::Child { node, mbr } => {
                        if mbr.min_dist_point(center) <= radius {
                            stack.push(node);
                        }
                    }
                }
            }
        }
        out
    }

    /// All items in the tree.
    pub fn items(&self) -> Vec<(ItemId, Point)> {
        self.range_query(&Rect::new(
            Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
            Point::new(f64::INFINITY, f64::INFINITY),
        ))
    }

    /// The `k` nearest items to `center` (ties broken arbitrarily),
    /// sorted by ascending distance. Classic best-first search over
    /// `mindist`.
    // Audited unwraps: `partial_cmp` over mindist/point distances,
    // which are finite for finite input coordinates.
    #[allow(clippy::unwrap_used)]
    pub fn nearest_k(&self, center: &Point, k: usize) -> Vec<(ItemId, Point, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // (dist, is_item, node-or-item, point)
        let mut frontier: Vec<(f64, bool, u32, Point)> =
            vec![(0.0, false, self.root, Point::new(0.0, 0.0))];
        let mut out: Vec<(ItemId, Point, f64)> = Vec::new();
        while let Some(best_idx) = frontier
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
            .map(|(i, _)| i)
        {
            let (d, is_item, id, pt) = frontier.swap_remove(best_idx);
            if out.len() >= k && d > out.last().map_or(f64::INFINITY, |x| x.2) {
                break;
            }
            if is_item {
                out.push((id, pt, d));
                out.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
                out.truncate(k);
                continue;
            }
            for e in &self.nodes[id as usize].entries {
                match *e {
                    Entry::Item { item, point } => {
                        frontier.push((center.distance(&point), true, item, point));
                    }
                    Entry::Child { node, mbr } => {
                        frontier.push((mbr.min_dist_point(center), false, node, pt));
                    }
                }
            }
        }
        out
    }

    /// Removes the item with id `item` located at `point`. Returns `true`
    /// if found. Underfull nodes are condensed: their surviving entries
    /// are reinserted (the classic R-tree `CondenseTree`), and a root
    /// with a single child is shortened.
    pub fn remove(&mut self, item: ItemId, point: Point) -> bool {
        // Locate the leaf holding the item.
        let Some(leaf) = self.find_leaf(self.root, item, &point) else {
            return false;
        };
        let node = &mut self.nodes[leaf as usize];
        let before = node.entries.len();
        node.entries
            .retain(|e| !matches!(*e, Entry::Item { item: i, .. } if i == item));
        debug_assert_eq!(node.entries.len() + 1, before);
        self.len -= 1;
        self.update_mbrs_upward(leaf);
        self.condense(leaf);
        // Shorten the root while it is an internal node with one child.
        while self.nodes[self.root as usize].level > 0
            && self.nodes[self.root as usize].entries.len() == 1
        {
            if let Entry::Child { node, .. } = self.nodes[self.root as usize].entries[0] {
                self.nodes[node as usize].parent = None;
                self.root = node;
            }
        }
        true
    }

    fn find_leaf(&self, node: NodeId, item: ItemId, point: &Point) -> Option<NodeId> {
        for e in &self.nodes[node as usize].entries {
            match *e {
                Entry::Item { item: i, .. } if i == item => return Some(node),
                Entry::Item { .. } => {}
                Entry::Child { node: c, mbr } => {
                    if mbr.contains_point(point) {
                        if let Some(found) = self.find_leaf(c, item, point) {
                            return Some(found);
                        }
                    }
                }
            }
        }
        None
    }

    /// Walks from `node` to the root, dissolving underfull non-root nodes
    /// and reinserting their entries at the appropriate level.
    fn condense(&mut self, mut node: NodeId) {
        let mut orphans: Vec<(Entry, u32)> = Vec::new();
        while let Some(parent) = self.nodes[node as usize].parent {
            if self.nodes[node as usize].entries.len() < self.min_entries {
                let level = self.nodes[node as usize].level;
                // Detach from the parent and queue the survivors.
                self.nodes[parent as usize]
                    .entries
                    .retain(|e| !matches!(*e, Entry::Child { node: c, .. } if c == node));
                for e in std::mem::take(&mut self.nodes[node as usize].entries) {
                    orphans.push((e, level));
                }
                self.nodes[node as usize].parent = None; // dead node stays in the arena
                self.update_mbrs_upward(parent);
                node = parent;
            } else {
                self.update_mbrs_upward(node);
                node = parent;
            }
        }
        // Reinsert orphans (children keep their subtree level).
        for (entry, level) in orphans {
            let height = self.nodes[self.root as usize].level;
            if level > height {
                // Degenerate: tree shrank below the orphan's level; push
                // items individually.
                self.reinsert_subtree_items(entry);
                continue;
            }
            let mut reinserted = vec![true; height as usize + 1]; // no forced reinsert here
            self.insert_entry(entry, level, &mut reinserted);
        }
    }

    fn reinsert_subtree_items(&mut self, entry: Entry) {
        match entry {
            Entry::Item { item, point } => {
                let height = self.nodes[self.root as usize].level;
                let mut reinserted = vec![true; height as usize + 1];
                self.insert_entry(Entry::Item { item, point }, 0, &mut reinserted);
            }
            Entry::Child { node, .. } => {
                for e in std::mem::take(&mut self.nodes[node as usize].entries) {
                    self.reinsert_subtree_items(e);
                }
            }
        }
    }

    /// Sort-Tile-Recursive bulk loading: packs sorted slabs into full
    /// nodes bottom-up. Much faster to build than repeated insertion and
    /// produces near-perfectly filled nodes; remainders are redistributed
    /// so every non-root node meets the minimum fill.
    ///
    /// Sequential convenience wrapper around
    /// [`RStarTree::str_bulk_load_with_threads`] (which yields the same
    /// tree for every thread count).
    pub fn str_bulk_load(
        max_entries: usize,
        items: impl IntoIterator<Item = (ItemId, Point)>,
    ) -> Self {
        Self::str_bulk_load_with_threads(max_entries, items, 1)
    }

    /// STR bulk loading with the per-slab y-sorts fanned out over
    /// `threads` scoped worker threads (`0` = all available cores).
    ///
    /// The resulting tree is **bit-identical for every thread count**:
    /// the slab boundaries are fixed by the sequential x-sort before any
    /// worker starts, each slab is sorted in full by exactly one worker
    /// with the same stable comparator, and nodes are packed from the
    /// slabs in slab order after all workers have joined.
    // Audited unwraps: `partial_cmp` over finite input coordinates.
    #[allow(clippy::unwrap_used)]
    pub fn str_bulk_load_with_threads(
        max_entries: usize,
        items: impl IntoIterator<Item = (ItemId, Point)>,
        threads: usize,
    ) -> Self {
        let mut tree = RStarTree::new(max_entries);
        let mut pts: Vec<(ItemId, Point)> = items.into_iter().collect();
        if pts.is_empty() {
            return tree;
        }
        tree.len = pts.len();
        let cap = max_entries;
        // Leaf level: STR tiling.
        pts.sort_by(|a, b| a.1.x.partial_cmp(&b.1.x).unwrap());
        let leaf_count = pts.len().div_ceil(cap);
        let slabs = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slab = pts.len().div_ceil(slabs).max(1);
        let workers = resolve_threads(threads).min(pts.len().div_ceil(per_slab));
        if workers > 1 {
            // Deal the slab slices round-robin onto the workers; each
            // slab is sorted wholly by one worker, so the assignment
            // cannot affect the result.
            let mut buckets: Vec<Vec<&mut [(ItemId, Point)]>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, slab) in pts.chunks_mut(per_slab).enumerate() {
                buckets[i % workers].push(slab);
            }
            std::thread::scope(|s| {
                for bucket in buckets {
                    s.spawn(move || {
                        for slab in bucket {
                            slab.sort_by(|a, b| a.1.y.partial_cmp(&b.1.y).unwrap());
                        }
                    });
                }
            });
        } else {
            for slab in pts.chunks_mut(per_slab) {
                slab.sort_by(|a, b| a.1.y.partial_cmp(&b.1.y).unwrap());
            }
        }
        // Reserve the arena up front: exact leaf count from the slab
        // layout, then one `div_ceil(cap)` layer at a time up to the root.
        let exact_leaves: usize = pts.chunks(per_slab).map(|s| s.len().div_ceil(cap)).sum();
        let mut reserve = 0usize;
        let mut width = exact_leaves;
        while width > 1 {
            reserve += width;
            width = width.div_ceil(cap);
        }
        tree.nodes.clear();
        tree.nodes.reserve(reserve + 1);
        let mut level_nodes: Vec<NodeId> = Vec::with_capacity(exact_leaves);
        for slab in pts.chunks(per_slab) {
            for chunk in balanced_chunks(slab, cap, tree.min_entries) {
                let id = tree.nodes.len() as NodeId;
                tree.nodes.push(Node {
                    level: 0,
                    parent: None,
                    entries: chunk
                        .iter()
                        .map(|&(item, point)| Entry::Item { item, point })
                        .collect(),
                });
                level_nodes.push(id);
            }
        }
        // Pack upper levels until a single root remains.
        let mut level = 0u32;
        while level_nodes.len() > 1 {
            level += 1;
            let mut next: Vec<NodeId> = Vec::with_capacity(level_nodes.len().div_ceil(cap));
            let ids: Vec<NodeId> = std::mem::take(&mut level_nodes);
            for chunk in balanced_chunks(&ids, cap, tree.min_entries) {
                let id = tree.nodes.len() as NodeId;
                let entries: Vec<Entry> = chunk
                    .iter()
                    .map(|&c| Entry::Child {
                        node: c,
                        mbr: tree.node_mbr(c),
                    })
                    .collect();
                tree.nodes.push(Node {
                    level,
                    parent: None,
                    entries,
                });
                for &c in chunk.iter() {
                    tree.nodes[c as usize].parent = Some(id);
                }
                next.push(id);
            }
            level_nodes = next;
        }
        tree.root = level_nodes[0];
        tree
    }

    // ------------------------------------------------------------------
    // Insertion machinery
    // ------------------------------------------------------------------

    fn insert_entry(&mut self, entry: Entry, target_level: u32, reinserted: &mut Vec<bool>) {
        let node = self.choose_subtree(&entry.mbr(), target_level);
        if let Entry::Child { node: child, .. } = entry {
            self.nodes[child as usize].parent = Some(node);
        }
        self.nodes[node as usize].entries.push(entry);
        self.update_mbrs_upward(node);
        self.overflow_treatment(node, reinserted);
    }

    /// Descends from the root to a node at `target_level` following the R\*
    /// ChooseSubtree criteria.
    // Audited expect: internal nodes always hold at least one entry
    // (the tree never stores empty internal nodes).
    #[allow(clippy::expect_used)]
    fn choose_subtree(&self, mbr: &Rect, target_level: u32) -> NodeId {
        let mut current = self.root;
        while self.nodes[current as usize].level > target_level {
            let node = &self.nodes[current as usize];
            let children_are_leaves = node.level == 1;
            let mut best: Option<(usize, f64, f64, f64)> = None; // (idx, overlap_inc, area_inc, area)
            for (i, e) in node.entries.iter().enumerate() {
                let child_mbr = e.mbr();
                let enlarged = child_mbr.union(mbr);
                let area = child_mbr.area();
                let area_inc = enlarged.area() - area;
                let overlap_inc = if children_are_leaves {
                    // Overlap enlargement w.r.t. the sibling entries.
                    let mut before = 0.0;
                    let mut after = 0.0;
                    for (j, s) in node.entries.iter().enumerate() {
                        if i == j {
                            continue;
                        }
                        let smbr = s.mbr();
                        before += child_mbr.intersection_area(&smbr);
                        after += enlarged.intersection_area(&smbr);
                    }
                    after - before
                } else {
                    0.0
                };
                let cand = (i, overlap_inc, area_inc, area);
                best = Some(match best {
                    None => cand,
                    Some(b) => {
                        let better = (cand.1, cand.2, cand.3) < (b.1, b.2, b.3);
                        if better {
                            cand
                        } else {
                            b
                        }
                    }
                });
            }
            let idx = best.expect("internal node must have entries").0;
            current = match self.nodes[current as usize].entries[idx] {
                Entry::Child { node, .. } => node,
                Entry::Item { .. } => unreachable!("internal node holds child entries"),
            };
        }
        current
    }

    fn overflow_treatment(&mut self, mut node: NodeId, reinserted: &mut Vec<bool>) {
        loop {
            if self.nodes[node as usize].entries.len() <= self.max_entries {
                return;
            }
            let level = self.nodes[node as usize].level as usize;
            let is_root = node == self.root;
            if !is_root && level < reinserted.len() && !reinserted[level] {
                reinserted[level] = true;
                self.forced_reinsert(node, reinserted);
                return;
            }
            let parent = self.split(node);
            match parent {
                Some(p) => node = p,
                None => return, // root was split; new root cannot overflow
            }
        }
    }

    /// Removes the `REINSERT_FRACTION` entries farthest from the node
    /// center and reinserts them at the same level.
    // Audited unwrap: `partial_cmp` over squared center distances,
    // finite for finite coordinates.
    #[allow(clippy::unwrap_used)]
    fn forced_reinsert(&mut self, node: NodeId, reinserted: &mut Vec<bool>) {
        let level = self.nodes[node as usize].level;
        let center = self.node_mbr(node).center();
        let mut order: Vec<usize> = (0..self.nodes[node as usize].entries.len()).collect();
        order.sort_by(|&a, &b| {
            let da = self.nodes[node as usize].entries[a]
                .mbr()
                .center()
                .distance_sq(&center);
            let db = self.nodes[node as usize].entries[b]
                .mbr()
                .center()
                .distance_sq(&center);
            db.partial_cmp(&da).unwrap()
        });
        let p = ((self.nodes[node as usize].entries.len() as f64 * REINSERT_FRACTION).ceil()
            as usize)
            .max(1);
        let to_remove: Vec<usize> = order[..p].to_vec();
        let mut removed = Vec::with_capacity(p);
        let mut keep = Vec::with_capacity(self.nodes[node as usize].entries.len() - p);
        for (i, e) in self.nodes[node as usize].entries.drain(..).enumerate() {
            if to_remove.contains(&i) {
                removed.push(e);
            } else {
                keep.push(e);
            }
        }
        self.nodes[node as usize].entries = keep;
        self.update_mbrs_upward(node);
        // Close reinsert: nearest first (we collected farthest-first).
        for e in removed.into_iter().rev() {
            self.insert_entry(e, level, reinserted);
        }
    }

    /// Splits `node`, attaching the new sibling to the parent (creating a
    /// new root if needed). Returns the parent id if the caller should
    /// continue overflow checking there.
    fn split(&mut self, node: NodeId) -> Option<NodeId> {
        let (keep, moved) = self.rstar_distribution(node);
        let level = self.nodes[node as usize].level;
        let sibling_id = self.nodes.len() as NodeId;
        self.nodes.push(Node {
            level,
            parent: None,
            entries: moved,
        });
        self.nodes[node as usize].entries = keep;
        // Fix parent pointers of moved children.
        let moved_children: Vec<NodeId> = self.nodes[sibling_id as usize]
            .entries
            .iter()
            .filter_map(|e| match *e {
                Entry::Child { node, .. } => Some(node),
                Entry::Item { .. } => None,
            })
            .collect();
        for c in moved_children {
            self.nodes[c as usize].parent = Some(sibling_id);
        }
        let sibling_mbr = self.node_mbr(sibling_id);
        match self.nodes[node as usize].parent {
            Some(parent) => {
                self.nodes[sibling_id as usize].parent = Some(parent);
                self.nodes[parent as usize].entries.push(Entry::Child {
                    node: sibling_id,
                    mbr: sibling_mbr,
                });
                self.update_mbrs_upward(node);
                Some(parent)
            }
            None => {
                // Grow the tree: new root above the old one.
                let new_root = self.nodes.len() as NodeId;
                let node_mbr = self.node_mbr(node);
                self.nodes.push(Node {
                    level: level + 1,
                    parent: None,
                    entries: vec![
                        Entry::Child {
                            node,
                            mbr: node_mbr,
                        },
                        Entry::Child {
                            node: sibling_id,
                            mbr: sibling_mbr,
                        },
                    ],
                });
                self.nodes[node as usize].parent = Some(new_root);
                self.nodes[sibling_id as usize].parent = Some(new_root);
                self.root = new_root;
                None
            }
        }
    }

    /// R\* split: choose axis by minimum margin sum, then distribution by
    /// minimum overlap (ties by area). Returns `(keep, moved)`.
    // Audited unwrap/expects: sort keys are finite, and an overflowing
    // node always yields at least one candidate distribution per axis.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn rstar_distribution(&mut self, node: NodeId) -> (Vec<Entry>, Vec<Entry>) {
        let entries = std::mem::take(&mut self.nodes[node as usize].entries);
        let m = self.min_entries;
        let total = entries.len();
        debug_assert!(total > self.max_entries);

        // For each axis produce a sort order; evaluate margin sums.
        let sort_key = |e: &Entry, axis: usize, upper: bool| -> f64 {
            let r = e.mbr();
            match (axis, upper) {
                (0, false) => r.min.x,
                (0, true) => r.max.x,
                (1, false) => r.min.y,
                (1, true) => r.max.y,
                _ => unreachable!(),
            }
        };

        // One scratch order re-sorted per candidate axis and swapped into
        // `best_sorted` when it wins, with the prefix/suffix MBR arrays
        // hoisted out of the loop — no per-candidate clone or realloc.
        let mut scratch: Vec<Entry> = Vec::with_capacity(total);
        let mut best_sorted: Vec<Entry> = Vec::with_capacity(total);
        let mut prefix = vec![Rect::empty(); total + 1];
        let mut suffix = vec![Rect::empty(); total + 1];
        // (margin_sum, overlap, area, split_at)
        let mut best: Option<(f64, f64, f64, usize)> = None;
        for axis in 0..2usize {
            for upper in [false, true] {
                scratch.clone_from(&entries);
                scratch.sort_by(|a, b| {
                    sort_key(a, axis, upper)
                        .partial_cmp(&sort_key(b, axis, upper))
                        .unwrap()
                });
                // Prefix/suffix MBRs for O(k) evaluation.
                prefix[0] = Rect::empty();
                for i in 0..total {
                    prefix[i + 1] = prefix[i].union(&scratch[i].mbr());
                }
                suffix[total] = Rect::empty();
                for i in (0..total).rev() {
                    suffix[i] = suffix[i + 1].union(&scratch[i].mbr());
                }
                let mut margin_sum = 0.0;
                let mut axis_best: Option<(f64, f64, usize)> = None;
                for k in m..=(total - m) {
                    let r1 = prefix[k];
                    let r2 = suffix[k];
                    margin_sum += r1.margin() + r2.margin();
                    let overlap = r1.intersection_area(&r2);
                    let area = r1.area() + r2.area();
                    let cand = (overlap, area, k);
                    axis_best = Some(match axis_best {
                        None => cand,
                        Some(b) if (cand.0, cand.1) < (b.0, b.1) => cand,
                        Some(b) => b,
                    });
                }
                let (overlap, area, k) = axis_best.expect("at least one distribution");
                // Smaller margin sum wins the axis; within the winning
                // axis, `axis_best` already minimized overlap then area.
                let replace = match &best {
                    None => true,
                    Some((bm, bo, ba, _)) => (margin_sum, overlap, area) < (*bm, *bo, *ba),
                };
                if replace {
                    best = Some((margin_sum, overlap, area, k));
                    std::mem::swap(&mut best_sorted, &mut scratch);
                }
            }
        }
        let (_, _, _, k) = best.expect("split candidates exist");
        let mut keep = best_sorted;
        let moved = keep.split_off(k);
        (keep, moved)
    }

    /// Recomputes the `Child` MBR entries on the path from `node` to root.
    fn update_mbrs_upward(&mut self, mut node: NodeId) {
        while let Some(parent) = self.nodes[node as usize].parent {
            let mbr = self.node_mbr(node);
            for e in &mut self.nodes[parent as usize].entries {
                if let Entry::Child { node: c, mbr: em } = e {
                    if *c == node {
                        *em = mbr;
                        break;
                    }
                }
            }
            node = parent;
        }
    }

    // ------------------------------------------------------------------
    // Structural validation (used by tests and debug assertions)
    // ------------------------------------------------------------------

    /// Checks all structural invariants; panics with a description on the
    /// first violation. Intended for tests.
    pub fn validate(&self) {
        let root = &self.nodes[self.root as usize];
        assert!(root.parent.is_none(), "root has a parent");
        let mut count = 0usize;
        let mut stack = vec![self.root];
        let mut reachable = vec![false; self.nodes.len()];
        while let Some(id) = stack.pop() {
            reachable[id as usize] = true;
            let node = &self.nodes[id as usize];
            if id != self.root {
                assert!(
                    node.entries.len() >= self.min_entries,
                    "underfull non-root node: {} < {}",
                    node.entries.len(),
                    self.min_entries
                );
            }
            assert!(
                node.entries.len() <= self.max_entries,
                "overfull node: {} > {}",
                node.entries.len(),
                self.max_entries
            );
            for e in &node.entries {
                match *e {
                    Entry::Item { .. } => {
                        assert_eq!(node.level, 0, "item entry in internal node");
                        count += 1;
                    }
                    Entry::Child { node: c, mbr } => {
                        assert!(node.level > 0, "child entry in leaf");
                        let child = &self.nodes[c as usize];
                        assert_eq!(child.level + 1, node.level, "level mismatch");
                        assert_eq!(child.parent, Some(id), "parent pointer mismatch");
                        let actual = self.node_mbr(c);
                        assert!(
                            (mbr.min.x - actual.min.x).abs() < 1e-9
                                && (mbr.min.y - actual.min.y).abs() < 1e-9
                                && (mbr.max.x - actual.max.x).abs() < 1e-9
                                && (mbr.max.y - actual.max.y).abs() < 1e-9,
                            "stale MBR for child {c}"
                        );
                        stack.push(c);
                    }
                }
            }
        }
        assert_eq!(count, self.len, "item count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn grid_tree(n: usize) -> (RStarTree, Vec<Point>) {
        let mut tree = RStarTree::new(8);
        let mut pts = Vec::new();
        for i in 0..n {
            let p = Point::new((i % 10) as f64, (i / 10) as f64);
            tree.insert(i as ItemId, p);
            pts.push(p);
        }
        (tree, pts)
    }

    #[test]
    fn empty_tree() {
        let t = RStarTree::new(8);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.items().is_empty());
        t.validate();
    }

    #[test]
    fn insert_and_retrieve_all() {
        let (tree, _) = grid_tree(100);
        assert_eq!(tree.len(), 100);
        let mut ids: Vec<ItemId> = tree.items().into_iter().map(|(i, _)| i).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
        tree.validate();
    }

    #[test]
    fn tree_grows_in_height() {
        let (tree, _) = grid_tree(100);
        assert!(tree.height() >= 2, "100 points at capacity 8 must split");
    }

    #[test]
    fn range_query_matches_filter() {
        let (tree, pts) = grid_tree(100);
        let rect = Rect::new(Point::new(2.0, 3.0), Point::new(5.0, 6.0));
        let mut got: Vec<ItemId> = tree
            .range_query(&rect)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<ItemId> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains_point(p))
            .map(|(i, _)| i as ItemId)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn radius_query_matches_filter() {
        let (tree, pts) = grid_tree(100);
        let c = Point::new(4.5, 4.5);
        let r = 2.3;
        let mut got: Vec<ItemId> = tree
            .within_radius(&c, r)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<ItemId> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| c.distance(p) <= r)
            .map(|(i, _)| i as ItemId)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn duplicate_points_are_kept() {
        let mut tree = RStarTree::new(4);
        for i in 0..20 {
            tree.insert(i, Point::new(1.0, 1.0));
        }
        assert_eq!(tree.len(), 20);
        assert_eq!(tree.within_radius(&Point::new(1.0, 1.0), 0.0).len(), 20);
        tree.validate();
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_tiny_capacity() {
        RStarTree::new(3);
    }

    #[test]
    fn bulk_build_equals_inserts() {
        let items: Vec<(ItemId, Point)> = (0..50)
            .map(|i| (i, Point::new(i as f64, (i * 7 % 13) as f64)))
            .collect();
        let tree = RStarTree::bulk_build(8, items.clone());
        assert_eq!(tree.len(), 50);
        tree.validate();
    }

    #[test]
    fn nearest_k_matches_linear_scan() {
        let (tree, pts) = grid_tree(100);
        let c = Point::new(3.7, 6.2);
        for k in [1usize, 5, 17] {
            let got = tree.nearest_k(&c, k);
            assert_eq!(got.len(), k);
            let mut expected: Vec<(u32, f64)> = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u32, c.distance(p)))
                .collect();
            expected.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            for (i, (_, _, d)) in got.iter().enumerate() {
                assert!((d - expected[i].1).abs() < 1e-9, "k={k} rank {i}");
            }
        }
    }

    #[test]
    fn nearest_k_edge_cases() {
        let (tree, _) = grid_tree(10);
        assert!(tree.nearest_k(&Point::new(0.0, 0.0), 0).is_empty());
        assert_eq!(tree.nearest_k(&Point::new(0.0, 0.0), 99).len(), 10);
        let empty = RStarTree::new(8);
        assert!(empty.nearest_k(&Point::new(0.0, 0.0), 3).is_empty());
    }

    #[test]
    fn remove_deletes_and_keeps_invariants() {
        let (mut tree, pts) = grid_tree(100);
        // Remove half the items in a scattered order.
        for i in (0..100).step_by(2) {
            assert!(tree.remove(i as ItemId, pts[i]), "item {i} not found");
        }
        assert_eq!(tree.len(), 50);
        tree.validate();
        let mut ids: Vec<ItemId> = tree.items().into_iter().map(|(i, _)| i).collect();
        ids.sort_unstable();
        let expected: Vec<ItemId> = (0..100).filter(|i| i % 2 == 1).collect();
        assert_eq!(ids, expected);
        // Removing a missing item is a no-op.
        assert!(!tree.remove(0, pts[0]));
        assert_eq!(tree.len(), 50);
    }

    #[test]
    fn remove_everything_leaves_empty_tree() {
        let (mut tree, pts) = grid_tree(40);
        for (i, p) in pts.iter().enumerate() {
            assert!(tree.remove(i as ItemId, *p));
        }
        assert!(tree.is_empty());
        assert!(tree.items().is_empty());
    }

    #[test]
    fn str_bulk_load_is_valid_and_complete() {
        let pts = (0..500).map(|i| {
            (
                i as ItemId,
                Point::new((i * 37 % 101) as f64, (i * 61 % 97) as f64),
            )
        });
        let tree = RStarTree::str_bulk_load(16, pts);
        assert_eq!(tree.len(), 500);
        tree.validate();
        let mut ids: Vec<ItemId> = tree.items().into_iter().map(|(i, _)| i).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn str_bulk_load_queries_match_insert_build() {
        let items: Vec<(ItemId, Point)> = (0..300)
            .map(|i| (i, Point::new((i * 17 % 89) as f64, (i * 23 % 71) as f64)))
            .collect();
        let str_tree = RStarTree::str_bulk_load(16, items.iter().copied());
        let ins_tree = RStarTree::bulk_build(16, items.iter().copied());
        let rect = Rect::new(Point::new(10.0, 10.0), Point::new(40.0, 40.0));
        let mut a: Vec<ItemId> = str_tree
            .range_query(&rect)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        let mut b: Vec<ItemId> = ins_tree
            .range_query(&rect)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn str_bulk_load_is_thread_count_invariant() {
        let items: Vec<(ItemId, Point)> = (0..700)
            .map(|i| (i, Point::new((i * 37 % 211) as f64, (i * 53 % 193) as f64)))
            .collect();
        let base = RStarTree::str_bulk_load_with_threads(12, items.iter().copied(), 1);
        base.validate();
        for threads in [2usize, 8, 0] {
            let t = RStarTree::str_bulk_load_with_threads(12, items.iter().copied(), threads);
            assert_eq!(
                format!("{base:?}"),
                format!("{t:?}"),
                "STR tree differs at {threads} threads"
            );
        }
    }

    #[test]
    fn str_bulk_load_empty_and_tiny() {
        let tree = RStarTree::str_bulk_load(8, std::iter::empty());
        assert!(tree.is_empty());
        tree.validate();
        let tiny = RStarTree::str_bulk_load(8, [(0, Point::new(1.0, 2.0))]);
        assert_eq!(tiny.len(), 1);
        tiny.validate();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random interleavings of inserts and removes keep the tree
        /// consistent with a set model.
        #[test]
        fn insert_remove_matches_model(seed in 0u64..200, n in 1usize..120) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tree = RStarTree::new(6);
            let mut model: Vec<(ItemId, Point)> = Vec::new();
            let mut next_id = 0u32;
            for _ in 0..n {
                if model.is_empty() || rng.gen_bool(0.65) {
                    let p = Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0));
                    tree.insert(next_id, p);
                    model.push((next_id, p));
                    next_id += 1;
                } else {
                    let idx = rng.gen_range(0..model.len());
                    let (id, p) = model.swap_remove(idx);
                    prop_assert!(tree.remove(id, p));
                }
            }
            tree.validate();
            let mut got: Vec<ItemId> = tree.items().into_iter().map(|(i, _)| i).collect();
            got.sort_unstable();
            let mut expected: Vec<ItemId> = model.iter().map(|&(i, _)| i).collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }

        /// STR-built and insert-built trees answer identical range, exact
        /// point, and ball (within-radius) queries on random point sets.
        #[test]
        fn str_matches_insert_build_on_queries(
            seed in 0u64..200,
            n in 1usize..300,
            cap in 4usize..24,
            threads in 0usize..4,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let items: Vec<(ItemId, Point)> = (0..n as u32)
                .map(|i| (i, Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0))))
                .collect();
            let str_tree = RStarTree::str_bulk_load_with_threads(cap, items.iter().copied(), threads);
            let ins_tree = RStarTree::bulk_build(cap, items.iter().copied());
            str_tree.validate();
            let sorted_ids = |v: Vec<(ItemId, Point)>| {
                let mut ids: Vec<ItemId> = v.into_iter().map(|(i, _)| i).collect();
                ids.sort_unstable();
                ids
            };
            // Range query.
            let a = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let b = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let rect = Rect::new(
                Point::new(a.x.min(b.x), a.y.min(b.y)),
                Point::new(a.x.max(b.x), a.y.max(b.y)),
            );
            prop_assert_eq!(
                sorted_ids(str_tree.range_query(&rect)),
                sorted_ids(ins_tree.range_query(&rect))
            );
            // Exact point query (degenerate rect on an indexed point).
            let probe = items[rng.gen_range(0..items.len())].1;
            let point_rect = Rect::from_point(probe);
            prop_assert_eq!(
                sorted_ids(str_tree.range_query(&point_rect)),
                sorted_ids(ins_tree.range_query(&point_rect))
            );
            // Ball query.
            let c = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let r = rng.gen_range(0.0..60.0);
            prop_assert_eq!(
                sorted_ids(str_tree.within_radius(&c, r)),
                sorted_ids(ins_tree.within_radius(&c, r))
            );
        }

        /// STR bulk load: invariants + retrievability on random sets.
        #[test]
        fn str_invariants_on_random_points(seed in 0u64..200, n in 0usize..400, cap in 4usize..24) {
            let mut rng = StdRng::seed_from_u64(seed);
            let items: Vec<(ItemId, Point)> = (0..n as u32)
                .map(|i| (i, Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0))))
                .collect();
            let tree = RStarTree::str_bulk_load(cap, items);
            tree.validate();
            prop_assert_eq!(tree.len(), n);
        }

        /// Structural invariants and full retrievability hold for random
        /// point sets and node capacities.
        #[test]
        fn invariants_on_random_points(seed in 0u64..500, n in 0usize..400, cap in 4usize..24) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tree = RStarTree::new(cap);
            let mut pts = Vec::new();
            for i in 0..n {
                let p = Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
                tree.insert(i as ItemId, p);
                pts.push(p);
            }
            tree.validate();
            let mut ids: Vec<ItemId> = tree.items().into_iter().map(|(i, _)| i).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..n as u32).collect::<Vec<_>>());
        }

        /// Range queries agree with linear scan on random data.
        #[test]
        fn range_query_agrees_with_scan(seed in 0u64..500, n in 1usize..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tree = RStarTree::new(8);
            let mut pts = Vec::new();
            for i in 0..n {
                let p = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
                tree.insert(i as ItemId, p);
                pts.push(p);
            }
            let a = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let b = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let rect = Rect::new(
                Point::new(a.x.min(b.x), a.y.min(b.y)),
                Point::new(a.x.max(b.x), a.y.max(b.y)),
            );
            let mut got: Vec<ItemId> = tree.range_query(&rect).into_iter().map(|(i, _)| i).collect();
            got.sort_unstable();
            let mut expected: Vec<ItemId> = pts.iter().enumerate()
                .filter(|(_, p)| rect.contains_point(p))
                .map(|(i, _)| i as ItemId)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}
