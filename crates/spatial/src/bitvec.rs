//! Hashed keyword signatures.
//!
//! The paper (Section 4.1) hashes each keyword of `sup_K` / `sub_K` into a
//! position of a bit vector (`o_i.V_sup`, `o_i.V_sub`) to save space, and
//! bit-ORs vectors up the road-network index. A signature answers
//! "possibly contains keyword `k`" with one-sided error: a clear bit
//! guarantees absence (safe for the *upper-bound* matching-score pruning),
//! while a set bit may be a hash collision (safe because it only weakens
//! pruning, never correctness).

/// Number of 64-bit words in a signature. 128 bits keeps collision rates
/// negligible for the keyword vocabularies in the paper's workloads while
/// staying two cache words wide.
const WORDS: usize = 2;

/// Bits per signature.
pub const SIGNATURE_BITS: usize = WORDS * 64;

/// A fixed-width hashed keyword set signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeywordSignature {
    bits: [u64; WORDS],
}

/// Bit position of keyword `k`. Keywords below the signature width map to
/// their own bit (exact, collision-free signatures for the small topic
/// vocabularies GP-SSN uses); larger ids fall back to a SplitMix64 hash.
#[inline]
fn keyword_bit(k: u32) -> usize {
    if (k as usize) < SIGNATURE_BITS {
        return k as usize;
    }
    let mut z = (k as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % SIGNATURE_BITS as u64) as usize
}

impl KeywordSignature {
    /// The empty signature (no keywords).
    pub const fn empty() -> Self {
        KeywordSignature { bits: [0; WORDS] }
    }

    /// Signature of a single keyword.
    pub fn from_keyword(k: u32) -> Self {
        let mut s = Self::empty();
        s.insert(k);
        s
    }

    /// Signature of a keyword set.
    pub fn from_keywords(ks: impl IntoIterator<Item = u32>) -> Self {
        let mut s = Self::empty();
        for k in ks {
            s.insert(k);
        }
        s
    }

    /// Adds a keyword.
    #[inline]
    pub fn insert(&mut self, k: u32) {
        let bit = keyword_bit(k);
        self.bits[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Whether the signature *possibly* contains `k` (false positives
    /// possible, false negatives impossible).
    #[inline]
    pub fn possibly_contains(&self, k: u32) -> bool {
        let bit = keyword_bit(k);
        self.bits[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Bit-OR union (aggregation up the index).
    #[inline]
    pub fn union(&self, other: &KeywordSignature) -> KeywordSignature {
        let mut out = *self;
        out.union_in_place(other);
        out
    }

    /// In-place bit-OR union.
    #[inline]
    pub fn union_in_place(&mut self, other: &KeywordSignature) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
    }

    /// Whether every set bit of `self` is set in `other` (signature-level
    /// subset test).
    pub fn is_subset_of(&self, other: &KeywordSignature) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether no keyword was inserted (all bits clear).
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of set bits (diagnostic).
    pub fn popcount(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_contains_nothing() {
        let s = KeywordSignature::empty();
        assert!(s.is_empty());
        for k in 0..100 {
            assert!(!s.possibly_contains(k));
        }
    }

    #[test]
    fn inserted_keywords_are_found() {
        let s = KeywordSignature::from_keywords([1, 5, 42]);
        assert!(s.possibly_contains(1));
        assert!(s.possibly_contains(5));
        assert!(s.possibly_contains(42));
    }

    #[test]
    fn union_contains_both_sides() {
        let a = KeywordSignature::from_keywords([1, 2]);
        let b = KeywordSignature::from_keywords([3, 4]);
        let u = a.union(&b);
        for k in 1..=4 {
            assert!(u.possibly_contains(k));
        }
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
    }

    #[test]
    fn subset_relation() {
        let a = KeywordSignature::from_keywords([1, 2]);
        let b = KeywordSignature::from_keywords([1, 2, 3]);
        assert!(a.is_subset_of(&b));
        // b ⊄ a unless keyword 3 collides with 1 or 2 (it does not for
        // this width; this pins the hash behaviour).
        assert!(!b.is_subset_of(&a));
    }

    #[test]
    fn small_vocabulary_is_collision_free() {
        // Keywords below the signature width get dedicated bits, so the
        // small topic vocabularies GP-SSN uses are exactly represented.
        let mut seen = std::collections::HashSet::new();
        for k in 0..SIGNATURE_BITS as u32 {
            seen.insert(super::keyword_bit(k));
        }
        assert_eq!(seen.len(), SIGNATURE_BITS);
        // Signatures over a small vocabulary are exact: no false positives.
        let s = KeywordSignature::from_keywords([1, 2, 3]);
        assert!(!s.possibly_contains(0));
        assert!(!s.possibly_contains(4));
    }

    proptest! {
        /// No false negatives, ever.
        #[test]
        fn no_false_negatives(ks in proptest::collection::vec(0u32..10_000, 0..64)) {
            let s = KeywordSignature::from_keywords(ks.iter().copied());
            for &k in &ks {
                prop_assert!(s.possibly_contains(k));
            }
        }

        /// Union is commutative and idempotent.
        #[test]
        fn union_laws(a in proptest::collection::vec(0u32..1000, 0..20),
                      b in proptest::collection::vec(0u32..1000, 0..20)) {
            let sa = KeywordSignature::from_keywords(a.iter().copied());
            let sb = KeywordSignature::from_keywords(b.iter().copied());
            prop_assert_eq!(sa.union(&sb), sb.union(&sa));
            prop_assert_eq!(sa.union(&sa), sa);
        }
    }
}
