//! Pruned landmark labeling (2-hop labels) for exact hop distances.
//!
//! Akiba, Iwata, Yoshida (SIGMOD 2013): process vertices in importance
//! order (here: degree-descending); BFS from each, *pruning* a visit when
//! the labels built so far already certify a distance no longer than the
//! BFS distance; record `(landmark, dist)` in every settled vertex's
//! label. Queries then take `min over common landmarks of d_a + d_b` —
//! exact, typically over a handful of label entries.
//!
//! In GP-SSN this is an optional upgrade of the social-distance rule
//! (Lemma 4): the pivot scheme gives a lower bound, hop labels give the
//! exact `dist_SN`, so pruning fires exactly when it should. The paper's
//! pivot design remains the default; the labeling is an ablatable
//! alternative (see DESIGN.md).

use crate::csr::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Sentinel for disconnected pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// A 2-hop labeling of an unweighted graph.
#[derive(Debug, Clone)]
pub struct HopLabels {
    /// Per vertex: sorted `(landmark, hops)` entries.
    labels: Vec<Vec<(NodeId, u32)>>,
}

impl HopLabels {
    /// Builds the labeling (exact for every pair).
    pub fn build(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));

        let mut labels: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); n];
        let mut dist = vec![UNREACHABLE; n];
        let mut touched: Vec<NodeId> = Vec::new();
        let mut queue = VecDeque::new();
        for &landmark in &order {
            // Pruned BFS from `landmark`.
            queue.clear();
            touched.clear();
            dist[landmark as usize] = 0;
            touched.push(landmark);
            queue.push_back(landmark);
            while let Some(v) = queue.pop_front() {
                let d = dist[v as usize];
                // Prune: existing labels already certify <= d.
                if v != landmark
                    && query_labels(&labels[landmark as usize], &labels[v as usize]) <= d
                {
                    continue;
                }
                labels[v as usize].push((landmark, d));
                for nb in graph.neighbors(v) {
                    let u = nb.node as usize;
                    if dist[u] == UNREACHABLE {
                        dist[u] = d + 1;
                        touched.push(nb.node);
                        queue.push_back(nb.node);
                    }
                }
            }
            for &v in &touched {
                dist[v as usize] = UNREACHABLE;
            }
        }
        // Labels are pushed in landmark-order (which is the vertex scan
        // order), so each list is already sorted by landmark id order of
        // insertion; sort by landmark id for merge queries.
        for l in &mut labels {
            l.sort_unstable_by_key(|&(v, _)| v);
        }
        HopLabels { labels }
    }

    /// Exact hop distance between `a` and `b` ([`UNREACHABLE`] when
    /// disconnected).
    pub fn dist(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        query_labels(&self.labels[a as usize], &self.labels[b as usize])
    }

    /// Label entries of `v` (diagnostics).
    pub fn label(&self, v: NodeId) -> &[(NodeId, u32)] {
        &self.labels[v as usize]
    }

    /// Average label size (index-size diagnostic).
    pub fn average_label_size(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().map(Vec::len).sum::<usize>() as f64 / self.labels.len() as f64
    }
}

/// Merge-join two sorted label lists; min of `d_a + d_b` over common
/// landmarks.
fn query_labels(a: &[(NodeId, u32)], b: &[(NodeId, u32)]) -> u32 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = UNREACHABLE;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let sum = a[i].1.saturating_add(b[j].1);
                best = best.min(sum);
                i += 1;
                j += 1;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn path(n: usize) -> CsrGraph {
        let edges: Vec<(NodeId, NodeId, f64)> = (1..n)
            .map(|v| (v as NodeId - 1, v as NodeId, 1.0))
            .collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn exact_on_path() {
        let g = path(8);
        let hl = HopLabels::build(&g);
        assert_eq!(hl.dist(0, 7), 7);
        assert_eq!(hl.dist(3, 3), 0);
        assert_eq!(hl.dist(2, 5), 3);
    }

    #[test]
    fn disconnected_pairs_unreachable() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let hl = HopLabels::build(&g);
        assert_eq!(hl.dist(0, 2), UNREACHABLE);
        assert_eq!(hl.dist(1, 0), 1);
    }

    #[test]
    fn labels_stay_small_on_stars() {
        // Star graph: the hub alone should label everything.
        let edges: Vec<(NodeId, NodeId, f64)> = (1..50).map(|v| (0, v as NodeId, 1.0)).collect();
        let g = CsrGraph::from_edges(50, &edges);
        let hl = HopLabels::build(&g);
        assert!(
            hl.average_label_size() <= 2.5,
            "{}",
            hl.average_label_size()
        );
        assert_eq!(hl.dist(3, 4), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The labeling is exact against BFS on random graphs.
        #[test]
        fn matches_bfs(seed in 0u64..300, n in 2usize..40, p in 0.05f64..0.4) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(p) {
                        edges.push((u as NodeId, v as NodeId, 1.0));
                    }
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            let hl = HopLabels::build(&g);
            for s in 0..n.min(6) {
                let exact = bfs::hop_distances(&g, s as NodeId);
                for (t, &want) in exact.iter().enumerate().take(n) {
                    let got = hl.dist(s as NodeId, t as NodeId);
                    prop_assert_eq!(got, want, "pair ({}, {})", s, t);
                }
            }
        }
    }
}
