//! Contraction-hierarchy distance oracle with bit-identical answers.
//!
//! Repeated point-to-point and many-to-many `dist_RN` probes are the hot
//! path of GP-SSN refinement (Algorithm 2): every `verify_center` call
//! fills an `S × R` distance matrix, and plain Dijkstra pays the full
//! road-network search cost per row or column. A contraction hierarchy
//! ([Geisberger et al. 2008]) preprocesses the graph once — contracting
//! vertices in importance order and inserting *shortcut* arcs that
//! preserve shortest paths among the not-yet-contracted rest — after
//! which a point-to-point query is a pair of tiny Dijkstra runs that only
//! ever relax arcs towards *higher-ranked* vertices.
//!
//! ## Bit-identical answers
//!
//! The rest of the engine treats distances as exact tokens: caches key on
//! them, refinement compares them with `total_cmp`, and the equivalence
//! suite asserts engines agree bitwise. A naive CH returns the *sum of
//! shortcut weights* along the best up-down path, whose floating-point
//! rounding differs from Dijkstra's left-to-right `dist[v] = dist[u] + w`
//! accumulation. This implementation therefore never reports search keys:
//!
//! 1. Dijkstra over non-negative weights returns, for every vertex, the
//!    minimum over all paths of the *left-associated floating-point fold*
//!    of the original edge weights (f64 addition of non-negative values is
//!    monotone, so the greedy argument survives rounding).
//! 2. Shortcut weights (`w₁ + w₂`, commutative, so orientation-free) are
//!    used only to *steer* the bidirectional upward search.
//! 3. The reported distance is obtained by unpacking the winning up-down
//!    path to its original edge sequence and folding weights
//!    source-to-target starting from the seed's initial distance —
//!    reproducing Dijkstra's exact accumulation order.
//! 4. Search keys are rounded differently from folds by at most a few
//!    ULPs, so *every* meeting vertex whose key is within a small relative
//!    tolerance of the best key is unpacked, and the minimum fold wins.
//!    Symmetrically, a witness search during contraction suppresses a
//!    shortcut only when the witness is shorter *by more than the same
//!    tolerance*, so near-tied shortest paths always stay representable
//!    as up-down paths.
//!
//! Exact ties fold to bitwise-equal values (weights are non-negative, so
//! there is no `-0.0`, and `x + 0.0 == x` exactly — zero-weight edges are
//! harmless). The residual gap — two distinct paths whose *search keys*
//! round to within an ULP of each other while their folds differ — would
//! require engineered weights and is property-tested against in practice;
//! see DESIGN.md §9 for the full argument.
//!
//! [Geisberger et al. 2008]: https://doi.org/10.1007/978-3-540-68552-4_24

use crate::csr::{CsrGraph, NodeId};
use crate::dijkstra::INFINITY;
use crate::heap::IndexedMinHeap;
use std::io::{self, BufRead, Write};

/// Reversal flag on a packed arc reference (high bit of the arena index).
const REV: u32 = 1 << 31;

/// `mid` sentinel marking an arena arc as an original edge.
const ORIGINAL: NodeId = NodeId::MAX;

/// Rank sentinel for not-yet-contracted vertices during construction.
const UNRANKED: u32 = u32::MAX;

/// Relative tolerance separating "genuinely shorter" from "equal modulo
/// floating-point rounding of search keys". Path folds and search keys
/// agree to ~`path_len · ε ≈ 1e-13` relative; `1e-10` dominates that with
/// headroom while still only ever capturing genuine near-ties.
const KEY_TOL: f64 = 1e-10;

/// Settle cap for witness searches during contraction. Witness searches
/// are *sound under truncation*: giving up early only fails to find a
/// witness, which adds a redundant shortcut — never drops a needed one.
const WITNESS_SETTLE_CAP: usize = 64;

/// Minimum items before a build phase fans out over worker threads —
/// below this the spawn overhead dominates. Thread-count invariance does
/// not depend on it (results are always merged in input order), so it is
/// a pure tuning knob.
const PAR_BUILD_FLOOR: usize = 256;

/// One arc of the contraction arena: every original edge and every
/// shortcut, in creation order. Stored in a canonical `tail -> head`
/// orientation; packed references flip the [`REV`] bit to traverse it
/// `head -> tail`.
#[derive(Debug, Clone, Copy)]
struct ArenaArc {
    tail: NodeId,
    head: NodeId,
    /// Search-key weight: the original edge weight, or `w₁ + w₂` of the
    /// two constituent arcs (commutative, hence orientation-free).
    weight: f64,
    /// Contracted middle vertex, or [`ORIGINAL`] for original edges.
    mid: NodeId,
    /// Packed ref of the `tail -> mid` constituent (shortcuts only).
    a: u32,
    /// Packed ref of the `mid -> head` constituent (shortcuts only).
    b: u32,
}

/// An upward-graph arc (towards a higher-ranked vertex).
#[derive(Debug, Clone, Copy)]
struct UpArc {
    head: NodeId,
    weight: f64,
    /// Packed arena ref, oriented in the arc's travel direction.
    packed: u32,
}

/// A contraction-hierarchy distance oracle over a [`CsrGraph`].
///
/// Build once with [`ChOracle::build`]; answer point-to-point and
/// many-to-many queries through a reusable [`ChSearch`] workspace.
/// Answers are bit-identical to [`crate::dijkstra::dijkstra_targets`]
/// over the same graph (see the module docs for why).
#[derive(Debug, Clone)]
pub struct ChOracle {
    n: usize,
    /// Contraction order: `rank[v]` is `v`'s position (0 = contracted
    /// first = least important).
    rank: Vec<u32>,
    /// CSR offsets into `up_arcs`, length `n + 1`.
    up_offsets: Vec<u32>,
    up_arcs: Vec<UpArc>,
    arena: Vec<ArenaArc>,
    /// Arena prefix holding the original edges (== input edge count).
    num_original: usize,
}

impl ChOracle {
    /// Number of vertices the oracle was built over.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of shortcut arcs the contraction inserted.
    #[inline]
    pub fn num_shortcuts(&self) -> usize {
        self.arena.len() - self.num_original
    }

    /// Builds the hierarchy using all available cores (equivalent to
    /// [`ChOracle::build_with_threads`] with `threads = 0`; the result is
    /// identical for every thread count).
    pub fn build(graph: &CsrGraph) -> ChOracle {
        Self::build_with_threads(graph, 0)
    }

    /// [`ChOracle::build`] with an explicit thread count (`0` = all
    /// available cores). The hierarchy is **bit-identical for every
    /// thread count**; see [`ChOracle::build_with_stats`].
    pub fn build_with_threads(graph: &CsrGraph, threads: usize) -> ChOracle {
        Self::build_with_stats(graph, threads).0
    }

    /// Parallel deterministic contraction, also returning build counters.
    ///
    /// Vertices are contracted in *independent-set rounds*: each round
    /// selects every unranked vertex whose `(priority, id)` key is a
    /// strict local minimum among its unranked neighbours — an
    /// independent set, since two adjacent vertices cannot both be local
    /// minima — simulates all their contractions concurrently against
    /// the immutable pre-round adjacency (scoped threads, one reused
    /// [`WitnessSearch`] workspace per worker), and then merges
    /// shortcuts and assigns ranks sequentially in ascending key order.
    /// Selection, the per-candidate witness searches, and the merge are
    /// all functions of the pre-round state alone, so the rank
    /// permutation and the arena (and with them the upward CSR and every
    /// serialized byte) are identical for every `threads` value.
    ///
    /// Witness paths may route through other same-round vertices; each
    /// of those contributes its own shortcut (or a strictly shorter
    /// witness, recursively), so distances among the surviving vertices
    /// are preserved collectively — the standard independent-set CH
    /// argument. Priorities are kept neighbourhood-exact: after a merge,
    /// every live neighbour of a contracted vertex is re-simulated
    /// (fanned out and merged in vertex order).
    pub fn build_with_stats(graph: &CsrGraph, threads: usize) -> (ChOracle, ChBuildStats) {
        let n = graph.num_nodes();
        // Live adjacency, mutated as contraction inserts shortcuts.
        // Entries are oriented self -> neighbour.
        let mut adj: Vec<Vec<AdjArc>> = vec![Vec::new(); n];
        let mut arena: Vec<ArenaArc> = Vec::with_capacity(graph.num_edges() * 2);
        for (e, (u, v, w)) in graph.edges().enumerate() {
            let idx = arena.len() as u32;
            arena.push(ArenaArc {
                tail: u,
                head: v,
                weight: w,
                mid: ORIGINAL,
                a: e as u32,
                b: 0,
            });
            adj[u as usize].push(AdjArc {
                to: v,
                weight: w,
                packed: idx,
            });
            adj[v as usize].push(AdjArc {
                to: u,
                weight: w,
                packed: idx | REV,
            });
        }
        let num_original = arena.len();

        let mut rank: Vec<u32> = vec![UNRANKED; n];
        let mut deleted_neighbors: Vec<u32> = vec![0; n];

        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(|w| w.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .min(n.max(1));
        let mut pool: Vec<BuildWorkspace> = (0..workers).map(|_| BuildWorkspace::new(n)).collect();
        let mut stats = ChBuildStats {
            workspaces: workers as u32,
            ..ChBuildStats::default()
        };

        // Initial priorities: one contraction simulation per vertex,
        // independent given the (immutable) initial adjacency.
        let all: Vec<NodeId> = (0..n as NodeId).collect();
        let mut key: Vec<u64> = vec![0; n];
        {
            let adj = &adj;
            let rank = &rank;
            let deleted = &deleted_neighbors;
            let t0 = std::time::Instant::now();
            let keys = fan_out(&mut pool, &all, |ws, v| {
                key_bits(simulate_priority(adj, rank, deleted, ws, v))
            });
            stats.par_ns += t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            key.copy_from_slice(&keys);
        }
        drop(all);

        let mut next_rank: u32 = 0;
        let mut selected: Vec<NodeId> = Vec::new();
        let mut affected: Vec<NodeId> = Vec::new();
        while (next_rank as usize) < n {
            stats.rounds += 1;
            // Select the round's independent set: unranked local minima
            // of (key, id) over unranked neighbours, then order them by
            // ascending key for rank assignment and shortcut merging.
            selected.clear();
            for v in 0..n {
                if rank[v] != UNRANKED {
                    continue;
                }
                let kv = (key[v], v as u32);
                let local_min = adj[v].iter().all(|arc| {
                    rank[arc.to as usize] != UNRANKED || (key[arc.to as usize], arc.to) >= kv
                });
                if local_min {
                    selected.push(v as NodeId);
                }
            }
            selected.sort_unstable_by_key(|&v| (key[v as usize], v));

            // Simulate every candidate's contraction against the
            // pre-round adjacency (ranks of this round's vertices are
            // still unset, so the candidates cannot see each other as
            // contracted — the computation is order-free).
            let outputs: Vec<CandidateOutput> = {
                let adj = &adj;
                let rank = &rank;
                let t0 = std::time::Instant::now();
                let outputs = fan_out(&mut pool, &selected, |ws, v| {
                    contract_candidate(adj, rank, ws, v)
                });
                stats.par_ns += t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                outputs
            };

            // Merge in selection order: assign ranks, bump contracted-
            // neighbour counts, and append shortcuts to the arena and the
            // live adjacency.
            affected.clear();
            for out in outputs {
                rank[out.v as usize] = next_rank;
                next_rank += 1;
                for x in &out.neighbors {
                    deleted_neighbors[x.to as usize] += 1;
                    affected.push(x.to);
                }
                for &(ui, uj) in &out.shortcuts {
                    let sum = ui.weight + uj.weight;
                    let idx = arena.len() as u32;
                    assert!(idx < REV, "contraction arena overflow");
                    arena.push(ArenaArc {
                        tail: ui.to,
                        head: uj.to,
                        weight: sum,
                        mid: out.v,
                        a: ui.packed ^ REV, // u_i -> v
                        b: uj.packed,       // v -> u_j
                    });
                    adj[ui.to as usize].push(AdjArc {
                        to: uj.to,
                        weight: sum,
                        packed: idx,
                    });
                    adj[uj.to as usize].push(AdjArc {
                        to: ui.to,
                        weight: sum,
                        packed: idx | REV,
                    });
                }
            }

            // Refresh the priorities whose neighbourhoods changed.
            affected.sort_unstable();
            affected.dedup();
            affected.retain(|&x| rank[x as usize] == UNRANKED);
            {
                let adj = &adj;
                let rank = &rank;
                let deleted = &deleted_neighbors;
                let t0 = std::time::Instant::now();
                let keys = fan_out(&mut pool, &affected, |ws, v| {
                    key_bits(simulate_priority(adj, rank, deleted, ws, v))
                });
                stats.par_ns += t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                for (&v, &kb) in affected.iter().zip(keys.iter()) {
                    key[v as usize] = kb;
                }
            }
        }

        stats.shortcuts = arena.len() - num_original;
        for ws in &pool {
            stats.witness_resets += ws.witness.resets;
            stats.witness_recycles += ws.witness.recycles;
        }

        let (up_offsets, up_arcs) = build_up_csr(n, &rank, &arena);
        (
            ChOracle {
                n,
                rank,
                up_offsets,
                up_arcs,
                arena,
                num_original,
            },
            stats,
        )
    }

    /// Exact distances from `seeds` to every entry of `targets`,
    /// mirroring [`crate::dijkstra::dijkstra_targets`] restricted to the
    /// targets (bit-identical values). Also returns the number of
    /// vertices settled across the underlying upward searches — the unit
    /// budgets charge, comparable to (and much smaller than) Dijkstra
    /// settle counts.
    pub fn dists(
        &self,
        search: &mut ChSearch,
        seeds: &[(NodeId, f64)],
        targets: &[NodeId],
    ) -> (Vec<f64>, u64) {
        self.batch_dists(search, &[seeds], targets)
    }

    /// Bucket-based many-to-many kernel: one backward upward sweep per
    /// *distinct* target, one forward upward sweep per source seed list,
    /// forward sweeps probing the targets' search spaces through a
    /// node-sorted bucket array. Returns the row-major
    /// `sources.len() × targets.len()` distance matrix plus the settled
    /// count (backward spaces are charged once, not per source).
    pub fn batch_dists(
        &self,
        search: &mut ChSearch,
        sources: &[&[(NodeId, f64)]],
        targets: &[NodeId],
    ) -> (Vec<f64>, u64) {
        let mut out = vec![INFINITY; sources.len() * targets.len()];
        if self.n == 0 || sources.is_empty() || targets.is_empty() {
            return (out, 0);
        }
        if gpssn_failpoint::failpoint!("ch::settle_exhaustion") {
            panic!("injected fault: ch::settle_exhaustion");
        }
        search.prepare(self.n);
        let mut settles: u64 = 0;

        // Deduplicate targets (two POIs often share an edge endpoint);
        // `tcol[j]` maps target j to its distinct-target column.
        search.distinct.clear();
        search.tcol.clear();
        for &t in targets {
            let slot = search.tslot[t as usize];
            if (slot as usize) < search.distinct.len() && search.distinct[slot as usize] == t {
                search.tcol.push(slot);
            } else {
                search.tslot[t as usize] = search.distinct.len() as u32;
                search.tcol.push(search.distinct.len() as u32);
                search.distinct.push(t);
            }
        }

        // Backward phase: one upward sweep per distinct target, its full
        // search space persisted for bucket probing and path unpacking.
        search.bspace.clear();
        search.branges.clear();
        search.bucket.clear();
        for e in 0..search.distinct.len() {
            let t = search.distinct[e];
            let lo = search.bspace.len() as u32;
            settles += self.upward_sweep(search, &[(t, 0.0)]);
            // Persist the sweep (settled order == slot order) and reset
            // its per-node state so the next sweep starts clean. A
            // settled vertex's parent settled earlier in the *same*
            // sweep, so `slot_hint` entries are always fresh when read.
            for k in 0..search.settled.len() {
                let m = search.settled[k];
                let slot = lo + k as u32;
                search.slot_hint[m as usize] = slot;
                let p = search.parent[m as usize];
                let parent_slot = if p == NodeId::MAX {
                    u32::MAX
                } else {
                    search.slot_hint[p as usize]
                };
                search.bucket.push((m, e as u32, slot));
                search.bspace.push(BNode {
                    dist: search.dist[m as usize],
                    parent_slot,
                    packed: search.parent_arc[m as usize],
                });
            }
            search.branges.push((lo, search.bspace.len() as u32));
            search.reset_sweep();
        }
        search.bucket.sort_unstable();

        // Forward phase: one upward sweep per source, probing buckets at
        // every settled vertex. Two bucket passes per source: the first
        // finds each distinct target's best meeting key, the second
        // unpacks every near-tie candidate and keeps the minimum fold.
        let cols = search.distinct.len();
        search.best.resize(cols, INFINITY);
        search.folded.resize(cols, INFINITY);
        for (i, seeds) in sources.iter().enumerate() {
            settles += self.upward_sweep(search, seeds);
            for b in search.best.iter_mut() {
                *b = INFINITY;
            }
            for &m in &search.settled {
                let df = search.dist[m as usize];
                for &(_, e, slot) in bucket_range(&search.bucket, m) {
                    let key = df + search.bspace[slot as usize].dist;
                    if key < search.best[e as usize] {
                        search.best[e as usize] = key;
                    }
                }
            }
            for f in search.folded.iter_mut() {
                *f = INFINITY;
            }
            for si in 0..search.settled.len() {
                let m = search.settled[si];
                let df = search.dist[m as usize];
                for bi in bucket_span(&search.bucket, m) {
                    let (_, e, slot) = search.bucket[bi];
                    let best = search.best[e as usize];
                    if !best.is_finite() {
                        continue;
                    }
                    let key = df + search.bspace[slot as usize].dist;
                    if key <= best * (1.0 + KEY_TOL) {
                        let fold = self.fold_candidate(search, m, slot);
                        if fold < search.folded[e as usize] {
                            search.folded[e as usize] = fold;
                        }
                    }
                }
            }
            for (j, &c) in search.tcol.iter().enumerate() {
                out[i * targets.len() + j] = search.folded[c as usize];
            }
            search.reset_sweep();
        }
        (out, settles)
    }

    /// Runs one upward Dijkstra sweep (forward and backward are the same
    /// search on an undirected hierarchy). Leaves `dist`, `parent`,
    /// `parent_arc`, `settled` describing the sweep; returns the settle
    /// count.
    fn upward_sweep(&self, search: &mut ChSearch, seeds: &[(NodeId, f64)]) -> u64 {
        for &(s, d0) in seeds {
            debug_assert!(d0 >= 0.0, "seed distances must be non-negative");
            if d0 < search.dist[s as usize] {
                if search.dist[s as usize] == INFINITY {
                    search.touched.push(s);
                }
                search.dist[s as usize] = d0;
                search.parent[s as usize] = NodeId::MAX;
                search.heap.push_or_decrease(s, d0);
            }
        }
        while let Some((v, d)) = search.heap.pop() {
            search.settled.push(v);
            let lo = self.up_offsets[v as usize] as usize;
            let hi = self.up_offsets[v as usize + 1] as usize;
            for arc in &self.up_arcs[lo..hi] {
                let nd = d + arc.weight;
                if nd < search.dist[arc.head as usize] {
                    if search.dist[arc.head as usize] == INFINITY {
                        search.touched.push(arc.head);
                    }
                    search.dist[arc.head as usize] = nd;
                    search.parent[arc.head as usize] = v;
                    search.parent_arc[arc.head as usize] = arc.packed;
                    search.heap.push_or_decrease(arc.head, nd);
                }
            }
        }
        search.settled.len() as u64
    }

    /// Unpacks the up-down candidate path meeting at forward vertex `m`
    /// and backward-space slot `slot`, folding original edge weights
    /// source-to-target starting from the seed's initial distance —
    /// Dijkstra's exact accumulation order.
    fn fold_candidate(&self, search: &mut ChSearch, m: NodeId, slot: u32) -> f64 {
        if gpssn_failpoint::failpoint!("ch::unpack") {
            panic!("injected fault: ch::unpack");
        }
        search.unpacks += 1;
        // Forward chain: walk m -> seed root, then fold in reverse
        // (travel) order. The root's dist is its untouched seed d0.
        search.fchain.clear();
        let mut v = m;
        while search.parent[v as usize] != NodeId::MAX {
            search.fchain.push(search.parent_arc[v as usize]);
            v = search.parent[v as usize];
        }
        let mut acc = search.dist[v as usize];
        for k in (0..search.fchain.len()).rev() {
            acc = self.fold_ref(&mut search.stack, search.fchain[k], acc);
        }
        // Backward chain: slots walk m -> target, which *is* travel
        // order; each up-arc is traversed against its stored direction.
        let mut s = slot;
        loop {
            let b = search.bspace[s as usize];
            if b.parent_slot == u32::MAX {
                break;
            }
            acc = self.fold_ref(&mut search.stack, b.packed ^ REV, acc);
            s = b.parent_slot;
        }
        acc
    }

    /// Folds one packed arc ref: original edges add their weight; a
    /// shortcut expands to its constituents in travel order (reversed
    /// traversal flips the constituent order and their [`REV`] bits).
    /// Iterative with an explicit stack — shortcut nesting is unbounded
    /// on path-like graphs.
    fn fold_ref(&self, stack: &mut Vec<u32>, packed: u32, mut acc: f64) -> f64 {
        debug_assert!(stack.is_empty());
        stack.push(packed);
        while let Some(p) = stack.pop() {
            let arc = &self.arena[(p & !REV) as usize];
            if arc.mid == ORIGINAL {
                acc += arc.weight;
            } else if p & REV == 0 {
                stack.push(arc.b);
                stack.push(arc.a);
            } else {
                stack.push(arc.a ^ REV);
                stack.push(arc.b ^ REV);
            }
        }
        acc
    }

    /// Serializes the oracle as versioned plain text (rank + arena; the
    /// upward CSR is rebuilt on read). Written inside the road-index file
    /// by `gpssn-index`.
    pub fn write_text<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "ch {} {} {}",
            self.n,
            self.num_original,
            self.arena.len()
        )?;
        for r in &self.rank {
            writeln!(w, "{r}")?;
        }
        for arc in &self.arena {
            // `{:?}` prints the shortest decimal that round-trips f64.
            writeln!(
                w,
                "{} {} {:?} {} {} {}",
                arc.tail, arc.head, arc.weight, arc.mid, arc.a, arc.b
            )?;
        }
        Ok(())
    }

    /// Reads an oracle written by [`ChOracle::write_text`]. `lines`
    /// should be positioned on the `ch ...` header line.
    pub fn read_text<B: BufRead>(lines: &mut std::io::Lines<B>) -> io::Result<ChOracle> {
        let header = next_line(lines)?;
        let mut it = header.split_whitespace();
        if it.next() != Some("ch") {
            return Err(bad_data("expected `ch` header"));
        }
        let n: usize = parse_field(it.next())?;
        let num_original: usize = parse_field(it.next())?;
        let arena_len: usize = parse_field(it.next())?;
        if num_original > arena_len || arena_len >= REV as usize {
            return Err(bad_data("implausible ch arena size"));
        }
        // Cap pre-allocation from untrusted counts; the vectors still
        // grow to the real size on demand.
        let mut rank = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            rank.push(parse_field(Some(next_line(lines)?.trim()))?);
        }
        let mut arena = Vec::with_capacity(arena_len.min(1 << 16));
        for _ in 0..arena_len {
            let line = next_line(lines)?;
            let mut it = line.split_whitespace();
            let tail: NodeId = parse_field(it.next())?;
            let head: NodeId = parse_field(it.next())?;
            let weight: f64 = parse_field(it.next())?;
            let mid: NodeId = parse_field(it.next())?;
            let a: u32 = parse_field(it.next())?;
            let b: u32 = parse_field(it.next())?;
            if (tail as usize) >= n || (head as usize) >= n {
                return Err(bad_data("ch arc endpoint out of range"));
            }
            if !(weight.is_finite() && weight >= 0.0) {
                return Err(bad_data("ch arc weight must be finite and non-negative"));
            }
            if mid != ORIGINAL {
                if (mid as usize) >= n {
                    return Err(bad_data("ch shortcut middle out of range"));
                }
                let child_bound = arena.len() as u32;
                if (a & !REV) >= child_bound || (b & !REV) >= child_bound {
                    return Err(bad_data("ch shortcut children must precede it"));
                }
            }
            arena.push(ArenaArc {
                tail,
                head,
                weight,
                mid,
                a,
                b,
            });
        }
        let mut seen = vec![false; n];
        for &r in &rank {
            if (r as usize) >= n || std::mem::replace(&mut seen[r as usize], true) {
                return Err(bad_data("ch rank is not a permutation"));
            }
        }
        let (up_offsets, up_arcs) = build_up_csr(n, &rank, &arena);
        Ok(ChOracle {
            n,
            rank,
            up_offsets,
            up_arcs,
            arena,
            num_original,
        })
    }
}

/// Live-adjacency entry during contraction, oriented self -> `to`.
#[derive(Debug, Clone, Copy)]
struct AdjArc {
    to: NodeId,
    weight: f64,
    packed: u32,
}

/// Counters from one [`ChOracle::build_with_stats`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChBuildStats {
    /// Independent-set contraction rounds executed.
    pub rounds: u32,
    /// Shortcut arcs inserted.
    pub shortcuts: usize,
    /// Witness searches run (each resets its workspace's touched set).
    pub witness_resets: u64,
    /// Witness searches that recycled a warm workspace from a previous
    /// search instead of starting from fresh storage.
    pub witness_recycles: u64,
    /// Worker workspaces allocated (one per build thread).
    pub workspaces: u32,
    /// Wall-clock nanoseconds spent inside the data-parallel fan-out
    /// sections (priority simulation and candidate contraction), measured
    /// on the coordinating thread. At `threads = 1` this is the portion
    /// of the build that divides across workers; the remainder
    /// (selection, merge, CSR assembly) is inherently sequential.
    pub par_ns: u64,
}

/// Per-worker contraction state: a witness search plus neighbour scratch,
/// reused across every candidate (and round) the worker handles — no
/// per-candidate allocation churn.
#[derive(Debug)]
struct BuildWorkspace {
    witness: WitnessSearch,
    neighbors: Vec<AdjArc>,
}

impl BuildWorkspace {
    fn new(n: usize) -> Self {
        BuildWorkspace {
            witness: WitnessSearch::new(n),
            neighbors: Vec::new(),
        }
    }
}

/// One candidate's simulated contraction, computed against the pre-round
/// adjacency and applied later in deterministic merge order.
struct CandidateOutput {
    v: NodeId,
    /// Live (unranked) neighbours at simulation time.
    neighbors: Vec<AdjArc>,
    /// Shortcut pairs to insert: `(u_i arc, u_j arc)` out of `v`.
    shortcuts: Vec<(AdjArc, AdjArc)>,
}

/// Fans `items` out over the worker pool in contiguous chunks and returns
/// the per-item outputs **in input order** — the merge order (and hence
/// the hierarchy) is independent of the number of workers. Small batches
/// run inline on the first workspace.
// Audited expect: `join` only fails when a worker panicked, and
// propagating that panic is exactly the intended behavior.
#[allow(clippy::expect_used)]
fn fan_out<T, F>(pool: &mut [BuildWorkspace], items: &[NodeId], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut BuildWorkspace, NodeId) -> T + Sync,
{
    if pool.len() <= 1 || items.len() < PAR_BUILD_FLOOR {
        let ws = &mut pool[0];
        return items.iter().map(|&v| f(ws, v)).collect();
    }
    let chunk = items.len().div_ceil(pool.len());
    let f = &f;
    let mut out: Vec<T> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(pool.len());
        for (ws, chunk_items) in pool.iter_mut().zip(items.chunks(chunk)) {
            handles.push(
                scope.spawn(move || chunk_items.iter().map(|&v| f(ws, v)).collect::<Vec<T>>()),
            );
        }
        for h in handles {
            out.extend(h.join().expect("contraction worker panicked"));
        }
    });
    out
}

/// Simulates contracting `v` against the current adjacency: collects its
/// live neighbours and the shortcut pairs no witness search can refute.
/// Read-only on the shared state, so candidates of one round can run
/// concurrently.
fn contract_candidate(
    adj: &[Vec<AdjArc>],
    rank: &[u32],
    ws: &mut BuildWorkspace,
    v: NodeId,
) -> CandidateOutput {
    live_neighbors(adj, rank, v, &mut ws.neighbors);
    let mut shortcuts = Vec::new();
    for i in 0..ws.neighbors.len() {
        if i + 1 == ws.neighbors.len() {
            break; // no partners left
        }
        let ui = ws.neighbors[i];
        // One witness search from u_i covers every partner u_j.
        let limit = ws.neighbors[i + 1..]
            .iter()
            .map(|uj| ui.weight + uj.weight)
            .fold(0.0f64, f64::max);
        ws.witness.run(adj, rank, ui.to, v, limit);
        for &uj in &ws.neighbors[i + 1..] {
            let sum = ui.weight + uj.weight;
            if ws.witness.dist(uj.to) * (1.0 + KEY_TOL) < sum {
                continue; // strictly shorter witness beyond rounding
            }
            shortcuts.push((ui, uj));
        }
    }
    CandidateOutput {
        v,
        neighbors: ws.neighbors.clone(),
        shortcuts,
    }
}

/// One persisted vertex of a backward search space.
#[derive(Debug, Clone, Copy)]
struct BNode {
    dist: f64,
    /// Slot (within the same space) of the parent towards the target, or
    /// `u32::MAX` at the target itself.
    parent_slot: u32,
    /// Packed ref of the up-arc `parent -> this`, to be folded reversed.
    packed: u32,
}

/// Reusable state for [`ChOracle`] queries: sweep arrays, persisted
/// backward spaces, buckets, and unpack scratch. One per thread, like
/// [`crate::DijkstraWorkspace`].
#[derive(Debug, Default)]
pub struct ChSearch {
    dist: Vec<f64>,
    parent: Vec<NodeId>,
    parent_arc: Vec<u32>,
    touched: Vec<NodeId>,
    settled: Vec<NodeId>,
    heap: IndexedMinHeap,
    /// Distinct-target dedup scratch (`tslot` is a lossy hint checked
    /// against `distinct`, so it never needs clearing).
    tslot: Vec<u32>,
    /// Per-vertex bspace slot of the current backward sweep (lossy; only
    /// read for vertices settled in the same sweep).
    slot_hint: Vec<u32>,
    distinct: Vec<NodeId>,
    tcol: Vec<u32>,
    /// Persisted backward spaces, concatenated; `branges[e]` delimits
    /// target `e`'s slots.
    bspace: Vec<BNode>,
    branges: Vec<(u32, u32)>,
    /// `(node, target index, bspace slot)`, sorted by node for probing.
    bucket: Vec<(NodeId, u32, u32)>,
    best: Vec<f64>,
    folded: Vec<f64>,
    fchain: Vec<u32>,
    stack: Vec<u32>,
    /// Lifetime count of batches prepared by this workspace.
    resets: u64,
    /// Batches that reused already-sized storage (no growth needed).
    recycles: u64,
    /// Lifetime count of candidate paths unpacked-and-folded to original
    /// edges ([`ChOracle`] near-tie exactness work).
    unpacks: u64,
}

impl ChSearch {
    /// Creates an empty workspace; storage is sized on first use.
    pub fn new() -> Self {
        ChSearch::default()
    }

    fn prepare(&mut self, n: usize) {
        self.resets += 1;
        if self.dist.len() < n {
            self.dist.resize(n, INFINITY);
            self.parent.resize(n, NodeId::MAX);
            self.parent_arc.resize(n, 0);
            self.tslot.resize(n, 0);
            self.slot_hint.resize(n, 0);
            self.heap.grow(n);
        } else if n > 0 {
            self.recycles += 1;
        }
    }

    /// Lifetime number of batches this workspace prepared.
    #[inline]
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Lifetime number of batches that reused already-sized storage.
    #[inline]
    pub fn recycles(&self) -> u64 {
        self.recycles
    }

    /// Lifetime number of near-tie candidate paths unpacked to original
    /// edges and folded for bit-exactness.
    #[inline]
    pub fn unpacks(&self) -> u64 {
        self.unpacks
    }

    /// Restores `dist` to `INFINITY` at every vertex the latest sweep
    /// touched; clears the settled list.
    fn reset_sweep(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INFINITY;
        }
        self.touched.clear();
        self.settled.clear();
        self.heap.clear();
    }

    /// Restores the workspace to a clean state after a query aborted
    /// mid-batch (a panic unwound out of [`ChOracle::batch_dists`]).
    /// Unlike the incremental [`ChSearch::reset_sweep`], this wipes the
    /// full sweep arrays — O(n), but only run on the fault path — so a
    /// later batch on the same workspace stays bit-identical. Storage
    /// capacity and lifetime counters are retained.
    pub fn hard_reset(&mut self) {
        for d in &mut self.dist {
            *d = INFINITY;
        }
        self.touched.clear();
        self.settled.clear();
        self.heap.clear();
        self.distinct.clear();
        self.tcol.clear();
        self.bspace.clear();
        self.branges.clear();
        self.bucket.clear();
        self.best.clear();
        self.folded.clear();
        self.fchain.clear();
        self.stack.clear();
    }
}

/// Maps an f64 priority to a totally ordered `u64` (sign-flip trick), so
/// `(key_bits(p), vertex)` tuples order candidates deterministically.
fn key_bits(p: f64) -> u64 {
    let b = p.to_bits();
    if b & (1 << 63) != 0 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Collects `v`'s live (unranked) neighbours, deduplicated per neighbour
/// keeping the minimum-weight parallel arc (first wins on exact ties, so
/// the choice is deterministic).
fn live_neighbors(adj: &[Vec<AdjArc>], rank: &[u32], v: NodeId, out: &mut Vec<AdjArc>) {
    out.clear();
    'arcs: for arc in &adj[v as usize] {
        if rank[arc.to as usize] != UNRANKED {
            continue;
        }
        for seen in out.iter_mut() {
            if seen.to == arc.to {
                if arc.weight < seen.weight {
                    *seen = *arc;
                }
                continue 'arcs;
            }
        }
        out.push(*arc);
    }
}

/// Simulates contracting `v`: counts the shortcuts the contraction would
/// insert and returns the standard priority
/// `2·(shortcuts − degree) + contracted neighbours`. Uses the worker's
/// neighbour scratch and witness search — no per-call allocation.
fn simulate_priority(
    adj: &[Vec<AdjArc>],
    rank: &[u32],
    deleted_neighbors: &[u32],
    ws: &mut BuildWorkspace,
    v: NodeId,
) -> f64 {
    live_neighbors(adj, rank, v, &mut ws.neighbors);
    let neighbors = &ws.neighbors;
    let witness = &mut ws.witness;
    let mut shortcuts: i64 = 0;
    for i in 0..neighbors.len() {
        let ui = neighbors[i];
        let limit = neighbors[i + 1..]
            .iter()
            .map(|uj| ui.weight + uj.weight)
            .fold(0.0f64, f64::max);
        if i + 1 < neighbors.len() {
            witness.run(adj, rank, ui.to, v, limit);
        }
        for uj in &neighbors[i + 1..] {
            let sum = ui.weight + uj.weight;
            // Count unless a strictly shorter witness exists (the same
            // test the contraction loop applies when inserting).
            if witness.dist(uj.to) * (1.0 + KEY_TOL) >= sum {
                shortcuts += 1;
            }
        }
    }
    let edge_diff = shortcuts - neighbors.len() as i64;
    2.0 * edge_diff as f64 + deleted_neighbors[v as usize] as f64
}

/// A bounded Dijkstra over the live (unranked) part of the dynamic
/// adjacency, excluding one vertex — the witness search of CH
/// contraction. Truncation (settle cap, limit) is sound: it only misses
/// witnesses, which adds redundant shortcuts.
#[derive(Debug)]
struct WitnessSearch {
    dist: Vec<f64>,
    touched: Vec<NodeId>,
    heap: IndexedMinHeap,
    /// Lifetime count of searches run (each resets the touched set).
    resets: u64,
    /// Searches that recycled a warm workspace (a previous search had
    /// left touched state to clear) instead of fresh storage.
    recycles: u64,
}

impl WitnessSearch {
    fn new(n: usize) -> Self {
        WitnessSearch {
            dist: vec![INFINITY; n],
            touched: Vec::new(),
            heap: IndexedMinHeap::new(n),
            resets: 0,
            recycles: 0,
        }
    }

    /// Distance found by the latest run (`INFINITY` if unexplored).
    #[inline]
    fn dist(&self, v: NodeId) -> f64 {
        self.dist[v as usize]
    }

    /// Runs from `source`, skipping `excluded`, giving up beyond `limit`
    /// or [`WITNESS_SETTLE_CAP`] settles.
    fn run(
        &mut self,
        adj: &[Vec<AdjArc>],
        rank: &[u32],
        source: NodeId,
        excluded: NodeId,
        limit: f64,
    ) {
        self.resets += 1;
        if !self.touched.is_empty() {
            self.recycles += 1;
        }
        for &v in &self.touched {
            self.dist[v as usize] = INFINITY;
        }
        self.touched.clear();
        self.heap.clear();
        self.dist[source as usize] = 0.0;
        self.touched.push(source);
        self.heap.push_or_decrease(source, 0.0);
        let mut settles = 0usize;
        while let Some((v, d)) = self.heap.pop() {
            if d > limit || settles >= WITNESS_SETTLE_CAP {
                break;
            }
            settles += 1;
            for arc in &adj[v as usize] {
                if arc.to == excluded || rank[arc.to as usize] != UNRANKED {
                    continue;
                }
                let nd = d + arc.weight;
                if nd < self.dist[arc.to as usize] && nd <= limit {
                    if self.dist[arc.to as usize] == INFINITY {
                        self.touched.push(arc.to);
                    }
                    self.dist[arc.to as usize] = nd;
                    self.heap.push_or_decrease(arc.to, nd);
                }
            }
        }
    }
}

/// Builds the upward CSR: every arena arc, oriented from its lower-ranked
/// to its higher-ranked endpoint (counting sort by tail — deterministic).
fn build_up_csr(n: usize, rank: &[u32], arena: &[ArenaArc]) -> (Vec<u32>, Vec<UpArc>) {
    let mut counts = vec![0u32; n + 1];
    let orient = |arc: &ArenaArc, idx: usize| -> (NodeId, NodeId, u32) {
        if rank[arc.tail as usize] < rank[arc.head as usize] {
            (arc.tail, arc.head, idx as u32)
        } else {
            (arc.head, arc.tail, idx as u32 | REV)
        }
    };
    for (idx, arc) in arena.iter().enumerate() {
        let (t, _, _) = orient(arc, idx);
        counts[t as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut arcs = vec![
        UpArc {
            head: 0,
            weight: 0.0,
            packed: 0
        };
        arena.len()
    ];
    let mut cursor = counts;
    for (idx, arc) in arena.iter().enumerate() {
        let (t, h, packed) = orient(arc, idx);
        let at = cursor[t as usize] as usize;
        cursor[t as usize] += 1;
        arcs[at] = UpArc {
            head: h,
            weight: arc.weight,
            packed,
        };
    }
    (offsets, arcs)
}

/// Finds the bucket slice of vertex `m` by binary search over the
/// node-sorted bucket array.
fn bucket_range(bucket: &[(NodeId, u32, u32)], m: NodeId) -> &[(NodeId, u32, u32)] {
    let span = bucket_span(bucket, m);
    &bucket[span]
}

fn bucket_span(bucket: &[(NodeId, u32, u32)], m: NodeId) -> std::ops::Range<usize> {
    let lo = bucket.partition_point(|&(v, _, _)| v < m);
    let hi = lo + bucket[lo..].partition_point(|&(v, _, _)| v == m);
    lo..hi
}

fn next_line<B: BufRead>(lines: &mut std::io::Lines<B>) -> io::Result<String> {
    lines
        .next()
        .ok_or_else(|| bad_data("unexpected end of ch section"))?
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>) -> io::Result<T> {
    field
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_data("malformed ch field"))
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{dijkstra_all, dijkstra_targets};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(rng: &mut StdRng, n: usize, extra: usize, zero_frac: f64) -> CsrGraph {
        let mut edges = Vec::new();
        let weight = |rng: &mut StdRng| {
            if rng.gen_bool(zero_frac) {
                0.0
            } else {
                rng.gen_range(0.1..10.0)
            }
        };
        for v in 1..n {
            let u = rng.gen_range(0..v);
            let w = weight(rng);
            edges.push((u as NodeId, v as NodeId, w));
        }
        for _ in 0..extra {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                let w = weight(rng);
                edges.push((u as NodeId, v as NodeId, w));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    /// Random graph with several disconnected components, so unreachable
    /// pairs occur.
    fn random_disconnected(rng: &mut StdRng, n: usize) -> CsrGraph {
        let mut edges = Vec::new();
        let parts = 3.min(n);
        for v in parts..n {
            let u = rng.gen_range(0..v);
            if u % parts == v % parts {
                edges.push((u as NodeId, v as NodeId, rng.gen_range(0.1..10.0)));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    fn assert_bits_eq(got: f64, want: f64, ctx: &str) {
        assert!(
            got.to_bits() == want.to_bits(),
            "{ctx}: ch={got:?} ({:#x}) dijkstra={want:?} ({:#x})",
            got.to_bits(),
            want.to_bits()
        );
    }

    #[test]
    fn tiny_path_graph() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        let ch = ChOracle::build(&g);
        let mut s = ChSearch::new();
        let (d, settles) = ch.dists(&mut s, &[(0, 0.0)], &[0, 1, 2, 3]);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 6.0]);
        assert!(settles > 0);
    }

    #[test]
    fn zero_weight_and_parallel_edges() {
        let g = CsrGraph::from_edges(
            4,
            &[
                (0, 1, 0.0),
                (0, 1, 1.0),
                (1, 2, 0.0),
                (2, 3, 5.0),
                (0, 3, 5.0),
            ],
        );
        let ch = ChOracle::build(&g);
        let mut s = ChSearch::new();
        let targets = [0, 1, 2, 3];
        let want = dijkstra_targets(&g, &[(0, 0.25)], &targets);
        let (got, _) = ch.dists(&mut s, &[(0, 0.25)], &targets);
        for (j, &t) in targets.iter().enumerate() {
            assert_bits_eq(got[j], want[t as usize], &format!("target {t}"));
        }
    }

    #[test]
    fn unreachable_targets_are_infinity() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let ch = ChOracle::build(&g);
        let mut s = ChSearch::new();
        let (d, _) = ch.dists(&mut s, &[(0, 0.5)], &[1, 2, 3]);
        assert_eq!(d[0], 1.5);
        assert_eq!(d[1], INFINITY);
        assert_eq!(d[2], INFINITY);
    }

    #[test]
    fn empty_graph_and_empty_queries() {
        let g = CsrGraph::from_edges(0, &[]);
        let ch = ChOracle::build(&g);
        let mut s = ChSearch::new();
        let (d, settles) = ch.batch_dists(&mut s, &[], &[]);
        assert!(d.is_empty());
        assert_eq!(settles, 0);
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_graph(&mut rng, 400, 500, 0.05);
        let seq = ChOracle::build_with_threads(&g, 1);
        let mut seq_bytes = Vec::new();
        seq.write_text(&mut seq_bytes).unwrap();
        for threads in [2usize, 4, 8, 0] {
            let par = ChOracle::build_with_threads(&g, threads);
            assert_eq!(seq.rank, par.rank, "rank differs at {threads} threads");
            assert_eq!(seq.arena.len(), par.arena.len());
            for (a, b) in seq.arena.iter().zip(par.arena.iter()) {
                assert_eq!(a.tail, b.tail);
                assert_eq!(a.head, b.head);
                assert_eq!(a.weight.to_bits(), b.weight.to_bits());
                assert_eq!(a.mid, b.mid);
                assert_eq!((a.a, a.b), (b.a, b.b));
            }
            // The full serialized text (rank + arena) must match too.
            let mut par_bytes = Vec::new();
            par.write_text(&mut par_bytes).unwrap();
            assert_eq!(
                seq_bytes, par_bytes,
                "serialized ch differs at {threads} threads"
            );
        }
    }

    #[test]
    fn build_stats_count_rounds_and_witness_reuse() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = random_graph(&mut rng, 200, 260, 0.05);
        let (ch, stats) = ChOracle::build_with_stats(&g, 2);
        assert!(stats.rounds >= 1, "at least one contraction round");
        assert_eq!(stats.shortcuts, ch.num_shortcuts());
        assert_eq!(stats.workspaces, 2);
        assert!(stats.witness_resets > 0);
        // Workspaces are reused across candidates: all but the first
        // search per workspace recycles warm storage.
        assert!(stats.witness_recycles >= stats.witness_resets - u64::from(stats.workspaces));
    }

    #[test]
    fn text_round_trip_preserves_answers() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = random_graph(&mut rng, 60, 80, 0.1);
        let ch = ChOracle::build(&g);
        let mut buf = Vec::new();
        ch.write_text(&mut buf).unwrap();
        let mut lines = std::io::BufReader::new(&buf[..]).lines();
        let back = ChOracle::read_text(&mut lines).unwrap();
        let mut s = ChSearch::new();
        let targets: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        for src in 0..6 {
            let (a, _) = ch.dists(&mut s, &[(src, 0.0)], &targets);
            let (b, _) = back.dists(&mut s, &[(src, 0.0)], &targets);
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn read_text_rejects_garbage() {
        for text in [
            "",
            "notch 1 0 0\n",
            "ch 2 1 1\n0\n1\n0 5 1.0 4294967295 0 0\n",
            "ch 2 1 1\n0\n0\n0 1 1.0 4294967295 0 0\n",
            "ch 2 1 1\n0\n1\n0 1 -1.0 4294967295 0 0\n",
        ] {
            let mut lines = std::io::BufReader::new(text.as_bytes()).lines();
            assert!(
                ChOracle::read_text(&mut lines).is_err(),
                "accepted {text:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// CH answers are bit-identical to Dijkstra on random connected
        /// graphs with zero-weight and parallel edges, including seeded
        /// (on-edge style) multi-source queries.
        #[test]
        fn matches_dijkstra_bitwise(seed in 0u64..2000, n in 2usize..40, extra in 0usize..60) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_graph(&mut rng, n, extra, 0.08);
            let ch = ChOracle::build_with_threads(&g, if seed % 2 == 0 { 1 } else { 3 });
            let mut s = ChSearch::new();
            let targets: Vec<NodeId> = (0..n as NodeId).collect();
            for _ in 0..3 {
                let s1 = rng.gen_range(0..n) as NodeId;
                let s2 = rng.gen_range(0..n) as NodeId;
                let d1 = rng.gen_range(0.0..4.0);
                let d2 = rng.gen_range(0.0..4.0);
                let seeds = [(s1, d1), (s2, d2)];
                let want = dijkstra_all(&g, &seeds);
                let (got, _) = ch.dists(&mut s, &seeds, &targets);
                for v in 0..n {
                    prop_assert_eq!(
                        got[v].to_bits(), want[v].to_bits(),
                        "seed {} n {} v {}: ch={:?} dijkstra={:?}", seed, n, v, got[v], want[v]
                    );
                }
            }
        }

        /// The many-to-many kernel agrees with per-source Dijkstra runs
        /// on graphs with unreachable pairs.
        #[test]
        fn batch_matches_dijkstra_on_disconnected(seed in 0u64..1000, n in 4usize..36) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_disconnected(&mut rng, n);
            let ch = ChOracle::build(&g);
            let mut s = ChSearch::new();
            // Duplicate targets exercise the dedup path.
            let mut targets: Vec<NodeId> = (0..n as NodeId).collect();
            targets.push(0);
            targets.push((n / 2) as NodeId);
            let seed_lists: Vec<Vec<(NodeId, f64)>> = (0..3)
                .map(|_| vec![(rng.gen_range(0..n) as NodeId, rng.gen_range(0.0..2.0))])
                .collect();
            let refs: Vec<&[(NodeId, f64)]> = seed_lists.iter().map(|v| v.as_slice()).collect();
            let (got, _) = ch.batch_dists(&mut s, &refs, &targets);
            for (i, seeds) in seed_lists.iter().enumerate() {
                let want = dijkstra_targets(&g, seeds, &targets);
                for (j, &t) in targets.iter().enumerate() {
                    prop_assert_eq!(
                        got[i * targets.len() + j].to_bits(),
                        want[t as usize].to_bits(),
                        "seed {} source {} target {}", seed, i, t
                    );
                }
            }
        }
    }
}
