//! # gpssn-graph — graph substrate for GP-SSN
//!
//! General-purpose graph data structures and algorithms that both the road
//! network (`gpssn-road`) and the social network (`gpssn-social`) layers are
//! built on:
//!
//! * [`CsrGraph`] — a compact, cache-friendly CSR (compressed sparse row)
//!   representation of an undirected weighted graph.
//! * [`dijkstra`] — exact shortest-path distances (full, radius-bounded, and
//!   early-terminating multi-target variants) built on an indexed binary
//!   heap with decrease-key.
//! * [`bfs`] — unweighted hop distances (used for social-network distance,
//!   `dist_SN`).
//! * [`components`] — connected components and connectivity checks over
//!   vertex subsets (GP-SSN requires the user group `S` to be connected).
//! * [`partition`] — a balanced, connectivity-aware graph partitioner used
//!   to form the leaf nodes of the social-network index `I_S` (stand-in for
//!   METIS, reference \[28\] of the paper).
//! * [`subgraph`] — enumeration of connected vertex subsets of a fixed size
//!   containing a given root, used by the refinement step of GP-SSN query
//!   answering.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod alt;
pub mod bfs;
pub mod ch;
pub mod components;
pub mod csr;
pub mod dijkstra;
pub mod heap;
pub mod hop_labels;
pub mod partition;
pub mod sampling;
pub mod subgraph;
pub mod workspace;

pub use alt::AltOracle;
pub use bfs::{bounded_hops, hop_distances};
pub use ch::{ChBuildStats, ChOracle, ChSearch};
pub use components::{connected_components, is_connected_subset};
pub use csr::{CsrGraph, EdgeId, NodeId};
pub use dijkstra::{
    dijkstra_all, dijkstra_bounded, dijkstra_targets, dijkstra_targets_counted, DistanceMap,
    INFINITY,
};
pub use heap::IndexedMinHeap;
pub use hop_labels::HopLabels;
pub use partition::{partition_graph, Partitioning};
pub use sampling::{IndexSampler, ValueDistribution};
pub use subgraph::enumerate_connected_subsets;
pub use workspace::DijkstraWorkspace;
