//! ALT — A\* with landmarks and the triangle inequality (Goldberg &
//! Harrelson, SODA 2005).
//!
//! GP-SSN already precomputes landmark (pivot) distance tables for its
//! bounds; ALT reuses exactly those tables as an admissible, consistent
//! A\* heuristic for *exact* point-to-point queries:
//!
//! ```text
//! h(v) = max_l |d(l, v) − d(l, t)|  <=  d(v, t)
//! ```
//!
//! On road networks this typically settles a fraction of the vertices
//! plain Dijkstra would (see the `graph_ops` bench).

use crate::csr::{CsrGraph, NodeId};
use crate::dijkstra::INFINITY;
use crate::heap::IndexedMinHeap;

/// Landmark distance tables for ALT queries over one graph.
#[derive(Debug, Clone)]
pub struct AltOracle {
    /// `tables[l][v]` = exact distance from landmark `l` to vertex `v`.
    tables: Vec<Vec<f64>>,
}

impl AltOracle {
    /// Builds the oracle from landmark vertices (one Dijkstra per
    /// landmark).
    pub fn new(graph: &CsrGraph, landmarks: &[NodeId]) -> Self {
        assert!(!landmarks.is_empty(), "ALT needs at least one landmark");
        let tables = landmarks
            .iter()
            .map(|&l| crate::dijkstra::dijkstra_all(graph, &[(l, 0.0)]))
            .collect();
        AltOracle { tables }
    }

    /// Wraps existing landmark tables (e.g. GP-SSN road-pivot tables).
    pub fn from_tables(tables: Vec<Vec<f64>>) -> Self {
        assert!(!tables.is_empty(), "ALT needs at least one landmark");
        AltOracle { tables }
    }

    /// Admissible heuristic `h(v) >= 0`, `h(v) <= d(v, target)`.
    #[inline]
    fn heuristic(&self, v: NodeId, target: NodeId) -> f64 {
        let mut h = 0.0f64;
        for table in &self.tables {
            let dv = table[v as usize];
            let dt = table[target as usize];
            if dv.is_finite() && dt.is_finite() {
                h = h.max((dv - dt).abs());
            }
        }
        h
    }

    /// Exact distance from the (possibly virtual, multi-seed) source to
    /// `target` via A\*. Returns `(distance, settled_count)`; the settled
    /// count is what the benchmarks compare against plain Dijkstra.
    pub fn distance(
        &self,
        graph: &CsrGraph,
        seeds: &[(NodeId, f64)],
        target: NodeId,
    ) -> (f64, usize) {
        let n = graph.num_nodes();
        let mut dist = vec![INFINITY; n];
        let mut heap = IndexedMinHeap::new(n);
        for &(s, d0) in seeds {
            if d0 < dist[s as usize] {
                dist[s as usize] = d0;
                heap.push_or_decrease(s, d0 + self.heuristic(s, target));
            }
        }
        let mut settled = 0usize;
        while let Some((v, _)) = heap.pop() {
            settled += 1;
            if v == target {
                return (dist[v as usize], settled);
            }
            let d = dist[v as usize];
            for nb in graph.neighbors(v) {
                let nd = d + nb.weight;
                if nd < dist[nb.node as usize] {
                    dist[nb.node as usize] = nd;
                    heap.push_or_decrease(nb.node, nd + self.heuristic(nb.node, target));
                }
            }
        }
        (INFINITY, settled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_all;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(seed: u64, n: usize) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: Vec<(NodeId, NodeId, f64)> = (1..n)
            .map(|v| {
                (
                    rng.gen_range(0..v) as NodeId,
                    v as NodeId,
                    rng.gen_range(0.5..3.0),
                )
            })
            .collect();
        for _ in 0..n {
            let u = rng.gen_range(0..n) as NodeId;
            let v = rng.gen_range(0..n) as NodeId;
            if u != v {
                edges.push((u, v, rng.gen_range(0.5..3.0)));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn exact_on_small_graph() {
        let g = random_graph(1, 30);
        let alt = AltOracle::new(&g, &[0, 15]);
        let oracle = dijkstra_all(&g, &[(3, 0.0)]);
        for (t, &want) in oracle.iter().enumerate().take(30) {
            let (d, _) = alt.distance(&g, &[(3, 0.0)], t as NodeId);
            assert!((d - want).abs() < 1e-9, "target {t}: {d} vs {want}");
        }
    }

    #[test]
    fn multi_seed_sources_work() {
        let g = random_graph(2, 25);
        let alt = AltOracle::new(&g, &[0]);
        let plain = dijkstra_all(&g, &[(1, 0.4), (2, 0.1)]);
        let (d, _) = alt.distance(&g, &[(1, 0.4), (2, 0.1)], 20);
        assert!((d - plain[20]).abs() < 1e-9);
    }

    #[test]
    fn unreachable_target_is_infinite() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let alt = AltOracle::new(&g, &[0]);
        let (d, _) = alt.distance(&g, &[(0, 0.0)], 3);
        assert_eq!(d, INFINITY);
    }

    #[test]
    #[should_panic(expected = "landmark")]
    fn rejects_empty_landmarks() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 1.0)]);
        AltOracle::new(&g, &[]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// ALT distances equal Dijkstra for random graphs/landmarks.
        #[test]
        fn matches_dijkstra(seed in 0u64..300, n in 2usize..40, l in 1usize..4) {
            let g = random_graph(seed, n);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
            let landmarks: Vec<NodeId> = (0..l).map(|_| rng.gen_range(0..n) as NodeId).collect();
            let alt = AltOracle::new(&g, &landmarks);
            let s = rng.gen_range(0..n) as NodeId;
            let t = rng.gen_range(0..n) as NodeId;
            let oracle = dijkstra_all(&g, &[(s, 0.0)]);
            let (d, _) = alt.distance(&g, &[(s, 0.0)], t);
            prop_assert!((d - oracle[t as usize]).abs() < 1e-9
                || (d == INFINITY && oracle[t as usize] == INFINITY));
        }
    }
}
