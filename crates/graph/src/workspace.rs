//! Reusable Dijkstra state for allocation-free repeated runs.
//!
//! Refinement (Algorithm 2, lines 29–31) fires thousands of bounded and
//! multi-target Dijkstras per query — one per candidate ball and one per
//! `dist_RN` column. Allocating a fresh `Vec<f64>` distance map, a fresh
//! heap, and a fresh pending-target array for each run dominates the cost
//! on small-to-medium searches. [`DijkstraWorkspace`] keeps all three
//! between runs:
//!
//! * the dense distance map is reset lazily via a *touched list* — only
//!   the entries the previous run wrote are restored to `INFINITY`, so a
//!   run over `t` vertices costs `O(t log t)` regardless of graph size;
//! * the [`IndexedMinHeap`] keeps its backing allocations across
//!   [`IndexedMinHeap::clear`] calls;
//! * the pending-target array is *generation-stamped*: a `u32` stamp per
//!   vertex marks membership in the current run's target set, so marking
//!   targets never requires clearing the previous run's marks (and
//!   duplicate targets — e.g. two POIs sharing an edge endpoint — are
//!   deduplicated for free, keeping early termination and settle counts
//!   exact).
//!
//! Results are identical to the fresh-allocation functions in
//! [`crate::dijkstra`] (property-tested against them); in fact those
//! functions are now thin wrappers that run a throwaway workspace.

use crate::csr::{CsrGraph, NodeId};
use crate::heap::IndexedMinHeap;

/// Sentinel distance for unreachable vertices (same as
/// [`crate::dijkstra::INFINITY`]).
const INFINITY: f64 = f64::INFINITY;

/// Reusable state for repeated Dijkstra runs over graphs of any size.
///
/// One workspace serves one thread; create one per worker for parallel
/// refinement. The distance map written by the latest run stays readable
/// through [`DijkstraWorkspace::dist`] until the next run begins.
#[derive(Debug, Default)]
pub struct DijkstraWorkspace {
    /// Dense distance map; entries outside `touched` are `INFINITY`.
    dist: Vec<f64>,
    /// Vertices whose `dist` entry the latest run wrote (settled *or*
    /// relaxed); reset lazily at the start of the next run.
    touched: Vec<NodeId>,
    /// Recycled priority queue.
    heap: IndexedMinHeap,
    /// Generation stamp per vertex for target-set membership.
    target_stamp: Vec<u32>,
    /// Current generation; `target_stamp[v] == generation` ⇔ `v` is a
    /// still-unsettled target of the current run.
    generation: u32,
    /// Settled vertices of the latest run, in non-decreasing distance
    /// order.
    settled: Vec<NodeId>,
    /// Lifetime count of runs prepared by this workspace.
    resets: u64,
    /// Runs that reused already-sized storage (no growth needed) — the
    /// telemetry signal that heap/map recycling is actually paying off.
    recycles: u64,
}

impl DijkstraWorkspace {
    /// Creates an empty workspace; storage is sized on first use.
    pub fn new() -> Self {
        DijkstraWorkspace::default()
    }

    /// Distance map of the latest run. `dist()[v] == INFINITY` means `v`
    /// was unreachable or outside the explored radius. Valid until the
    /// next `run_*` call.
    #[inline]
    pub fn dist(&self) -> &[f64] {
        &self.dist
    }

    /// Settled vertices of the latest run, in non-decreasing distance
    /// order. Valid until the next `run_*` call.
    #[inline]
    pub fn settled(&self) -> &[NodeId] {
        &self.settled
    }

    /// Lifetime number of runs this workspace prepared.
    #[inline]
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Lifetime number of runs that reused already-sized storage (lazy
    /// touched-list reset + recycled heap, no allocation).
    #[inline]
    pub fn recycles(&self) -> u64 {
        self.recycles
    }

    /// Consumes the workspace, returning the latest distance map.
    pub fn into_dist(self) -> Vec<f64> {
        self.dist
    }

    /// Consumes the workspace, returning the latest `(distance map,
    /// settled vertices)` pair — the shape of the one-shot functions in
    /// [`crate::dijkstra`].
    pub fn into_parts(self) -> (Vec<f64>, Vec<NodeId>) {
        (self.dist, self.settled)
    }

    /// Radius-bounded run: settles every vertex within `radius` of the
    /// seeds (see [`crate::dijkstra::dijkstra_bounded`]). Returns the
    /// number of settled vertices.
    pub fn run_bounded(&mut self, graph: &CsrGraph, seeds: &[(NodeId, f64)], radius: f64) -> u64 {
        self.run(graph, seeds, radius, None)
    }

    /// Early-terminating multi-target run (see
    /// [`crate::dijkstra::dijkstra_targets`]). Duplicate entries in
    /// `targets` are deduplicated, so the search stops as soon as every
    /// *distinct* target is settled. Returns the number of settled
    /// vertices — the unit budgets charge, never inflated by duplicate
    /// targets.
    pub fn run_targets(
        &mut self,
        graph: &CsrGraph,
        seeds: &[(NodeId, f64)],
        targets: &[NodeId],
    ) -> u64 {
        self.run(graph, seeds, INFINITY, Some(targets))
    }

    /// Grows per-vertex storage to cover `n` vertices and rolls the
    /// target generation.
    fn prepare(&mut self, n: usize) {
        self.resets += 1;
        if self.dist.len() < n {
            self.dist.resize(n, INFINITY);
            self.target_stamp.resize(n, 0);
            self.heap.grow(n);
        } else if n > 0 {
            self.recycles += 1;
        }
        // Reset only what the previous run wrote.
        for &v in &self.touched {
            self.dist[v as usize] = INFINITY;
        }
        self.touched.clear();
        self.settled.clear();
        self.heap.clear();
        // Roll the generation; on wrap, hard-reset the stamps once.
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.target_stamp.fill(0);
            self.generation = 1;
        }
    }

    fn run(
        &mut self,
        graph: &CsrGraph,
        seeds: &[(NodeId, f64)],
        radius: f64,
        targets: Option<&[NodeId]>,
    ) -> u64 {
        let n = graph.num_nodes();
        self.prepare(n);
        debug_assert!(!radius.is_nan(), "radius must not be NaN");
        for &(s, d0) in seeds {
            debug_assert!(d0 >= 0.0, "seed distances must be non-negative");
            if d0 < self.dist[s as usize] {
                if self.dist[s as usize] == INFINITY {
                    self.touched.push(s);
                }
                self.dist[s as usize] = d0;
                self.heap.push_or_decrease(s, d0);
            }
        }
        let mut remaining = 0usize;
        if let Some(ts) = targets {
            for &t in ts {
                // Stamp-dedup: two POIs sharing an edge endpoint push the
                // same vertex twice; it must count once.
                if self.target_stamp[t as usize] != self.generation {
                    self.target_stamp[t as usize] = self.generation;
                    remaining += 1;
                }
            }
            if remaining == 0 {
                return 0;
            }
        }
        while let Some((v, d)) = self.heap.pop() {
            if d > radius {
                break;
            }
            self.settled.push(v);
            if targets.is_some() && self.target_stamp[v as usize] == self.generation {
                self.target_stamp[v as usize] = self.generation.wrapping_sub(1);
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            for nb in graph.neighbors(v) {
                let nd = d + nb.weight;
                if nd < self.dist[nb.node as usize] && nd <= radius {
                    if self.dist[nb.node as usize] == INFINITY {
                        self.touched.push(nb.node);
                    }
                    self.dist[nb.node as usize] = nd;
                    self.heap.push_or_decrease(nb.node, nd);
                }
            }
        }
        self.settled.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{dijkstra_all, dijkstra_bounded, dijkstra_targets_counted};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(rng: &mut StdRng, n: usize, extra: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for v in 1..n {
            let u = rng.gen_range(0..v);
            edges.push((u as NodeId, v as NodeId, rng.gen_range(0.1..10.0)));
        }
        for _ in 0..extra {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push((u as NodeId, v as NodeId, rng.gen_range(0.1..10.0)));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn reuse_across_runs_resets_state() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 3.0), (2, 3, 0.5)]);
        let mut ws = DijkstraWorkspace::new();
        ws.run_bounded(&g, &[(0, 0.0)], f64::INFINITY);
        assert_eq!(ws.dist()[3], 2.0);
        // Second run from a different seed must not see stale entries.
        ws.run_bounded(&g, &[(2, 0.0)], 0.6);
        assert_eq!(ws.dist()[3], 0.5);
        assert_eq!(ws.dist()[1], f64::INFINITY, "stale entry leaked");
        assert_eq!(ws.dist()[0], f64::INFINITY);
        // The first run grew storage, the second reused it.
        assert_eq!(ws.resets(), 2);
        assert_eq!(ws.recycles(), 1);
    }

    #[test]
    fn duplicate_targets_settle_once() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let mut ws = DijkstraWorkspace::new();
        // Vertex 1 listed three times: termination must fire as soon as
        // the *distinct* set {1, 2} settles (3 settled vertices: 0, 1, 2).
        let settled = ws.run_targets(&g, &[(0, 0.0)], &[1, 1, 2, 1]);
        assert_eq!(settled, 3);
        assert_eq!(ws.dist()[2], 2.0);
        assert_eq!(ws.dist()[3], f64::INFINITY);
    }

    #[test]
    fn workspace_survives_generation_wrap() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let mut ws = DijkstraWorkspace::new();
        ws.generation = u32::MAX - 1;
        for _ in 0..4 {
            let settled = ws.run_targets(&g, &[(0, 0.0)], &[2]);
            assert_eq!(settled, 3);
            assert_eq!(ws.dist()[2], 2.0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// A reused workspace matches the fresh-allocation oracle across
        /// a sequence of mixed bounded/targeted runs on random graphs.
        #[test]
        fn matches_fresh_allocation_oracle(seed in 0u64..1000, n in 2usize..24, extra in 0usize..30) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_graph(&mut rng, n, extra);
            let mut ws = DijkstraWorkspace::new();
            for round in 0..6 {
                let s = rng.gen_range(0..n) as NodeId;
                if round % 2 == 0 {
                    let radius = rng.gen_range(0.5..25.0);
                    let (oracle, settled) = dijkstra_bounded(&g, &[(s, 0.0)], radius);
                    let count = ws.run_bounded(&g, &[(s, 0.0)], radius);
                    prop_assert_eq!(count as usize, settled.len());
                    prop_assert_eq!(ws.settled(), &settled[..]);
                    for (v, &want) in oracle.iter().enumerate() {
                        prop_assert!(
                            (ws.dist()[v] - want).abs() < 1e-12 || ws.dist()[v] == want,
                            "round {} v {}: ws={} oracle={}", round, v, ws.dist()[v], want
                        );
                    }
                } else {
                    let t1 = rng.gen_range(0..n) as NodeId;
                    let t2 = rng.gen_range(0..n) as NodeId;
                    let targets = [t1, t2, t1]; // deliberate duplicate
                    let (oracle, count_oracle) = dijkstra_targets_counted(&g, &[(s, 0.0)], &targets);
                    let count = ws.run_targets(&g, &[(s, 0.0)], &targets);
                    prop_assert_eq!(count, count_oracle);
                    // Early termination leaves tails unexplored in both.
                    for &t in &targets {
                        prop_assert_eq!(ws.dist()[t as usize], oracle[t as usize]);
                    }
                }
            }
            // Full runs agree with dijkstra_all exactly.
            let full = dijkstra_all(&g, &[(0, 0.0)]);
            ws.run_bounded(&g, &[(0, 0.0)], f64::INFINITY);
            prop_assert_eq!(ws.dist(), &full[..]);
        }
    }
}
