//! Connected components and subset connectivity.
//!
//! GP-SSN requires the returned user group `S` to be *connected* in the
//! social network (Definition 5, condition 2). [`is_connected_subset`]
//! checks exactly that predicate for a candidate group.

use crate::csr::{CsrGraph, NodeId};

/// Labels each vertex with a component id in `0..k` and returns
/// `(labels, k)`.
pub fn connected_components(graph: &CsrGraph) -> (Vec<u32>, usize) {
    let n = graph.num_nodes();
    const UNSET: u32 = u32::MAX;
    let mut label = vec![UNSET; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for start in 0..n {
        if label[start] != UNSET {
            continue;
        }
        label[start] = next;
        stack.push(start as NodeId);
        while let Some(v) = stack.pop() {
            for nb in graph.neighbors(v) {
                if label[nb.node as usize] == UNSET {
                    label[nb.node as usize] = next;
                    stack.push(nb.node);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// Whether the induced subgraph on `subset` is connected.
///
/// An empty subset is vacuously connected; a singleton is connected.
/// Runs a DFS restricted to `subset` membership.
pub fn is_connected_subset(graph: &CsrGraph, subset: &[NodeId]) -> bool {
    match subset.len() {
        0 | 1 => return true,
        _ => {}
    }
    let mut member = vec![false; graph.num_nodes()];
    for &v in subset {
        member[v as usize] = true;
    }
    let mut seen = vec![false; graph.num_nodes()];
    let mut stack = vec![subset[0]];
    seen[subset[0] as usize] = true;
    let mut count = 1usize;
    while let Some(v) = stack.pop() {
        for nb in graph.neighbors(v) {
            let u = nb.node as usize;
            if member[u] && !seen[u] {
                seen[u] = true;
                count += 1;
                stack.push(nb.node);
            }
        }
    }
    count == subset.len()
}

/// Size of the largest connected component.
pub fn largest_component_size(graph: &CsrGraph) -> usize {
    let (labels, k) = connected_components(graph);
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_components() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = CsrGraph::from_edges(3, &[]);
        let (_, k) = connected_components(&g);
        assert_eq!(k, 3);
    }

    #[test]
    fn subset_connectivity() {
        // Path 0-1-2-3 plus isolated 4.
        let g = CsrGraph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        assert!(is_connected_subset(&g, &[0, 1, 2]));
        assert!(is_connected_subset(&g, &[1, 2, 3]));
        assert!(!is_connected_subset(&g, &[0, 2])); // 1 missing breaks the path
        assert!(!is_connected_subset(&g, &[0, 4]));
        assert!(is_connected_subset(&g, &[4]));
        assert!(is_connected_subset(&g, &[]));
    }

    #[test]
    fn subset_connectivity_uses_only_subset_edges() {
        // Star: 0 is the hub. {1,2} are only connected *through* 0.
        let g = CsrGraph::from_edges(3, &[(0, 1, 1.0), (0, 2, 1.0)]);
        assert!(!is_connected_subset(&g, &[1, 2]));
        assert!(is_connected_subset(&g, &[0, 1, 2]));
    }

    #[test]
    fn largest_component() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        assert_eq!(largest_component_size(&g), 3);
    }
}
