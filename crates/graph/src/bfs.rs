//! Breadth-first hop distances.
//!
//! Social-network distance `dist_SN` in the paper is the number of hops
//! between users, so BFS (not Dijkstra) is the exact oracle. The bounded
//! variant implements the paper's social-network distance pruning support:
//! GP-SSN only ever needs users within `τ - 1` hops of the query user
//! (Lemma 4).

use crate::csr::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Sentinel for unreachable vertices in hop-distance maps.
pub const UNREACHABLE: u32 = u32::MAX;

/// Full single-source hop distances. `result[v] == UNREACHABLE` if `v` is
/// not connected to `source`.
pub fn hop_distances(graph: &CsrGraph, source: NodeId) -> Vec<u32> {
    bounded_hops(graph, source, u32::MAX)
}

/// Hop distances truncated at `max_hops`: vertices farther than `max_hops`
/// keep [`UNREACHABLE`]. Runs in time proportional to the explored ball.
pub fn bounded_hops(graph: &CsrGraph, source: NodeId, max_hops: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; graph.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d >= max_hops {
            continue;
        }
        for nb in graph.neighbors(v) {
            if dist[nb.node as usize] == UNREACHABLE {
                dist[nb.node as usize] = d + 1;
                queue.push_back(nb.node);
            }
        }
    }
    dist
}

/// Vertices within `max_hops` hops of `source` (including `source`),
/// together with their hop distances, in BFS order.
pub fn ball(graph: &CsrGraph, source: NodeId, max_hops: u32) -> Vec<(NodeId, u32)> {
    let dist = bounded_hops(graph, source, max_hops);
    let mut out: Vec<(NodeId, u32)> = dist
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .map(|(v, &d)| (v as NodeId, d))
        .collect();
    out.sort_by_key(|&(v, d)| (d, v));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
    }

    #[test]
    fn hop_distances_on_path() {
        let d = hop_distances(&path5(), 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn hops_ignore_weights() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 100.0), (1, 2, 100.0), (0, 2, 0.1)]);
        let d = hop_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 1]);
    }

    #[test]
    fn bounded_truncates() {
        let d = bounded_hops(&path5(), 0, 2);
        assert_eq!(d, vec![0, 1, 2, UNREACHABLE, UNREACHABLE]);
    }

    #[test]
    fn bounded_zero_is_source_only() {
        let d = bounded_hops(&path5(), 2, 0);
        assert_eq!(
            d,
            vec![UNREACHABLE, UNREACHABLE, 0, UNREACHABLE, UNREACHABLE]
        );
    }

    #[test]
    fn disconnected_component_unreachable() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let d = hop_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn ball_contents_and_order() {
        let b = ball(&path5(), 2, 1);
        assert_eq!(b, vec![(2, 0), (1, 1), (3, 1)]);
    }

    #[test]
    fn bounded_matches_full_within_radius() {
        let g = path5();
        let full = hop_distances(&g, 1);
        let bounded = bounded_hops(&g, 1, 2);
        for v in 0..5 {
            if full[v] <= 2 {
                assert_eq!(bounded[v], full[v]);
            } else {
                assert_eq!(bounded[v], UNREACHABLE);
            }
        }
    }
}
