//! Shared sampling utilities for synthetic data generation.
//!
//! The paper's synthetic workloads (Section 6.1) draw degrees, POI counts,
//! keywords, and interest probabilities from either a Uniform or a Zipf
//! distribution (the `UNI` and `ZIPF` datasets). This module provides a
//! seedable index sampler for both, shared by the road-network and
//! social-network generators.

use rand::Rng;

/// Which distribution to draw discrete indices from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDistribution {
    /// Uniform over `0..k`.
    Uniform,
    /// Zipf with exponent 1 over `0..k` (rank 1 is most likely).
    Zipf,
}

/// A prepared sampler over `0..k` for one of the [`ValueDistribution`]s.
#[derive(Debug, Clone)]
pub struct IndexSampler {
    k: usize,
    /// Cumulative distribution for Zipf; empty for Uniform.
    cdf: Vec<f64>,
}

impl IndexSampler {
    /// Prepares a sampler over `0..k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(dist: ValueDistribution, k: usize) -> Self {
        assert!(k > 0, "cannot sample from an empty range");
        let cdf = match dist {
            ValueDistribution::Uniform => Vec::new(),
            ValueDistribution::Zipf => {
                let mut acc = 0.0;
                let mut cdf = Vec::with_capacity(k);
                for i in 0..k {
                    acc += 1.0 / (i as f64 + 1.0);
                    cdf.push(acc);
                }
                let total = acc;
                for c in &mut cdf {
                    *c /= total;
                }
                cdf
            }
        };
        IndexSampler { k, cdf }
    }

    /// Draws an index in `0..k`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if self.cdf.is_empty() {
            rng.gen_range(0..self.k)
        } else {
            let u: f64 = rng.gen();
            match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
                Ok(i) => (i + 1).min(self.k - 1),
                Err(i) => i.min(self.k - 1),
            }
        }
    }

    /// Size of the sampled range.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Never true for a constructed sampler.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_covers_range() {
        let s = IndexSampler::new(ValueDistribution::Uniform, 5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[s.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let s = IndexSampler::new(ValueDistribution::Zipf, 10);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[0] > 2 * counts[9]);
        // Rough check against the harmonic weights: P(0) ~ 1/H_10 ~ 0.34.
        let p0 = counts[0] as f64 / 20_000.0;
        assert!((p0 - 0.34).abs() < 0.05, "p0 = {p0}");
    }

    #[test]
    fn zipf_stays_in_range() {
        let s = IndexSampler::new(ValueDistribution::Zipf, 3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(s.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn rejects_zero_k() {
        IndexSampler::new(ValueDistribution::Uniform, 0);
    }

    #[test]
    fn singleton_range_always_zero() {
        let s = IndexSampler::new(ValueDistribution::Zipf, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng), 0);
        }
    }
}
