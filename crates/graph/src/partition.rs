//! Balanced, connectivity-aware graph partitioning.
//!
//! The social-network index `I_S` (paper Section 4.1) partitions `G_s`
//! into subgraphs that become leaf nodes, "via standard graph partitioning
//! methods such as \[28\]" (METIS). We implement a self-contained stand-in:
//! BFS-seeded greedy growth producing connected parts of bounded size,
//! followed by a boundary-refinement pass that reduces the edge cut while
//! preserving balance. Partition quality only affects index constants, not
//! the correctness of any pruning rule.

use crate::csr::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Result of partitioning: a part id per vertex plus the member list of
/// each part.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// `assignment[v]` = part id of vertex `v`.
    pub assignment: Vec<u32>,
    /// `parts[p]` = vertices of part `p`, each non-empty.
    pub parts: Vec<Vec<NodeId>>,
}

impl Partitioning {
    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Number of edges whose endpoints lie in different parts.
    pub fn edge_cut(&self, graph: &CsrGraph) -> usize {
        graph
            .edges()
            .filter(|&(u, v, _)| self.assignment[u as usize] != self.assignment[v as usize])
            .count()
    }
}

/// Partitions `graph` into parts of at most `max_part_size` vertices.
///
/// Parts are grown by BFS from unassigned seeds, so each part is connected
/// within the subgraph it was grown in (isolated vertices form singleton
/// parts). A single refinement sweep then relocates boundary vertices whose
/// move strictly reduces the edge cut without overflowing the target part.
///
/// # Panics
///
/// Panics if `max_part_size == 0`.
pub fn partition_graph(graph: &CsrGraph, max_part_size: usize) -> Partitioning {
    assert!(max_part_size > 0, "max_part_size must be positive");
    let n = graph.num_nodes();
    const UNASSIGNED: u32 = u32::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut parts: Vec<Vec<NodeId>> = Vec::new();

    // Greedy BFS growth.
    let mut queue = VecDeque::new();
    for seed in 0..n {
        if assignment[seed] != UNASSIGNED {
            continue;
        }
        let part_id = parts.len() as u32;
        let mut members = Vec::new();
        queue.clear();
        queue.push_back(seed as NodeId);
        assignment[seed] = part_id;
        while let Some(v) = queue.pop_front() {
            members.push(v);
            for nb in graph.neighbors(v) {
                // Never assign past the cap: everything queued is already
                // committed to this part.
                if members.len() + queue.len() >= max_part_size {
                    break;
                }
                if assignment[nb.node as usize] == UNASSIGNED {
                    assignment[nb.node as usize] = part_id;
                    queue.push_back(nb.node);
                }
            }
        }
        parts.push(members);
    }

    let mut partitioning = Partitioning { assignment, parts };
    refine(graph, &mut partitioning, max_part_size);
    partitioning
}

/// One greedy boundary-refinement sweep: move a vertex to the neighboring
/// part where it has the most neighbors, when that strictly reduces the cut
/// and respects `max_part_size` (and does not empty the source part).
fn refine(graph: &CsrGraph, p: &mut Partitioning, max_part_size: usize) {
    let n = graph.num_nodes();
    for v in 0..n as u32 {
        let from = p.assignment[v as usize];
        if p.parts[from as usize].len() <= 1 {
            continue;
        }
        // Count neighbors per adjacent part.
        let mut best_part = from;
        let mut home_links = 0usize;
        let mut best_links = 0usize;
        let neighbors = graph.neighbors(v);
        for nb in neighbors {
            let q = p.assignment[nb.node as usize];
            if q == from {
                home_links += 1;
            }
        }
        for nb in neighbors {
            let q = p.assignment[nb.node as usize];
            if q == from || q == best_part {
                continue;
            }
            let links = neighbors
                .iter()
                .filter(|m| p.assignment[m.node as usize] == q)
                .count();
            if links > best_links {
                best_links = links;
                best_part = q;
            }
        }
        if best_part != from
            && best_links > home_links
            && p.parts[best_part as usize].len() < max_part_size
        {
            p.parts[from as usize].retain(|&u| u != v);
            p.parts[best_part as usize].push(v);
            p.assignment[v as usize] = best_part;
        }
    }
    p.parts.retain(|m| !m.is_empty());
    // Reindex assignments after possible part removal.
    for (id, members) in p.parts.iter().enumerate() {
        for &v in members {
            p.assignment[v as usize] = id as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check_invariants(g: &CsrGraph, p: &Partitioning, max_size: usize) {
        // Every vertex in exactly one part, matching its assignment.
        let mut seen = vec![false; g.num_nodes()];
        for (id, members) in p.parts.iter().enumerate() {
            assert!(!members.is_empty());
            for &v in members {
                assert!(!seen[v as usize], "vertex {v} in two parts");
                seen[v as usize] = true;
                assert_eq!(p.assignment[v as usize], id as u32);
            }
        }
        assert!(seen.iter().all(|&s| s), "some vertex unassigned");
        for members in &p.parts {
            assert!(members.len() <= max_size, "part overflows max size");
        }
    }

    #[test]
    fn partitions_path_graph() {
        let edges: Vec<_> = (0..9)
            .map(|i| (i as NodeId, i as NodeId + 1, 1.0))
            .collect();
        let g = CsrGraph::from_edges(10, &edges);
        let p = partition_graph(&g, 3);
        check_invariants(&g, &p, 3);
        assert!(p.num_parts() >= 4); // ceil(10/3)
    }

    #[test]
    fn singleton_parts_for_isolated_vertices() {
        let g = CsrGraph::from_edges(3, &[]);
        let p = partition_graph(&g, 5);
        check_invariants(&g, &p, 5);
        assert_eq!(p.num_parts(), 3);
    }

    #[test]
    fn whole_graph_in_one_part_when_cap_is_large() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let p = partition_graph(&g, 100);
        check_invariants(&g, &p, 100);
        assert_eq!(p.num_parts(), 1);
    }

    #[test]
    fn edge_cut_counts_cross_edges() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0), (1, 2, 1.0)]);
        let p = Partitioning {
            assignment: vec![0, 0, 1, 1],
            parts: vec![vec![0, 1], vec![2, 3]],
        };
        assert_eq!(p.edge_cut(&g), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_cap() {
        let g = CsrGraph::from_edges(1, &[]);
        partition_graph(&g, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Invariants hold on random graphs across part-size caps.
        #[test]
        fn invariants_on_random_graphs(seed in 0u64..500, n in 1usize..60, cap in 1usize..20) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut edges = Vec::new();
            for v in 1..n {
                if rng.gen_bool(0.8) {
                    let u = rng.gen_range(0..v);
                    edges.push((u as NodeId, v as NodeId, 1.0));
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            let p = partition_graph(&g, cap);
            check_invariants(&g, &p, cap);
        }
    }
}
