//! Enumeration of connected vertex subsets of fixed size containing a root.
//!
//! The GP-SSN refinement step (Algorithm 2, line 31) enumerates candidate
//! user groups `S`: connected subgraphs of the social network of size `τ`
//! containing the query user `u_q`, drawn from the surviving candidate set.
//! We use a rooted variant of the classic connected-subgraph enumeration
//! with an exclusion set, which emits every qualifying subset exactly once.

use crate::csr::{CsrGraph, NodeId};

/// Enumerates every connected subset of exactly `k` vertices that contains
/// `root`, restricted to vertices where `allowed` is `true` (pass `None`
/// for no restriction). Each subset is passed to `visit` (sorted
/// ascending); if `visit` returns `false`, enumeration stops early.
///
/// Returns the number of subsets visited.
///
/// Duplicate-freeness: children of a search node are processed in order,
/// and each processed candidate is added to a per-branch exclusion set, so
/// no subset can be generated along two different branches.
pub fn enumerate_connected_subsets<F>(
    graph: &CsrGraph,
    root: NodeId,
    k: usize,
    allowed: Option<&[bool]>,
    visit: &mut F,
) -> usize
where
    F: FnMut(&[NodeId]) -> bool,
{
    if k == 0 {
        return 0;
    }
    if let Some(a) = allowed {
        debug_assert_eq!(a.len(), graph.num_nodes());
        if !a[root as usize] {
            return 0;
        }
    }
    let n = graph.num_nodes();
    let mut state = State {
        graph,
        allowed,
        k,
        in_set: vec![false; n],
        excluded: vec![false; n],
        set: Vec::with_capacity(k),
        count: 0,
        stopped: false,
    };
    state.in_set[root as usize] = true;
    state.set.push(root);
    if k == 1 {
        let mut sorted = state.set.clone();
        sorted.sort_unstable();
        if visit(&sorted) {
            return 1;
        }
        return 1;
    }
    let frontier = state.initial_frontier(root);
    state.extend(frontier, visit);
    state.count
}

struct State<'a> {
    graph: &'a CsrGraph,
    allowed: Option<&'a [bool]>,
    k: usize,
    in_set: Vec<bool>,
    excluded: Vec<bool>,
    set: Vec<NodeId>,
    count: usize,
    stopped: bool,
}

impl<'a> State<'a> {
    fn permitted(&self, v: NodeId) -> bool {
        self.allowed.is_none_or(|a| a[v as usize])
    }

    fn initial_frontier(&self, root: NodeId) -> Vec<NodeId> {
        let mut f: Vec<NodeId> = self
            .graph
            .neighbors(root)
            .iter()
            .map(|nb| nb.node)
            .filter(|&v| self.permitted(v))
            .collect();
        f.sort_unstable();
        f.dedup();
        f
    }

    /// `frontier`: candidate extension vertices (adjacent to the current
    /// set, not in it, not excluded on this branch).
    fn extend<F>(&mut self, frontier: Vec<NodeId>, visit: &mut F)
    where
        F: FnMut(&[NodeId]) -> bool,
    {
        let mut newly_excluded = Vec::new();
        for (i, &v) in frontier.iter().enumerate() {
            if self.stopped {
                break;
            }
            if self.excluded[v as usize] || self.in_set[v as usize] {
                continue;
            }
            self.in_set[v as usize] = true;
            self.set.push(v);
            if self.set.len() == self.k {
                self.count += 1;
                let mut sorted = self.set.clone();
                sorted.sort_unstable();
                if !visit(&sorted) {
                    self.stopped = true;
                }
            } else {
                // New frontier: remaining candidates at this level plus the
                // not-yet-seen neighbors of `v`.
                let mut next: Vec<NodeId> = frontier[i + 1..]
                    .iter()
                    .copied()
                    .filter(|&u| !self.excluded[u as usize] && !self.in_set[u as usize])
                    .collect();
                for nb in self.graph.neighbors(v) {
                    let u = nb.node;
                    if !self.in_set[u as usize]
                        && !self.excluded[u as usize]
                        && self.permitted(u)
                        && !next.contains(&u)
                        && !frontier[..=i].contains(&u)
                    {
                        next.push(u);
                    }
                }
                self.extend(next, visit);
            }
            self.set.pop();
            self.in_set[v as usize] = false;
            // Exclude v from the remaining branches at this level.
            self.excluded[v as usize] = true;
            newly_excluded.push(v);
        }
        for v in newly_excluded {
            self.excluded[v as usize] = false;
        }
    }
}

/// Convenience: collect all connected `k`-subsets containing `root`.
pub fn connected_subsets(
    graph: &CsrGraph,
    root: NodeId,
    k: usize,
    allowed: Option<&[bool]>,
) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    enumerate_connected_subsets(graph, root, k, allowed, &mut |s| {
        out.push(s.to_vec());
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected_subset;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute_force(g: &CsrGraph, root: NodeId, k: usize) -> Vec<Vec<NodeId>> {
        let n = g.num_nodes();
        let mut out = Vec::new();
        // Enumerate all k-subsets via bitmask (n small in tests).
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != k || mask & (1 << root) == 0 {
                continue;
            }
            let subset: Vec<NodeId> = (0..n as u32).filter(|&v| mask & (1 << v) != 0).collect();
            if is_connected_subset(g, &subset) {
                out.push(subset);
            }
        }
        out.sort();
        out
    }

    #[test]
    fn triangle_pairs() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let mut subs = connected_subsets(&g, 0, 2, None);
        subs.sort();
        assert_eq!(subs, vec![vec![0, 1], vec![0, 2]]);
    }

    #[test]
    fn path_triples() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let mut subs = connected_subsets(&g, 1, 3, None);
        subs.sort();
        assert_eq!(subs, vec![vec![0, 1, 2], vec![1, 2, 3]]);
    }

    #[test]
    fn k_equals_one() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 1.0)]);
        assert_eq!(connected_subsets(&g, 1, 1, None), vec![vec![1]]);
    }

    #[test]
    fn k_zero_yields_nothing() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 1.0)]);
        assert!(connected_subsets(&g, 0, 0, None).is_empty());
    }

    #[test]
    fn allowed_filter_restricts() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let allowed = vec![true, true, true, false];
        let mut subs = connected_subsets(&g, 1, 3, Some(&allowed));
        subs.sort();
        assert_eq!(subs, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn root_not_allowed_yields_nothing() {
        let g = CsrGraph::from_edges(2, &[(0, 1, 1.0)]);
        let allowed = vec![false, true];
        assert!(connected_subsets(&g, 0, 2, Some(&allowed)).is_empty());
    }

    #[test]
    fn early_stop_halts_enumeration() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)]);
        let mut seen = 0;
        enumerate_connected_subsets(&g, 0, 2, None, &mut |_| {
            seen += 1;
            seen < 2
        });
        assert_eq!(seen, 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Enumeration matches brute force: same subsets, no duplicates.
        #[test]
        fn matches_brute_force(seed in 0u64..500, n in 1usize..9, k in 1usize..5, p in 0.2f64..0.9) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(p) {
                        edges.push((u as NodeId, v as NodeId, 1.0));
                    }
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            let root = rng.gen_range(0..n) as NodeId;
            let k = k.min(n);
            let mut got = connected_subsets(&g, root, k, None);
            got.sort();
            let before_dedup = got.len();
            got.dedup();
            prop_assert_eq!(before_dedup, got.len(), "duplicates emitted");
            prop_assert_eq!(got, brute_force(&g, root, k));
        }
    }
}
