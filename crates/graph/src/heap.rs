//! Indexed binary min-heap with decrease-key.
//!
//! The workhorse priority queue behind Dijkstra traversals. Keys are `f64`
//! distances; items are dense `u32` ids (vertex ids), so positions are
//! tracked in a flat vector rather than a hash map.

/// A binary min-heap over items `0..capacity` keyed by `f64`, supporting
/// `decrease_key` in `O(log n)`.
///
/// Every item may be present at most once. Keys must be non-NaN; this is
/// enforced by debug assertions on insertion.
#[derive(Debug, Clone, Default)]
pub struct IndexedMinHeap {
    /// Heap array of `(key, item)`.
    heap: Vec<(f64, u32)>,
    /// `pos[item]` = index in `heap`, or `NOT_IN_HEAP`.
    pos: Vec<u32>,
}

const NOT_IN_HEAP: u32 = u32::MAX;

impl IndexedMinHeap {
    /// Creates a heap able to hold items `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        IndexedMinHeap {
            heap: Vec::new(),
            pos: vec![NOT_IN_HEAP; capacity],
        }
    }

    /// Grows the item capacity to at least `capacity` (never shrinks;
    /// existing contents are preserved). Lets a recycled heap follow the
    /// largest graph it has served.
    pub fn grow(&mut self, capacity: usize) {
        if self.pos.len() < capacity {
            self.pos.resize(capacity, NOT_IN_HEAP);
        }
    }

    /// Number of items currently in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `item` is currently in the heap.
    #[inline]
    pub fn contains(&self, item: u32) -> bool {
        self.pos[item as usize] != NOT_IN_HEAP
    }

    /// Current key of `item`, if present.
    pub fn key_of(&self, item: u32) -> Option<f64> {
        let p = self.pos[item as usize];
        (p != NOT_IN_HEAP).then(|| self.heap[p as usize].0)
    }

    /// Inserts `item` with `key`, or lowers its key if already present with
    /// a larger key. Returns `true` if the heap changed.
    pub fn push_or_decrease(&mut self, item: u32, key: f64) -> bool {
        debug_assert!(!key.is_nan(), "heap keys must not be NaN");
        match self.pos[item as usize] {
            NOT_IN_HEAP => {
                let idx = self.heap.len();
                self.heap.push((key, item));
                self.pos[item as usize] = idx as u32;
                self.sift_up(idx);
                true
            }
            p => {
                let p = p as usize;
                if key < self.heap[p].0 {
                    self.heap[p].0 = key;
                    self.sift_up(p);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Removes and returns the item with the smallest key.
    pub fn pop(&mut self) -> Option<(u32, f64)> {
        if self.heap.is_empty() {
            return None;
        }
        let (key, item) = self.heap.swap_remove(0);
        self.pos[item as usize] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            let moved = self.heap[0].1;
            self.pos[moved as usize] = 0;
            self.sift_down(0);
        }
        Some((item, key))
    }

    /// Smallest key without removing it.
    pub fn peek_key(&self) -> Option<f64> {
        self.heap.first().map(|&(k, _)| k)
    }

    /// Removes all items, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        for &(_, item) in &self.heap {
            self.pos[item as usize] = NOT_IN_HEAP;
        }
        self.heap.clear();
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.heap[idx].0 < self.heap[parent].0 {
                self.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        loop {
            let left = 2 * idx + 1;
            let right = left + 1;
            let mut smallest = idx;
            if left < self.heap.len() && self.heap[left].0 < self.heap[smallest].0 {
                smallest = left;
            }
            if right < self.heap.len() && self.heap[right].0 < self.heap[smallest].0 {
                smallest = right;
            }
            if smallest == idx {
                break;
            }
            self.swap(idx, smallest);
            idx = smallest;
        }
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1 as usize] = a as u32;
        self.pos[self.heap[b].1 as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_key_order() {
        let mut h = IndexedMinHeap::new(5);
        h.push_or_decrease(0, 3.0);
        h.push_or_decrease(1, 1.0);
        h.push_or_decrease(2, 2.0);
        assert_eq!(h.pop(), Some((1, 1.0)));
        assert_eq!(h.pop(), Some((2, 2.0)));
        assert_eq!(h.pop(), Some((0, 3.0)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedMinHeap::new(3);
        h.push_or_decrease(0, 10.0);
        h.push_or_decrease(1, 5.0);
        assert!(h.push_or_decrease(0, 1.0));
        assert_eq!(h.pop(), Some((0, 1.0)));
    }

    #[test]
    fn increase_attempt_is_ignored() {
        let mut h = IndexedMinHeap::new(2);
        h.push_or_decrease(0, 1.0);
        assert!(!h.push_or_decrease(0, 5.0));
        assert_eq!(h.key_of(0), Some(1.0));
    }

    #[test]
    fn contains_and_clear() {
        let mut h = IndexedMinHeap::new(4);
        h.push_or_decrease(3, 1.5);
        assert!(h.contains(3));
        assert!(!h.contains(0));
        h.clear();
        assert!(!h.contains(3));
        assert!(h.is_empty());
        // Reusable after clear.
        h.push_or_decrease(3, 0.5);
        assert_eq!(h.pop(), Some((3, 0.5)));
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = IndexedMinHeap::new(3);
        h.push_or_decrease(2, 7.0);
        h.push_or_decrease(1, 4.0);
        assert_eq!(h.peek_key(), Some(4.0));
        assert_eq!(h.pop().unwrap().1, 4.0);
    }

    proptest! {
        /// Popping the whole heap yields keys in non-decreasing order, and
        /// matches a sorted model, under arbitrary interleavings of inserts
        /// and decreases.
        #[test]
        fn heap_matches_sorted_model(ops in proptest::collection::vec((0u32..32, 0.0f64..100.0), 1..200)) {
            let mut h = IndexedMinHeap::new(32);
            let mut model: std::collections::HashMap<u32, f64> = Default::default();
            for (item, key) in ops {
                h.push_or_decrease(item, key);
                let e = model.entry(item).or_insert(f64::INFINITY);
                if key < *e { *e = key; }
            }
            let mut expected: Vec<f64> = model.values().copied().collect();
            expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut got = Vec::new();
            while let Some((_, k)) = h.pop() { got.push(k); }
            prop_assert_eq!(got, expected);
        }
    }
}
