//! Exact shortest-path distances over [`CsrGraph`]s.
//!
//! Three variants cover every GP-SSN access pattern:
//!
//! * [`dijkstra_all`] — full single-source distances, used offline when
//!   precomputing pivot (landmark) distance tables (one run per pivot).
//! * [`dijkstra_bounded`] — radius-bounded exploration, used to materialize
//!   road-network balls `⊙(o_i, r)` / `⊙(o_i, 2r)` around POIs.
//! * [`dijkstra_targets`] — early-terminating multi-target search, used
//!   during refinement when exact `dist_RN(u_j, o_i)` values are needed for
//!   a handful of candidate POIs only.
//!
//! Sources may be *virtual*: a point on an edge is expressed as a set of
//! `(vertex, initial_distance)` seeds (the two endpoints of its edge), so
//! the same machinery serves vertices, POIs, and user home locations.

use crate::csr::{CsrGraph, NodeId};
use crate::heap::IndexedMinHeap;
use crate::workspace::DijkstraWorkspace;

/// Sentinel distance for unreachable vertices.
pub const INFINITY: f64 = f64::INFINITY;

/// Dense distance map produced by Dijkstra runs. `dist[v] == INFINITY`
/// means `v` is unreachable (or outside the explored radius).
pub type DistanceMap = Vec<f64>;

/// Full single-source (or multi-seed) Dijkstra.
///
/// `seeds` is a list of `(vertex, initial distance)` pairs; for an ordinary
/// single-source run pass `&[(s, 0.0)]`.
pub fn dijkstra_all(graph: &CsrGraph, seeds: &[(NodeId, f64)]) -> DistanceMap {
    run(graph, seeds, INFINITY, None).0
}

/// Dijkstra restricted to vertices within `radius` of the seeds.
///
/// Returns `(dist, settled)` where `settled` lists every vertex with
/// `dist[v] <= radius`, in non-decreasing distance order. Vertices beyond
/// the radius keep `INFINITY`.
pub fn dijkstra_bounded(
    graph: &CsrGraph,
    seeds: &[(NodeId, f64)],
    radius: f64,
) -> (DistanceMap, Vec<NodeId>) {
    run(graph, seeds, radius, None)
}

/// Dijkstra that stops as soon as all `targets` are settled (or the queue
/// drains). Returns the distance map; untouched vertices keep `INFINITY`.
pub fn dijkstra_targets(
    graph: &CsrGraph,
    seeds: &[(NodeId, f64)],
    targets: &[NodeId],
) -> DistanceMap {
    run(graph, seeds, INFINITY, Some(targets)).0
}

/// Like [`dijkstra_targets`], but also reports how many vertices the
/// search settled — the unit in which query budgets meter Dijkstra work.
pub fn dijkstra_targets_counted(
    graph: &CsrGraph,
    seeds: &[(NodeId, f64)],
    targets: &[NodeId],
) -> (DistanceMap, u64) {
    let (dist, settled) = run(graph, seeds, INFINITY, Some(targets));
    (dist, settled.len() as u64)
}

/// One-shot wrapper around [`DijkstraWorkspace`]: the workspace owns the
/// single Dijkstra implementation; these free functions merely run a
/// throwaway one (so reused and fresh runs cannot diverge).
fn run(
    graph: &CsrGraph,
    seeds: &[(NodeId, f64)],
    radius: f64,
    targets: Option<&[NodeId]>,
) -> (DistanceMap, Vec<NodeId>) {
    let mut ws = DijkstraWorkspace::new();
    match targets {
        None => ws.run_bounded(graph, seeds, radius),
        Some(ts) => ws.run_targets(graph, seeds, ts),
    };
    ws.into_parts()
}

/// Dijkstra that also records the shortest-path tree: returns
/// `(dist, parent)` where `parent[v]` is the predecessor of `v` on its
/// shortest path from the seeds (`None` for seeds and unreached
/// vertices). Use [`extract_path`] to materialize a route.
pub fn dijkstra_with_parents(
    graph: &CsrGraph,
    seeds: &[(NodeId, f64)],
) -> (DistanceMap, Vec<Option<NodeId>>) {
    let n = graph.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = IndexedMinHeap::new(n);
    for &(s, d0) in seeds {
        if d0 < dist[s as usize] {
            dist[s as usize] = d0;
            heap.push_or_decrease(s, d0);
        }
    }
    while let Some((v, d)) = heap.pop() {
        for nb in graph.neighbors(v) {
            let nd = d + nb.weight;
            if nd < dist[nb.node as usize] {
                dist[nb.node as usize] = nd;
                parent[nb.node as usize] = Some(v);
                heap.push_or_decrease(nb.node, nd);
            }
        }
    }
    (dist, parent)
}

/// Walks `parent` pointers back from `target` to a seed, returning the
/// vertex sequence seed→target. Empty when `target` was never reached
/// and is not itself a seed (`parent[target].is_none()` and
/// `dist == INFINITY` at the call site distinguish the two).
pub fn extract_path(parent: &[Option<NodeId>], target: NodeId) -> Vec<NodeId> {
    let mut path = vec![target];
    let mut cur = target;
    while let Some(p) = parent[cur as usize] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    path
}

/// Reference all-pairs shortest paths (Floyd–Warshall), used only in tests
/// and property checks as the oracle for Dijkstra. The O(n³) path is
/// compiled out of release builds: enable the `testutil` feature to use
/// it from another crate's tests.
#[cfg(any(test, feature = "testutil"))]
pub fn floyd_warshall(graph: &CsrGraph) -> Vec<Vec<f64>> {
    let n = graph.num_nodes();
    let mut d = vec![vec![INFINITY; n]; n];
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        d[v][v] = 0.0;
    }
    for (u, v, w) in graph.edges() {
        let (u, v) = (u as usize, v as usize);
        if w < d[u][v] {
            d[u][v] = w;
            d[v][u] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            if d[i][k] == INFINITY {
                continue;
            }
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn diamond() -> CsrGraph {
        // 0 -1- 1 -1- 3,  0 -3- 2 -0.5- 3
        CsrGraph::from_edges(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 3.0), (2, 3, 0.5)])
    }

    #[test]
    fn single_source_distances() {
        let g = diamond();
        let d = dijkstra_all(&g, &[(0, 0.0)]);
        assert_eq!(d, vec![0.0, 1.0, 2.5, 2.0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1.0)]);
        let d = dijkstra_all(&g, &[(0, 0.0)]);
        assert_eq!(d[2], INFINITY);
    }

    #[test]
    fn multi_seed_takes_minimum() {
        let g = diamond();
        // Virtual point in the middle of edge (0,2): seeds at both endpoints.
        let d = dijkstra_all(&g, &[(0, 1.5), (2, 1.5)]);
        assert_eq!(d[3], 2.0); // via vertex 2
        assert_eq!(d[1], 2.5); // via vertex 0
    }

    #[test]
    fn bounded_respects_radius() {
        let g = diamond();
        let (d, settled) = dijkstra_bounded(&g, &[(0, 0.0)], 1.0);
        assert_eq!(settled, vec![0, 1]);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], INFINITY);
    }

    #[test]
    fn bounded_settled_is_sorted_by_distance() {
        let g = diamond();
        let (d, settled) = dijkstra_bounded(&g, &[(0, 0.0)], 10.0);
        let dists: Vec<f64> = settled.iter().map(|&v| d[v as usize]).collect();
        let mut sorted = dists.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(dists, sorted);
        assert_eq!(settled.len(), 4);
    }

    #[test]
    fn targets_terminates_with_exact_values() {
        let g = diamond();
        let d = dijkstra_targets(&g, &[(0, 0.0)], &[3]);
        assert_eq!(d[3], 2.0);
    }

    #[test]
    fn targets_empty_returns_immediately() {
        let g = diamond();
        let d = dijkstra_targets(&g, &[(0, 0.0)], &[]);
        assert!(d.iter().skip(1).all(|&x| x == INFINITY));
    }

    #[test]
    fn parents_reconstruct_shortest_paths() {
        let g = diamond();
        let (dist, parent) = dijkstra_with_parents(&g, &[(0, 0.0)]);
        let path = extract_path(&parent, 3);
        assert_eq!(path, vec![0, 1, 3]); // length 2.0 beats 0-2-3 (3.5)
                                         // Path lengths telescope to the distance map.
        let mut acc = 0.0;
        for w in path.windows(2) {
            let (u, v) = (w[0], w[1]);
            let weight = g
                .neighbors(u)
                .iter()
                .find(|nb| nb.node == v)
                .expect("path edge exists")
                .weight;
            acc += weight;
        }
        assert!((acc - dist[3]).abs() < 1e-9);
    }

    #[test]
    fn extract_path_of_seed_is_singleton() {
        let g = diamond();
        let (_, parent) = dijkstra_with_parents(&g, &[(2, 0.0)]);
        assert_eq!(extract_path(&parent, 2), vec![2]);
    }

    fn random_graph(rng: &mut StdRng, n: usize, extra: usize) -> CsrGraph {
        // Random spanning tree plus `extra` random edges; always connected.
        let mut edges = Vec::new();
        for v in 1..n {
            let u = rng.gen_range(0..v);
            edges.push((u as NodeId, v as NodeId, rng.gen_range(0.1..10.0)));
        }
        for _ in 0..extra {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push((u as NodeId, v as NodeId, rng.gen_range(0.1..10.0)));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Dijkstra distances match the Floyd–Warshall oracle.
        #[test]
        fn matches_floyd_warshall(seed in 0u64..1000, n in 2usize..24, extra in 0usize..30) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_graph(&mut rng, n, extra);
            let oracle = floyd_warshall(&g);
            #[allow(clippy::needless_range_loop)]
            for s in 0..n {
                let d = dijkstra_all(&g, &[(s as NodeId, 0.0)]);
                for v in 0..n {
                    prop_assert!((d[v] - oracle[s][v]).abs() < 1e-9,
                        "s={s} v={v} dijkstra={} fw={}", d[v], oracle[s][v]);
                }
            }
        }

        /// Bounded Dijkstra agrees with the full run inside the radius and
        /// settles exactly the in-radius vertices.
        #[test]
        fn bounded_agrees_with_full(seed in 0u64..1000, n in 2usize..24, radius in 0.5f64..20.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_graph(&mut rng, n, n);
            let full = dijkstra_all(&g, &[(0, 0.0)]);
            let (bounded, settled) = dijkstra_bounded(&g, &[(0, 0.0)], radius);
            for v in 0..n {
                if full[v] <= radius {
                    prop_assert!((bounded[v] - full[v]).abs() < 1e-9);
                    prop_assert!(settled.contains(&(v as NodeId)));
                } else {
                    prop_assert!(!settled.contains(&(v as NodeId)));
                }
            }
        }

        /// Triangle inequality holds for Dijkstra distances via any pivot.
        #[test]
        fn triangle_inequality(seed in 0u64..1000, n in 3usize..20) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_graph(&mut rng, n, n);
            let d0 = dijkstra_all(&g, &[(0, 0.0)]);
            let d1 = dijkstra_all(&g, &[(1, 0.0)]);
            for v in 0..n {
                // |d(0,v) - d(1,v)| <= d(0,1) <= d(0,v) + d(1,v)
                prop_assert!((d0[v] - d1[v]).abs() <= d0[1] + 1e-9);
            }
        }
    }
}
