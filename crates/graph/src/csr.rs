//! Compressed sparse row (CSR) representation of an undirected weighted
//! graph.
//!
//! GP-SSN workloads are read-heavy: networks are built once and then
//! traversed millions of times during index construction and query
//! answering. CSR gives contiguous, index-addressed adjacency storage with
//! no per-node allocation, following the flat-storage idiom for database
//! engines.

/// Identifier of a graph vertex (index into the CSR arrays).
pub type NodeId = u32;

/// Identifier of an undirected edge (index into the original edge list).
pub type EdgeId = u32;

/// A neighbor entry: the adjacent node, the weight of the connecting edge,
/// and the id of the undirected edge it came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Adjacent vertex.
    pub node: NodeId,
    /// Edge weight (length for road networks, `1.0` for social networks).
    pub weight: f64,
    /// Undirected edge id shared by both directions.
    pub edge: EdgeId,
}

/// An undirected weighted graph in CSR form.
///
/// Construct with [`CsrGraph::from_edges`]; the graph is immutable
/// afterwards. Self-loops are rejected and duplicate edges are kept (both
/// are traversed; shortest-path algorithms naturally use the lighter one).
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<u32>,
    neighbors: Vec<Neighbor>,
    /// Original undirected edge list `(u, v, w)`.
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl CsrGraph {
    /// Builds a CSR graph with `n` vertices from an undirected edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a vertex `>= n`, has a negative or
    /// non-finite weight, or is a self-loop.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId, f64)]) -> Self {
        let mut degree = vec![0u32; n];
        for &(u, v, w) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            assert!(u != v, "self-loops are not supported");
            assert!(
                w.is_finite() && w >= 0.0,
                "edge weights must be finite and non-negative"
            );
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![
            Neighbor {
                node: 0,
                weight: 0.0,
                edge: 0
            };
            edges.len() * 2
        ];
        for (i, &(u, v, w)) in edges.iter().enumerate() {
            let e = i as EdgeId;
            neighbors[cursor[u as usize] as usize] = Neighbor {
                node: v,
                weight: w,
                edge: e,
            };
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = Neighbor {
                node: u,
                weight: w,
                edge: e,
            };
            cursor[v as usize] += 1;
        }
        CsrGraph {
            offsets,
            neighbors,
            edges: edges.to_vec(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Neighbors of `v` (each undirected edge appears once per endpoint).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[Neighbor] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Average vertex degree (`2|E| / |V|`); `0.0` for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Endpoints and weight of undirected edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> (NodeId, NodeId, f64) {
        self.edges[e as usize]
    }

    /// Iterator over all undirected edges as `(u, v, w)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.edges.iter().copied()
    }

    /// Whether the vertices `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Scan the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).iter().any(|nb| nb.node == b)
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])
    }

    #[test]
    fn builds_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.average_degree(), 2.0);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle();
        for (u, v, w) in g.edges() {
            assert!(g
                .neighbors(u)
                .iter()
                .any(|nb| nb.node == v && nb.weight == w));
            assert!(g
                .neighbors(v)
                .iter()
                .any(|nb| nb.node == u && nb.weight == w));
        }
    }

    #[test]
    fn has_edge_checks_both_directions() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn isolated_vertices_have_empty_neighbors() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1.0)]);
        assert_eq!(g.degree(2), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn edge_lookup_round_trips() {
        let g = triangle();
        assert_eq!(g.edge(1), (1, 2, 2.0));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        CsrGraph::from_edges(2, &[(1, 1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        CsrGraph::from_edges(2, &[(0, 2, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_weight() {
        CsrGraph::from_edges(2, &[(0, 1, -1.0)]);
    }

    #[test]
    fn total_weight_sums_edges() {
        assert_eq!(triangle().total_weight(), 7.0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }
}
