//! The road network `G_r` (Definition 1): intersections with coordinates,
//! road segments as weighted edges.

use gpssn_graph::{CsrGraph, EdgeId, NodeId};
use gpssn_spatial::Point;

/// A spatial road network: a weighted undirected graph whose vertices
/// carry 2-D coordinates. Edge weights are road lengths.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    graph: CsrGraph,
    locations: Vec<Point>,
}

impl RoadNetwork {
    /// Builds a road network where each edge's length is the Euclidean
    /// distance between its endpoints (the usual model for road segments).
    pub fn from_euclidean_edges(locations: Vec<Point>, edges: &[(NodeId, NodeId)]) -> Self {
        let weighted: Vec<(NodeId, NodeId, f64)> = edges
            .iter()
            .map(|&(u, v)| {
                let w = locations[u as usize].distance(&locations[v as usize]);
                (u, v, w)
            })
            .collect();
        Self::from_weighted_edges(locations, &weighted)
    }

    /// Builds a road network with explicit edge lengths (lengths must be
    /// at least the Euclidean endpoint distance for the Euclidean-prefilter
    /// optimizations to stay exact; this is asserted in debug builds).
    pub fn from_weighted_edges(locations: Vec<Point>, edges: &[(NodeId, NodeId, f64)]) -> Self {
        #[cfg(debug_assertions)]
        for &(u, v, w) in edges {
            let euclid = locations[u as usize].distance(&locations[v as usize]);
            debug_assert!(
                w + 1e-9 >= euclid,
                "edge ({u},{v}) shorter ({w}) than Euclidean distance ({euclid})"
            );
        }
        let graph = CsrGraph::from_edges(locations.len(), edges);
        RoadNetwork { graph, locations }
    }

    /// Underlying graph.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Coordinates of vertex `v`.
    #[inline]
    pub fn location(&self, v: NodeId) -> Point {
        self.locations[v as usize]
    }

    /// All vertex coordinates.
    #[inline]
    pub fn locations(&self) -> &[Point] {
        &self.locations
    }

    /// Number of intersections `|V(G_r)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of road segments `|E(G_r)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Endpoints and length of road segment `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> (NodeId, NodeId, f64) {
        self.graph.edge(e)
    }

    /// Length of road segment `e`.
    #[inline]
    pub fn edge_length(&self, e: EdgeId) -> f64 {
        self.graph.edge(e).2
    }

    /// Average intersection degree (Table 2's `deg(G_r)`).
    pub fn average_degree(&self) -> f64 {
        self.graph.average_degree()
    }

    /// Total road length.
    pub fn total_length(&self) -> f64 {
        self.graph.total_weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn square_network() -> RoadNetwork {
        // Unit square: 0-(0,0), 1-(1,0), 2-(1,1), 3-(0,1), ring edges.
        let locs = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        RoadNetwork::from_euclidean_edges(locs, &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn euclidean_lengths() {
        let net = square_network();
        assert_eq!(net.num_vertices(), 4);
        assert_eq!(net.num_edges(), 4);
        for e in 0..4 {
            assert!((net.edge_length(e) - 1.0).abs() < 1e-12);
        }
        assert_eq!(net.total_length(), 4.0);
        assert_eq!(net.average_degree(), 2.0);
    }

    #[test]
    fn explicit_lengths_allowed_when_at_least_euclidean() {
        let locs = vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        let net = RoadNetwork::from_weighted_edges(locs, &[(0, 1, 7.5)]);
        assert_eq!(net.edge_length(0), 7.5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "shorter")]
    fn rejects_sub_euclidean_lengths() {
        let locs = vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        RoadNetwork::from_weighted_edges(locs, &[(0, 1, 4.9)]);
    }

    #[test]
    fn location_accessors() {
        let net = square_network();
        assert_eq!(net.location(2), Point::new(1.0, 1.0));
        assert_eq!(net.locations().len(), 4);
    }
}
