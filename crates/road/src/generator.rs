//! Synthetic road networks and POIs (Section 6.1 of the paper).
//!
//! The paper's pipeline: "obtain random intersection points (vertices) in
//! a 2D data space, then produce road segments (edges) by randomly
//! connecting vertices that are spatially close to each other (without
//! introducing new intersection points, since the road network is a planar
//! graph)". We reproduce that with a k-nearest-neighbour wiring over a
//! uniform point set (grid-bucketed for near-linear construction),
//! followed by a union-find pass that stitches disconnected components
//! through their spatially closest vertex pairs so Dijkstra reaches the
//! whole map.
//!
//! POIs: "first selecting random edges on road network `G_r` and then
//! generating `w` POIs on each edge, where `w ∈ [0,5]` follows the Uniform
//! or Zipf distribution"; each POI gets keywords drawn from `[0, d)` with
//! the same distribution choice.

use crate::network::RoadNetwork;
use crate::poi::{NetworkPoint, Poi};
use gpssn_graph::{IndexSampler, NodeId, ValueDistribution};
use gpssn_spatial::Point;
use rand::Rng;

/// Configuration for [`generate_road_network`].
#[derive(Debug, Clone)]
pub struct RoadGenConfig {
    /// Number of intersections `|V(G_r)|`.
    pub num_vertices: usize,
    /// Side length of the square data space.
    pub space_size: f64,
    /// Neighbours each vertex tries to connect to (2–3 gives the paper's
    /// average degrees of 2.1–2.4).
    pub neighbors_per_vertex: usize,
}

impl Default for RoadGenConfig {
    fn default() -> Self {
        RoadGenConfig {
            num_vertices: 30_000,
            space_size: 100.0,
            neighbors_per_vertex: 2,
        }
    }
}

/// Generates a random planar-ish connected road network.
// Audited unwrap: `partial_cmp` over Euclidean distances of generated
// coordinates, which are always finite.
#[allow(clippy::unwrap_used)]
pub fn generate_road_network<R: Rng + ?Sized>(cfg: &RoadGenConfig, rng: &mut R) -> RoadNetwork {
    assert!(cfg.num_vertices >= 2, "need at least two intersections");
    let n = cfg.num_vertices;
    let locations: Vec<Point> = (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(0.0..cfg.space_size),
                rng.gen_range(0.0..cfg.space_size),
            )
        })
        .collect();

    // Grid buckets for approximate nearest-neighbour lookups.
    let cells = ((n as f64).sqrt().ceil() as usize).max(1);
    let cell_size = cfg.space_size / cells as f64;
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    let cell_of = |p: &Point| -> (usize, usize) {
        let cx = ((p.x / cell_size) as usize).min(cells - 1);
        let cy = ((p.y / cell_size) as usize).min(cells - 1);
        (cx, cy)
    };
    for (i, p) in locations.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        grid[cy * cells + cx].push(i as u32);
    }

    // Collect the `k` nearest candidates of `v` by expanding rings of
    // cells until enough are found.
    let nearest = |v: usize, k: usize| -> Vec<u32> {
        let p = &locations[v];
        let (cx, cy) = cell_of(p);
        let mut found: Vec<(f64, u32)> = Vec::new();
        let mut ring = 0usize;
        while ring <= cells {
            let x0 = cx.saturating_sub(ring);
            let x1 = (cx + ring).min(cells - 1);
            let y0 = cy.saturating_sub(ring);
            let y1 = (cy + ring).min(cells - 1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    // Only the new ring boundary.
                    if ring > 0 && x != x0 && x != x1 && y != y0 && y != y1 {
                        continue;
                    }
                    for &u in &grid[y * cells + x] {
                        if u as usize != v {
                            found.push((p.distance_sq(&locations[u as usize]), u));
                        }
                    }
                }
            }
            // One extra ring after we have k candidates guarantees true
            // nearest neighbours are not missed just past a cell border.
            if found.len() >= k && ring >= 1 {
                break;
            }
            ring += 1;
        }
        found.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        found.truncate(k);
        found.into_iter().map(|(_, u)| u).collect()
    };

    let mut uf = UnionFind::new(n);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for v in 0..n {
        for u in nearest(v, cfg.neighbors_per_vertex) {
            let key = if (v as u32) < u {
                (v as u32, u)
            } else {
                (u, v as u32)
            };
            if seen.insert(key) {
                edges.push(key);
                uf.union(v, u as usize);
            }
        }
    }

    // Stitch components: connect each non-root component through its
    // spatially nearest counterpart among sampled representatives.
    loop {
        let mut reps: std::collections::HashMap<usize, u32> = Default::default();
        for v in 0..n {
            reps.entry(uf.find(v)).or_insert(v as u32);
        }
        if reps.len() <= 1 {
            break;
        }
        let mut comps: Vec<u32> = reps.values().copied().collect();
        comps.sort_unstable();
        let base = comps[0];
        for &other in &comps[1..] {
            // Nearest vertex of the base component to `other`'s rep —
            // approximate with the rep itself plus its nearest cross-
            // component candidate from the grid.
            let candidates = nearest(other as usize, 8);
            let target = candidates
                .into_iter()
                .find(|&u| uf.find(u as usize) != uf.find(other as usize))
                .unwrap_or(base);
            let key = if other < target {
                (other, target)
            } else {
                (target, other)
            };
            if seen.insert(key) {
                edges.push(key);
            }
            uf.union(other as usize, target as usize);
        }
    }

    RoadNetwork::from_euclidean_edges(locations, &edges)
}

/// Configuration for [`generate_pois`].
#[derive(Debug, Clone)]
pub struct PoiGenConfig {
    /// Total number of POIs `n`.
    pub num_pois: usize,
    /// Vocabulary size `d` (keyword ids are `0..d`).
    pub num_keywords: usize,
    /// Maximum keywords per POI (at least 1 keyword each).
    pub max_keywords_per_poi: usize,
    /// Distribution of per-edge POI counts and keyword choices.
    pub distribution: ValueDistribution,
    /// Probability that a POI takes its *district's* keyword rather than
    /// a fresh draw. Real POI categories cluster spatially (restaurant
    /// rows, mall districts); the clustering is what gives the
    /// matching-score pruning its bite (paper Fig. 7(c)). `0.0` disables
    /// districts.
    pub keyword_locality: f64,
}

impl Default for PoiGenConfig {
    fn default() -> Self {
        PoiGenConfig {
            num_pois: 10_000,
            num_keywords: 5,
            max_keywords_per_poi: 3,
            distribution: ValueDistribution::Uniform,
            keyword_locality: 0.8,
        }
    }
}

/// Generates POIs on random edges of `net` following the paper's
/// pipeline, with spatially clustered keyword districts (see
/// [`PoiGenConfig::keyword_locality`]).
// Audited unwrap: `partial_cmp` over squared distances to district
// centers, which are always finite.
#[allow(clippy::unwrap_used)]
pub fn generate_pois<R: Rng + ?Sized>(
    net: &RoadNetwork,
    cfg: &PoiGenConfig,
    rng: &mut R,
) -> Vec<Poi> {
    assert!(cfg.num_keywords > 0 && cfg.max_keywords_per_poi > 0);
    let per_edge = IndexSampler::new(cfg.distribution, 6); // w in [0,5]
    let kw = IndexSampler::new(cfg.distribution, cfg.num_keywords);
    let kw_count = IndexSampler::new(cfg.distribution, cfg.max_keywords_per_poi);
    let m = net.num_edges();
    // District centers: a few anchor points per keyword.
    let centers_per_kw = 3usize;
    let district_centers: Vec<(Point, u32)> = (0..cfg.num_keywords as u32)
        .flat_map(|k| {
            (0..centers_per_kw)
                .map(|_| {
                    let v = rng.gen_range(0..net.num_vertices());
                    (net.location(v as u32), k)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let district_of = |p: &Point| -> u32 {
        district_centers
            .iter()
            .min_by(|a, b| {
                p.distance_sq(&a.0)
                    .partial_cmp(&p.distance_sq(&b.0))
                    .unwrap()
            })
            .map(|&(_, k)| k)
            .unwrap_or(0)
    };
    let mut pois = Vec::with_capacity(cfg.num_pois);
    while pois.len() < cfg.num_pois {
        let e = rng.gen_range(0..m) as u32;
        let w = per_edge.sample(rng);
        let len = net.edge_length(e);
        for _ in 0..w {
            if pois.len() == cfg.num_pois {
                break;
            }
            let position = NetworkPoint::new(net, e, rng.gen_range(0.0..=1.0) * len);
            let count = kw_count.sample(rng) + 1;
            let district = district_of(&position.location(net));
            let keywords: Vec<u32> = (0..count)
                .map(|_| {
                    if rng.gen_bool(cfg.keyword_locality.clamp(0.0, 1.0)) {
                        district
                    } else {
                        kw.sample(rng) as u32
                    }
                })
                .collect();
            pois.push(Poi::new(position, keywords));
        }
    }
    pois
}

/// Minimal union-find for component stitching.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, v: usize) -> usize {
        let mut root = v;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = v;
        while cur != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpssn_graph::components::connected_components;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn generated_network_is_connected() {
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = RoadGenConfig {
            num_vertices: 500,
            space_size: 50.0,
            neighbors_per_vertex: 2,
        };
        let net = generate_road_network(&cfg, &mut rng);
        assert_eq!(net.num_vertices(), 500);
        let (_, k) = connected_components(net.graph());
        assert_eq!(k, 1, "network must be connected");
    }

    #[test]
    fn generated_degree_is_roadlike() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = RoadGenConfig {
            num_vertices: 2000,
            space_size: 100.0,
            neighbors_per_vertex: 2,
        };
        let net = generate_road_network(&cfg, &mut rng);
        let deg = net.average_degree();
        assert!(
            (1.8..3.5).contains(&deg),
            "average degree {deg} not road-like"
        );
    }

    #[test]
    fn edges_stay_local() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = RoadGenConfig {
            num_vertices: 1000,
            space_size: 100.0,
            neighbors_per_vertex: 3,
        };
        let net = generate_road_network(&cfg, &mut rng);
        // kNN edges should be short relative to the space; allow the few
        // component-stitching edges to be longer.
        let mut lengths: Vec<f64> = (0..net.num_edges() as u32)
            .map(|e| net.edge_length(e))
            .collect();
        lengths.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = lengths[lengths.len() / 2];
        assert!(median < 10.0, "median edge length {median} too long");
    }

    #[test]
    fn pois_have_requested_count_and_valid_keywords() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = generate_road_network(
            &RoadGenConfig {
                num_vertices: 200,
                space_size: 20.0,
                neighbors_per_vertex: 2,
            },
            &mut rng,
        );
        let cfg = PoiGenConfig {
            num_pois: 300,
            num_keywords: 5,
            ..Default::default()
        };
        let pois = generate_pois(&net, &cfg, &mut rng);
        assert_eq!(pois.len(), 300);
        for p in &pois {
            assert!(!p.keywords.is_empty());
            assert!(p.keywords.iter().all(|&k| k < 5));
            let len = net.edge_length(p.position.edge);
            assert!(p.position.offset >= 0.0 && p.position.offset <= len);
        }
    }

    #[test]
    fn zipf_pois_skew_keywords() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = generate_road_network(
            &RoadGenConfig {
                num_vertices: 200,
                space_size: 20.0,
                neighbors_per_vertex: 2,
            },
            &mut rng,
        );
        let cfg = PoiGenConfig {
            num_pois: 2000,
            num_keywords: 5,
            max_keywords_per_poi: 1,
            distribution: ValueDistribution::Zipf,
            keyword_locality: 0.0, // pure Zipf draws for this skew check
        };
        let pois = generate_pois(&net, &cfg, &mut rng);
        let mut counts = [0usize; 5];
        for p in &pois {
            counts[p.keywords[0] as usize] += 1;
        }
        assert!(
            counts[0] > counts[4],
            "Zipf keyword skew missing: {counts:?}"
        );
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let cfg = RoadGenConfig {
            num_vertices: 100,
            space_size: 10.0,
            neighbors_per_vertex: 2,
        };
        let a = generate_road_network(&cfg, &mut StdRng::seed_from_u64(5));
        let b = generate_road_network(&cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.location(3), b.location(3));
    }
}
