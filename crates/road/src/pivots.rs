//! Road-network pivots and triangle-inequality distance bounds.
//!
//! The paper selects `h` road-network vertices as pivots `rp_1..rp_h`
//! (Section 4.1) and stores, for every POI and user home location, the
//! exact road distances to each pivot. Lower/upper bounds between any two
//! on-network points `a, b` then follow from the triangle inequality:
//!
//! ```text
//! max_k |d(a, rp_k) - d(rp_k, b)|  <=  d(a,b)  <=  min_k (d(a, rp_k) + d(rp_k, b))
//! ```
//!
//! These bounds feed Eqs. (16)–(17) of the road-network distance pruning.

use crate::network::RoadNetwork;
use crate::poi::NetworkPoint;
use gpssn_graph::{dijkstra_all, NodeId};

/// A set of road-network pivots with full distance tables.
#[derive(Debug, Clone)]
pub struct RoadPivots {
    pivots: Vec<NodeId>,
    /// `table[k][v]` = exact road distance from pivot `k` to vertex `v`.
    table: Vec<Vec<f64>>,
}

impl RoadPivots {
    /// Precomputes distance tables for the given pivot vertices (one
    /// Dijkstra per pivot), sequentially.
    pub fn new(net: &RoadNetwork, pivots: Vec<NodeId>) -> Self {
        Self::new_with_threads(net, pivots, 1)
    }

    /// [`RoadPivots::new`] with the columns computed over `threads`
    /// scoped workers (`0` = all cores). Each column is an independent
    /// single-source Dijkstra merged back in pivot order, so the table
    /// is bit-identical for every thread count.
    pub fn new_with_threads(net: &RoadNetwork, pivots: Vec<NodeId>, threads: usize) -> Self {
        assert!(!pivots.is_empty(), "at least one pivot is required");
        let table = pivot_columns(net, &pivots, threads);
        RoadPivots { pivots, table }
    }

    /// Number of pivots `h`.
    #[inline]
    pub fn len(&self) -> usize {
        self.pivots.len()
    }

    /// Whether there are no pivots (never true for a constructed value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pivots.is_empty()
    }

    /// The pivot vertices.
    #[inline]
    pub fn pivots(&self) -> &[NodeId] {
        &self.pivots
    }

    /// Exact distance from pivot `k` to vertex `v`.
    #[inline]
    pub fn vertex_dist(&self, k: usize, v: NodeId) -> f64 {
        self.table[k][v as usize]
    }

    /// Exact distances from an on-edge point to every pivot
    /// (`dist_RN(o_i, rp_k)` stored in `I_R` leaves).
    pub fn point_dists(&self, net: &RoadNetwork, p: &NetworkPoint) -> Vec<f64> {
        let [(u, du), (v, dv)] = p.seeds(net);
        (0..self.pivots.len())
            .map(|k| {
                let via_u = self.table[k][u as usize] + du;
                let via_v = self.table[k][v as usize] + dv;
                via_u.min(via_v)
            })
            .collect()
    }
}

/// Computes the pivot distance columns, fanning contiguous pivot chunks
/// out over scoped threads when more than one worker is requested.
/// Chunk boundaries depend only on the pivot count, and each column is
/// computed whole by one worker, so the merged table matches the
/// sequential one exactly.
// Audited expect: `join` only fails when a column worker panicked, and
// propagating that panic is exactly the intended behavior.
#[allow(clippy::expect_used)]
fn pivot_columns(net: &RoadNetwork, pivots: &[NodeId], threads: usize) -> Vec<Vec<f64>> {
    let auto = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let workers = if threads == 0 { auto() } else { threads }.min(pivots.len());
    if workers <= 1 {
        return pivots
            .iter()
            .map(|&p| dijkstra_all(net.graph(), &[(p, 0.0)]))
            .collect();
    }
    let chunk = pivots.len().div_ceil(workers);
    let mut table = Vec::with_capacity(pivots.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = pivots
            .chunks(chunk)
            .map(|ps| {
                scope.spawn(move || {
                    ps.iter()
                        .map(|&p| dijkstra_all(net.graph(), &[(p, 0.0)]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            table.extend(h.join().expect("pivot column worker panicked"));
        }
    });
    table
}

/// Triangle-inequality lower bound on `d(a,b)` from per-pivot distance
/// vectors (the `max` over pivots — the tightest valid bound).
pub fn lb_dist_via_pivots(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Triangle-inequality upper bound on `d(a,b)` from per-pivot distance
/// vectors (the `min` over pivots).
pub fn ub_dist_via_pivots(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| x + y)
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::dist_rn;
    use gpssn_spatial::Point;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn grid(nx: usize, ny: usize) -> RoadNetwork {
        let mut locs = Vec::new();
        let mut edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                locs.push(Point::new(x as f64, y as f64));
                let id = (y * nx + x) as u32;
                if x + 1 < nx {
                    edges.push((id, id + 1));
                }
                if y + 1 < ny {
                    edges.push((id, id + nx as u32));
                }
            }
        }
        RoadNetwork::from_euclidean_edges(locs, &edges)
    }

    #[test]
    fn vertex_dist_matches_dijkstra() {
        let net = grid(4, 4);
        let pv = RoadPivots::new(&net, vec![0, 15]);
        assert_eq!(pv.len(), 2);
        // Manhattan distances on the grid.
        assert_eq!(pv.vertex_dist(0, 5), 2.0);
        assert_eq!(pv.vertex_dist(1, 0), 6.0);
    }

    #[test]
    fn point_dists_account_for_offsets() {
        let net = grid(2, 1); // single edge 0-1 of length 1
        let pv = RoadPivots::new(&net, vec![0]);
        let p = NetworkPoint::new(&net, 0, 0.25);
        let d = pv.point_dists(&net, &p);
        assert!((d[0] - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one pivot")]
    fn rejects_empty_pivot_set() {
        let net = grid(2, 2);
        RoadPivots::new(&net, vec![]);
    }

    #[test]
    fn parallel_tables_match_sequential_bitwise() {
        let net = grid(6, 6);
        let pivots = vec![0u32, 7, 20, 35, 14];
        let base = RoadPivots::new(&net, pivots.clone());
        for threads in [2, 3, 8, 0] {
            let par = RoadPivots::new_with_threads(&net, pivots.clone(), threads);
            assert_eq!(par.pivots(), base.pivots());
            for k in 0..pivots.len() {
                for v in 0..net.num_vertices() as u32 {
                    assert_eq!(
                        par.vertex_dist(k, v).to_bits(),
                        base.vertex_dist(k, v).to_bits(),
                        "threads={threads} k={k} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn bound_helpers() {
        let a = vec![3.0, 1.0];
        let b = vec![1.0, 4.0];
        assert_eq!(lb_dist_via_pivots(&a, &b), 3.0);
        assert_eq!(ub_dist_via_pivots(&a, &b), 4.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Pivot bounds sandwich the exact distance for random point pairs
        /// on a grid network.
        #[test]
        fn bounds_sandwich_exact(seed in 0u64..500, h in 1usize..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = grid(5, 5);
            let n = net.num_vertices();
            let pivots: Vec<u32> = (0..h).map(|_| rng.gen_range(0..n) as u32).collect();
            let pv = RoadPivots::new(&net, pivots);
            let m = net.num_edges();
            let a = NetworkPoint::new(&net, rng.gen_range(0..m) as u32, rng.gen_range(0.0..1.0));
            let b = NetworkPoint::new(&net, rng.gen_range(0..m) as u32, rng.gen_range(0.0..1.0));
            let exact = dist_rn(&net, &a, &b);
            let da = pv.point_dists(&net, &a);
            let db = pv.point_dists(&net, &b);
            let lb = lb_dist_via_pivots(&da, &db);
            let ub = ub_dist_via_pivots(&da, &db);
            prop_assert!(lb <= exact + 1e-9, "lb {lb} > exact {exact}");
            prop_assert!(ub + 1e-9 >= exact, "ub {ub} < exact {exact}");
        }
    }
}
