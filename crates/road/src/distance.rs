//! Exact road-network distances `dist_RN` between points on edges.
//!
//! Any path between points on *different* edges passes through an endpoint
//! of each edge, so distances decompose into along-edge offsets plus
//! vertex-to-vertex shortest paths. Points on the *same* edge additionally
//! admit the direct along-edge path. All functions here are exact (no
//! bounds); the pruning machinery's bounds live in [`crate::pivots`].

use crate::network::RoadNetwork;
use crate::poi::NetworkPoint;
use gpssn_graph::{ChOracle, ChSearch, DijkstraWorkspace, NodeId};

/// Exact road-network distance between two on-edge points.
pub fn dist_rn(net: &RoadNetwork, a: &NetworkPoint, b: &NetworkPoint) -> f64 {
    let mut ws = DijkstraWorkspace::new();
    dist_rn_with(net, &mut ws, a, b)
}

/// [`dist_rn`] running inside a caller-provided [`DijkstraWorkspace`], so
/// repeated calls are allocation-free.
pub fn dist_rn_with(
    net: &RoadNetwork,
    ws: &mut DijkstraWorkspace,
    a: &NetworkPoint,
    b: &NetworkPoint,
) -> f64 {
    let (bu, bv, _) = net.edge(b.edge);
    ws.run_targets(net.graph(), &a.seeds(net), &[bu, bv]);
    point_dist_from_map(net, ws.dist(), a, b)
}

/// Exact distances from `a` to each point in `targets` with a single
/// Dijkstra run (early-terminating once every target edge endpoint is
/// settled).
pub fn dist_rn_many(net: &RoadNetwork, a: &NetworkPoint, targets: &[NetworkPoint]) -> Vec<f64> {
    dist_rn_many_counted(net, a, targets).0
}

/// [`dist_rn_many`] plus the number of vertices the underlying Dijkstra
/// settled, so callers can charge the work against a resource budget.
pub fn dist_rn_many_counted(
    net: &RoadNetwork,
    a: &NetworkPoint,
    targets: &[NetworkPoint],
) -> (Vec<f64>, u64) {
    let mut ws = DijkstraWorkspace::new();
    dist_rn_many_counted_with(net, &mut ws, a, targets)
}

/// [`dist_rn_many_counted`] running inside a caller-provided
/// [`DijkstraWorkspace`], so repeated refinement-time calls are
/// allocation-free. Results are identical to the one-shot variant.
pub fn dist_rn_many_counted_with(
    net: &RoadNetwork,
    ws: &mut DijkstraWorkspace,
    a: &NetworkPoint,
    targets: &[NetworkPoint],
) -> (Vec<f64>, u64) {
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(targets.len() * 2);
    for t in targets {
        let (u, v, _) = net.edge(t.edge);
        endpoints.push(u);
        endpoints.push(v);
    }
    // The workspace deduplicates endpoints shared between targets, so
    // early termination fires on the distinct set and the settle count
    // charged to budgets is not inflated.
    let settled = ws.run_targets(net.graph(), &a.seeds(net), &endpoints);
    (
        targets
            .iter()
            .map(|t| point_dist_from_map(net, ws.dist(), a, t))
            .collect(),
        settled,
    )
}

/// Combines a vertex distance map seeded at `a` into the exact distance to
/// on-edge point `b`, handling the shared-edge shortcut.
///
/// `dist` must come from a Dijkstra seeded with `a.seeds(net)` whose
/// exploration covered `b`'s edge endpoints (or was radius-bounded — then
/// the result is exact whenever it is `<=` that radius, which is all the
/// ball queries need).
pub fn point_dist_from_map(
    net: &RoadNetwork,
    dist: &[f64],
    a: &NetworkPoint,
    b: &NetworkPoint,
) -> f64 {
    let (bu, bv, blen) = net.edge(b.edge);
    compose_point_dist(a, b, blen, dist[bu as usize], dist[bv as usize])
}

/// The shared endpoint-to-point composition: given the vertex distances
/// `d_bu` / `d_bv` to `b`'s edge endpoints (from any exact backend), adds
/// the along-edge offsets and the same-edge shortcut *in a fixed
/// operation order*, so the Dijkstra and CH backends produce bit-identical
/// results from bit-identical endpoint distances.
#[inline]
fn compose_point_dist(a: &NetworkPoint, b: &NetworkPoint, blen: f64, d_bu: f64, d_bv: f64) -> f64 {
    // The along-edge shortcut is evaluated first so it wins even when
    // both endpoints sit at `INFINITY` in a radius-bounded (or
    // disconnected-component) map: two points on the same edge are always
    // mutually reachable along it, whatever the vertex map says.
    let mut d = if a.edge == b.edge {
        (a.offset - b.offset).abs()
    } else {
        f64::INFINITY
    };
    let via_u = d_bu + b.offset;
    let via_v = d_bv + (blen - b.offset);
    d = d.min(via_u).min(via_v);
    d
}

/// CH-backed [`dist_rn_many_counted_with`]: exact distances from `a` to
/// each target through a [`ChOracle`], bit-identical to the Dijkstra
/// backend (property-tested below). The returned count is the number of
/// vertices the upward sweeps settled — the same budget unit as Dijkstra
/// settles, just much smaller.
pub fn dist_rn_many_ch(
    net: &RoadNetwork,
    ch: &ChOracle,
    cs: &mut ChSearch,
    a: &NetworkPoint,
    targets: &[NetworkPoint],
) -> (Vec<f64>, u64) {
    dist_rn_matrix_ch(net, ch, cs, std::slice::from_ref(a), targets)
}

/// Bucket-based many-to-many `dist_RN`: the full `sources × targets`
/// distance matrix (row-major) in one oracle call — one backward sweep
/// per distinct target-edge endpoint, one forward sweep per source.
/// Values are bit-identical to calling the Dijkstra backend per source
/// (`dist[i][j]` folds source-to-target like a Dijkstra seeded at
/// `sources[i]`).
pub fn dist_rn_matrix_ch(
    net: &RoadNetwork,
    ch: &ChOracle,
    cs: &mut ChSearch,
    sources: &[NetworkPoint],
    targets: &[NetworkPoint],
) -> (Vec<f64>, u64) {
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(targets.len() * 2);
    for t in targets {
        let (u, v, _) = net.edge(t.edge);
        endpoints.push(u);
        endpoints.push(v);
    }
    let seed_arrays: Vec<[(NodeId, f64); 2]> = sources.iter().map(|s| s.seeds(net)).collect();
    let seed_refs: Vec<&[(NodeId, f64)]> = seed_arrays.iter().map(|s| &s[..]).collect();
    let (d, settles) = ch.batch_dists(cs, &seed_refs, &endpoints);
    let cols = endpoints.len();
    let mut out = Vec::with_capacity(sources.len() * targets.len());
    for (i, a) in sources.iter().enumerate() {
        for (j, t) in targets.iter().enumerate() {
            let (_, _, blen) = net.edge(t.edge);
            out.push(compose_point_dist(
                a,
                t,
                blen,
                d[i * cols + 2 * j],
                d[i * cols + 2 * j + 1],
            ));
        }
    }
    (out, settles)
}

/// A materialized shortest route between two on-edge points: total
/// length plus the intersection sequence travelled (empty when source and
/// target share an edge and the direct along-edge path wins).
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Total road-network length.
    pub length: f64,
    /// Intersections visited, in travel order.
    pub vertices: Vec<NodeId>,
}

/// Computes the shortest route from `a` to `b` (exact), including the
/// vertex sequence for turn-by-turn output. Returns `None` when `b` is
/// unreachable.
pub fn shortest_route(net: &RoadNetwork, a: &NetworkPoint, b: &NetworkPoint) -> Option<Route> {
    use gpssn_graph::dijkstra::{dijkstra_with_parents, extract_path};
    let (dist, parents) = dijkstra_with_parents(net.graph(), &a.seeds(net));
    let (bu, bv, blen) = net.edge(b.edge);
    let via_u = dist[bu as usize] + b.offset;
    let via_v = dist[bv as usize] + (blen - b.offset);
    let mut best = via_u.min(via_v);
    let mut direct = false;
    if a.edge == b.edge && (a.offset - b.offset).abs() < best {
        best = (a.offset - b.offset).abs();
        direct = true;
    }
    if !best.is_finite() {
        return None;
    }
    let vertices = if direct {
        Vec::new()
    } else {
        let end = if via_u <= via_v { bu } else { bv };
        extract_path(&parents, end)
    };
    Some(Route {
        length: best,
        vertices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpssn_spatial::Point;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Square ring of side 1: vertices 0..4 at the corners.
    fn ring() -> RoadNetwork {
        let locs = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        RoadNetwork::from_euclidean_edges(locs, &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn same_edge_uses_direct_path() {
        let net = ring();
        let a = NetworkPoint::new(&net, 0, 0.2);
        let b = NetworkPoint::new(&net, 0, 0.9);
        assert!((dist_rn(&net, &a, &b) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn same_edge_can_go_around_when_shorter() {
        // Long chord edge vs short detour: make edge (0,1) long.
        let locs = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 0.5),
        ];
        let net = RoadNetwork::from_weighted_edges(locs, &[(0, 1, 10.0), (0, 2, 5.1), (2, 1, 5.1)]);
        // Points near the two ends of the long edge: direct = 9.0,
        // around = 0.5 + 5.1 + 5.1 + 0.5 = 11.2 -> direct wins.
        let a = NetworkPoint::new(&net, 0, 0.5);
        let b = NetworkPoint::new(&net, 0, 9.5);
        assert!((dist_rn(&net, &a, &b) - 9.0).abs() < 1e-9);
        // Points straddling an endpoint: going through vertex 0 wins.
        let c = NetworkPoint::new(&net, 0, 0.2); // 0.2 from vertex 0
        let d = NetworkPoint::new(&net, 1, 0.3); // 0.3 from vertex 0 on edge (0,2)
        assert!((dist_rn(&net, &c, &d) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cross_edge_distance_on_ring() {
        let net = ring();
        // Midpoint of bottom edge to midpoint of top edge: 0.5+1+0.5 = 2.
        let a = NetworkPoint::new(&net, 0, 0.5);
        let b = NetworkPoint::new(&net, 2, 0.5);
        assert!((dist_rn(&net, &a, &b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn distance_is_zero_to_self() {
        let net = ring();
        let a = NetworkPoint::new(&net, 1, 0.25);
        assert_eq!(dist_rn(&net, &a, &a), 0.0);
    }

    #[test]
    fn many_matches_single() {
        let net = ring();
        let a = NetworkPoint::new(&net, 0, 0.3);
        let targets = vec![
            NetworkPoint::new(&net, 1, 0.4),
            NetworkPoint::new(&net, 2, 0.9),
            NetworkPoint::new(&net, 3, 0.1),
            a,
        ];
        let batch = dist_rn_many(&net, &a, &targets);
        for (t, &d) in targets.iter().zip(batch.iter()) {
            assert!((d - dist_rn(&net, &a, t)).abs() < 1e-9);
        }
    }

    #[test]
    fn route_matches_distance_and_lists_vertices() {
        let net = ring();
        let a = NetworkPoint::new(&net, 0, 0.5); // bottom edge midpoint
        let b = NetworkPoint::new(&net, 2, 0.5); // top edge midpoint
        let route = shortest_route(&net, &a, &b).expect("reachable");
        assert!((route.length - dist_rn(&net, &a, &b)).abs() < 1e-9);
        // Two intersections are crossed either way around the ring.
        assert_eq!(route.vertices.len(), 2);
    }

    #[test]
    fn same_edge_direct_route_has_no_vertices() {
        let net = ring();
        let a = NetworkPoint::new(&net, 0, 0.1);
        let b = NetworkPoint::new(&net, 0, 0.9);
        let route = shortest_route(&net, &a, &b).unwrap();
        assert!(route.vertices.is_empty());
        assert!((route.length - 0.8).abs() < 1e-9);
    }

    #[test]
    fn same_edge_wins_when_endpoints_unreachable_in_bounded_map() {
        // Two components: edge (0,1) and edge (2,3). Points a, b both sit
        // on edge (2,3), but the distance map is seeded at a point on
        // edge (0,1) *and* radius-bounded, so b's endpoints are at
        // INFINITY. A same-edge query must still take the along-edge
        // path; only then is the cross-component distance INFINITY.
        let locs = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(8.0, 0.0),
        ];
        let net = RoadNetwork::from_euclidean_edges(locs, &[(0, 1), (2, 3)]);
        let a = NetworkPoint::new(&net, 1, 0.5);
        let b = NetworkPoint::new(&net, 1, 2.25);
        // Bounded map from a: only a's own endpoints are finite.
        let (map, _) = gpssn_graph::dijkstra_bounded(net.graph(), &a.seeds(&net), 0.75);
        assert_eq!(map[0], f64::INFINITY);
        assert_eq!(map[1], f64::INFINITY);
        assert!((point_dist_from_map(&net, &map, &a, &b) - 1.75).abs() < 1e-9);
        // Cross-component distance from a seed on the other edge is
        // INFINITY even though a and b share an edge with each other.
        let c = NetworkPoint::new(&net, 0, 0.5);
        let (map_c, _) = gpssn_graph::dijkstra_bounded(net.graph(), &c.seeds(&net), 100.0);
        assert_eq!(point_dist_from_map(&net, &map_c, &c, &b), f64::INFINITY);
        // And dist_rn agrees end to end.
        assert!((dist_rn(&net, &a, &b) - 1.75).abs() < 1e-9);
        assert_eq!(dist_rn(&net, &c, &b), f64::INFINITY);
    }

    #[test]
    fn shared_endpoint_targets_do_not_inflate_settles() {
        // A path 0-1-2-3-4; targets on edges (0,1) and (1,2) share
        // endpoint 1. The distinct endpoint set {0, 1, 2} settles after
        // 3 pops; the duplicate must neither stall termination nor
        // inflate the settle count charged to budgets.
        let locs: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let net = RoadNetwork::from_euclidean_edges(locs, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let a = NetworkPoint::new(&net, 0, 0.0);
        let targets = [
            NetworkPoint::new(&net, 0, 0.5),
            NetworkPoint::new(&net, 1, 0.5),
        ];
        let (dists, settled) = dist_rn_many_counted(&net, &a, &targets);
        assert!((dists[0] - 0.5).abs() < 1e-9);
        assert!((dists[1] - 1.5).abs() < 1e-9);
        assert_eq!(settled, 3, "duplicate endpoint 1 must count once");
    }

    #[test]
    fn workspace_reuse_matches_one_shot() {
        let net = ring();
        let mut ws = gpssn_graph::DijkstraWorkspace::new();
        let pts: Vec<NetworkPoint> = (0..4)
            .map(|e| NetworkPoint::new(&net, e, 0.25 + 0.1 * e as f64))
            .collect();
        for a in &pts {
            let (fresh, n_fresh) = dist_rn_many_counted(&net, a, &pts);
            let (reused, n_reused) = dist_rn_many_counted_with(&net, &mut ws, a, &pts);
            assert_eq!(fresh, reused);
            assert_eq!(n_fresh, n_reused);
        }
    }

    #[test]
    fn unreachable_route_is_none() {
        let locs = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(6.0, 0.0),
        ];
        let net = RoadNetwork::from_euclidean_edges(locs, &[(0, 1), (2, 3)]);
        let a = NetworkPoint::new(&net, 0, 0.5);
        let b = NetworkPoint::new(&net, 1, 0.5);
        assert!(shortest_route(&net, &a, &b).is_none());
    }

    fn random_connected_net(rng: &mut StdRng, n: usize) -> RoadNetwork {
        let locs: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let mut edges: Vec<(u32, u32)> = (1..n)
            .map(|v| (rng.gen_range(0..v) as u32, v as u32))
            .collect();
        for _ in 0..n {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v && !edges.contains(&(u, v)) && !edges.contains(&(v, u)) {
                edges.push((u, v));
            }
        }
        RoadNetwork::from_euclidean_edges(locs, &edges)
    }

    /// Random network with two disconnected clusters (unreachable pairs),
    /// occasional coincident vertices joined by zero-weight edges, and
    /// enough extra edges for alternative routes.
    fn random_ch_net(rng: &mut StdRng, n: usize) -> RoadNetwork {
        let mut locs: Vec<Point> = Vec::with_capacity(n);
        for i in 0..n {
            // Two clusters far apart; later vertices occasionally
            // duplicate an earlier location exactly.
            if i > 2 && rng.gen_bool(0.15) {
                let j = rng.gen_range(0..i);
                locs.push(locs[j]);
            } else {
                let base = if i % 2 == 0 { 0.0 } else { 1000.0 };
                locs.push(Point::new(
                    base + rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..10.0),
                ));
            }
        }
        let mut edges: Vec<(u32, u32, f64)> = Vec::new();
        let cluster = |i: usize| -> bool { locs[i].x >= 500.0 };
        for v in 2..n {
            // Span within the vertex's own cluster only.
            let candidates: Vec<usize> = (0..v).filter(|&u| cluster(u) == cluster(v)).collect();
            if let Some(&u) = candidates.get(rng.gen_range(0..candidates.len().max(1))) {
                let euclid = locs[u].distance(&locs[v]);
                let w = if euclid == 0.0 && rng.gen_bool(0.5) {
                    0.0
                } else {
                    euclid + rng.gen_range(0.0..3.0)
                };
                edges.push((u as u32, v as u32, w));
            }
        }
        for _ in 0..n {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && cluster(u) == cluster(v) {
                let euclid = locs[u].distance(&locs[v]);
                edges.push((u as u32, v as u32, euclid + rng.gen_range(0.0..5.0)));
            }
        }
        if edges.is_empty() {
            edges.push((0, 2, locs[0].distance(&locs[2]) + 1.0));
        }
        RoadNetwork::from_weighted_edges(locs, &edges)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The CH backend is bitwise-identical to the Dijkstra backend on
        /// random networks with unreachable pairs, same-edge shortcut
        /// pairs, and zero-weight edges — single rows and full matrices.
        #[test]
        fn ch_backend_is_bitwise_identical(seed in 0u64..1500, n in 4usize..28) {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_ch_net(&mut rng, n);
            let ch = gpssn_graph::ChOracle::build_with_threads(
                net.graph(),
                if seed % 3 == 0 { 2 } else { 1 },
            );
            let mut cs = gpssn_graph::ChSearch::new();
            let mut ws = DijkstraWorkspace::new();
            let m = net.num_edges();
            let mut pts: Vec<NetworkPoint> = (0..6)
                .map(|_| {
                    let e = rng.gen_range(0..m) as u32;
                    let len = net.edge_length(e);
                    NetworkPoint::new(&net, e, rng.gen_range(0.0..=1.0) * len)
                })
                .collect();
            // Force a same-edge pair.
            let twin_edge = pts[0].edge;
            let twin_len = net.edge_length(twin_edge);
            pts.push(NetworkPoint::new(
                &net,
                twin_edge,
                rng.gen_range(0.0..=1.0) * twin_len,
            ));
            let sources = &pts[..3];
            for a in sources {
                let (want, _) = dist_rn_many_counted_with(&net, &mut ws, a, &pts);
                let (got, _) = dist_rn_many_ch(&net, &ch, &mut cs, a, &pts);
                for (j, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                    prop_assert_eq!(
                        g.to_bits(), w.to_bits(),
                        "seed {} target {}: ch={:?} dijkstra={:?}", seed, j, g, w
                    );
                }
            }
            // The matrix kernel matches its per-source rows.
            let (matrix, _) = dist_rn_matrix_ch(&net, &ch, &mut cs, sources, &pts);
            for (i, a) in sources.iter().enumerate() {
                let want = dist_rn_many(&net, a, &pts);
                for (j, w) in want.iter().enumerate() {
                    prop_assert_eq!(matrix[i * pts.len() + j].to_bits(), w.to_bits());
                }
            }
        }

        /// dist_RN is symmetric, nonnegative, >= Euclidean distance, and
        /// satisfies the triangle inequality on random networks.
        #[test]
        fn metric_properties(seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_connected_net(&mut rng, 12);
            let m = net.num_edges();
            let pts: Vec<NetworkPoint> = (0..3)
                .map(|_| {
                    let e = rng.gen_range(0..m) as u32;
                    let len = net.edge_length(e);
                    NetworkPoint::new(&net, e, rng.gen_range(0.0..=1.0) * len)
                })
                .collect();
            let d01 = dist_rn(&net, &pts[0], &pts[1]);
            let d10 = dist_rn(&net, &pts[1], &pts[0]);
            let d02 = dist_rn(&net, &pts[0], &pts[2]);
            let d12 = dist_rn(&net, &pts[1], &pts[2]);
            prop_assert!((d01 - d10).abs() < 1e-9, "symmetry");
            prop_assert!(d01 >= 0.0);
            let euclid = pts[0].location(&net).distance(&pts[1].location(&net));
            prop_assert!(d01 + 1e-9 >= euclid, "network >= euclidean: {d01} vs {euclid}");
            prop_assert!(d02 <= d01 + d12 + 1e-9, "triangle inequality");
        }
    }
}
