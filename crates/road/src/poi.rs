//! POIs on road networks (Definition 2) and positions on edges.

use crate::distance::{self, dist_rn};
use crate::network::RoadNetwork;
use gpssn_graph::{DijkstraWorkspace, EdgeId, NodeId};
use gpssn_spatial::{Point, RStarTree};

/// Identifier of a POI within a [`PoiSet`].
pub type PoiId = u32;

/// A point on a road network: a position `offset` along edge `edge`,
/// measured from the edge's first endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkPoint {
    /// The road segment the point lies on.
    pub edge: EdgeId,
    /// Distance from the edge's first endpoint, in `[0, edge_length]`.
    pub offset: f64,
}

impl NetworkPoint {
    /// Creates a network point, clamping `offset` into the edge.
    pub fn new(net: &RoadNetwork, edge: EdgeId, offset: f64) -> Self {
        let len = net.edge_length(edge);
        NetworkPoint {
            edge,
            offset: offset.clamp(0.0, len),
        }
    }

    /// A network point sitting exactly on a vertex: uses any incident
    /// edge. Panics if the vertex is isolated.
    // Audited expect: the panic on isolated vertices is part of the
    // documented contract above.
    #[allow(clippy::expect_used)]
    pub fn at_vertex(net: &RoadNetwork, v: NodeId) -> Self {
        let nb = net
            .graph()
            .neighbors(v)
            .first()
            .copied()
            .expect("cannot place a network point on an isolated vertex");
        let (a, _, len) = net.edge(nb.edge);
        let offset = if a == v { 0.0 } else { len };
        NetworkPoint {
            edge: nb.edge,
            offset,
        }
    }

    /// 2-D location of the point (linear interpolation along the edge,
    /// which is exact for straight road segments and a close approximation
    /// otherwise).
    pub fn location(&self, net: &RoadNetwork) -> Point {
        let (u, v, len) = net.edge(self.edge);
        let t = if len == 0.0 { 0.0 } else { self.offset / len };
        net.location(u).lerp(&net.location(v), t)
    }

    /// Dijkstra seeds for this point: both endpoints of its edge with the
    /// corresponding along-edge initial distances.
    pub fn seeds(&self, net: &RoadNetwork) -> [(NodeId, f64); 2] {
        let (u, v, len) = net.edge(self.edge);
        [(u, self.offset), (v, len - self.offset)]
    }
}

/// A point of interest (Definition 2): a location on an edge plus a set of
/// keywords describing the facility.
#[derive(Debug, Clone)]
pub struct Poi {
    /// Where the POI sits on the road network.
    pub position: NetworkPoint,
    /// Keyword/topic ids (`o_i.K`), sorted and deduplicated.
    pub keywords: Vec<u32>,
}

impl Poi {
    /// Creates a POI, normalizing the keyword set.
    pub fn new(position: NetworkPoint, mut keywords: Vec<u32>) -> Self {
        keywords.sort_unstable();
        keywords.dedup();
        Poi { position, keywords }
    }
}

/// The set `O` of POIs over a road network, with an R\*-tree over their
/// 2-D locations for Euclidean prefiltering of road-network ball queries
/// (Euclidean distance never exceeds road-network distance, so the
/// prefilter is a superset and the final check is exact).
#[derive(Debug, Clone)]
pub struct PoiSet {
    pois: Vec<Poi>,
    locations: Vec<Point>,
    tree: RStarTree,
}

impl PoiSet {
    /// Builds a POI set (and its Euclidean R\*-tree) over `net`.
    pub fn new(net: &RoadNetwork, pois: Vec<Poi>) -> Self {
        let locations: Vec<Point> = pois.iter().map(|p| p.position.location(net)).collect();
        // STR bulk load: this tree is our internal Euclidean prefilter
        // (the paper's I_R is built with repeated insertion — see
        // gpssn-index), so the faster packing is fair game here.
        let tree = RStarTree::str_bulk_load(
            32,
            locations.iter().enumerate().map(|(i, &p)| (i as u32, p)),
        );
        PoiSet {
            pois,
            locations,
            tree,
        }
    }

    /// Number of POIs (`n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// POI accessor.
    #[inline]
    pub fn get(&self, id: PoiId) -> &Poi {
        &self.pois[id as usize]
    }

    /// All POIs.
    #[inline]
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// 2-D location of POI `id`.
    #[inline]
    pub fn location(&self, id: PoiId) -> Point {
        self.locations[id as usize]
    }

    /// The Euclidean R\*-tree over POI locations (shared with `I_R`).
    #[inline]
    pub fn tree(&self) -> &RStarTree {
        &self.tree
    }

    /// POIs within *Euclidean* distance `radius` of `center` — a superset
    /// of any road-network ball of the same radius.
    pub fn euclidean_ball(&self, center: Point, radius: f64) -> Vec<PoiId> {
        self.tree
            .within_radius(&center, radius)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Exact road-network ball `⊙(center, radius)`: ids of POIs whose
    /// road-network distance from `center` is at most `radius`, paired
    /// with those distances. Sorted by distance (ties by POI id).
    pub fn network_ball(
        &self,
        net: &RoadNetwork,
        center: &NetworkPoint,
        radius: f64,
    ) -> Vec<(PoiId, f64)> {
        let mut ws = DijkstraWorkspace::new();
        self.network_ball_with(net, &mut ws, center, radius)
    }

    /// [`PoiSet::network_ball`] running inside a caller-provided
    /// [`DijkstraWorkspace`], so repeated ball computations (index build,
    /// refinement) are allocation-free. Results are identical to the
    /// one-shot variant.
    pub fn network_ball_with(
        &self,
        net: &RoadNetwork,
        ws: &mut DijkstraWorkspace,
        center: &NetworkPoint,
        radius: f64,
    ) -> Vec<(PoiId, f64)> {
        let center_loc = center.location(net);
        let candidates = self.euclidean_ball(center_loc, radius);
        if candidates.is_empty() {
            return Vec::new();
        }
        ws.run_bounded(net.graph(), &center.seeds(net), radius);
        let dist = ws.dist();
        let mut out = Vec::new();
        for id in candidates {
            let pos = self.pois[id as usize].position;
            let d = distance::point_dist_from_map(net, dist, center, &pos);
            if d <= radius {
                out.push((id, d));
            }
        }
        // Total order: NaN-free by construction, but `total_cmp` makes
        // the sort panic-proof and fully deterministic; ties break by id
        // (euclidean_ball emits candidates in R*-tree order, not id
        // order).
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Exact road-network distance between two POIs.
    pub fn poi_distance(&self, net: &RoadNetwork, a: PoiId, b: PoiId) -> f64 {
        dist_rn(
            net,
            &self.pois[a as usize].position,
            &self.pois[b as usize].position,
        )
    }

    /// The `k` POIs nearest to `from` by road-network distance, sorted
    /// ascending — incremental network expansion (INE, Papadias et al.,
    /// reference \[34\] of the paper): grow a Euclidean candidate ring,
    /// verify with exact network distances, and stop once `k` verified
    /// results beat the ring radius (Euclidean ≤ network distance makes
    /// the cut safe).
    pub fn network_knn(
        &self,
        net: &RoadNetwork,
        from: &NetworkPoint,
        k: usize,
    ) -> Vec<(PoiId, f64)> {
        if k == 0 || self.pois.is_empty() {
            return Vec::new();
        }
        let k = k.min(self.pois.len());
        let origin = from.location(net);
        let mut radius = {
            // Seed the ring with the Euclidean k-NN distance.
            let seeds = self.tree.nearest_k(&origin, k);
            seeds.last().map_or(1.0, |&(_, _, d)| d.max(1e-6))
        };
        loop {
            let candidates = self.euclidean_ball(origin, radius);
            let positions: Vec<NetworkPoint> = candidates
                .iter()
                .map(|&id| self.pois[id as usize].position)
                .collect();
            let dists = crate::distance::dist_rn_many(net, from, &positions);
            let mut verified: Vec<(PoiId, f64)> = candidates.into_iter().zip(dists).collect();
            verified.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            // Safe stop: the k-th verified network distance fits inside
            // the Euclidean ring (nothing outside can be closer).
            if verified.len() >= k && verified[k - 1].1 <= radius {
                verified.truncate(k);
                return verified;
            }
            if verified.len() == self.pois.len() {
                verified.truncate(k);
                return verified;
            }
            radius *= 2.0;
        }
    }

    /// Union of the keyword sets of `ids` (sorted, deduplicated) — the
    /// `∪_{o_i∈R} o_i.K` term of the matching score (Eq. 2).
    pub fn keyword_union(&self, ids: &[PoiId]) -> Vec<u32> {
        let mut out: Vec<u32> = ids
            .iter()
            .flat_map(|&id| self.pois[id as usize].keywords.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_network() -> RoadNetwork {
        // 0 --(2.0)-- 1 --(2.0)-- 2 on a straight line.
        let locs = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(4.0, 0.0),
        ];
        RoadNetwork::from_euclidean_edges(locs, &[(0, 1), (1, 2)])
    }

    #[test]
    fn network_point_location_interpolates() {
        let net = line_network();
        let p = NetworkPoint::new(&net, 0, 0.5);
        assert_eq!(p.location(&net), Point::new(0.5, 0.0));
    }

    #[test]
    fn network_point_clamps_offset() {
        let net = line_network();
        let p = NetworkPoint::new(&net, 0, 99.0);
        assert_eq!(p.offset, 2.0);
        let q = NetworkPoint::new(&net, 0, -1.0);
        assert_eq!(q.offset, 0.0);
    }

    #[test]
    fn at_vertex_places_on_incident_edge() {
        let net = line_network();
        let p = NetworkPoint::at_vertex(&net, 1);
        assert_eq!(p.location(&net), Point::new(2.0, 0.0));
        let q = NetworkPoint::at_vertex(&net, 0);
        assert_eq!(q.location(&net), Point::new(0.0, 0.0));
    }

    #[test]
    fn seeds_cover_both_endpoints() {
        let net = line_network();
        let p = NetworkPoint::new(&net, 1, 0.5); // between vertices 1 and 2
        let seeds = p.seeds(&net);
        assert!(seeds.contains(&(1, 0.5)));
        assert!(seeds.contains(&(2, 1.5)));
    }

    #[test]
    fn poi_normalizes_keywords() {
        let net = line_network();
        let p = Poi::new(NetworkPoint::new(&net, 0, 1.0), vec![3, 1, 3, 2]);
        assert_eq!(p.keywords, vec![1, 2, 3]);
    }

    fn sample_set(net: &RoadNetwork) -> PoiSet {
        let pois = vec![
            Poi::new(NetworkPoint::new(net, 0, 0.5), vec![0]), // at x=0.5
            Poi::new(NetworkPoint::new(net, 0, 1.5), vec![1]), // at x=1.5
            Poi::new(NetworkPoint::new(net, 1, 1.0), vec![2]), // at x=3.0
        ];
        PoiSet::new(net, pois)
    }

    #[test]
    fn euclidean_ball_prefilters() {
        let net = line_network();
        let set = sample_set(&net);
        let mut ids = set.euclidean_ball(Point::new(0.0, 0.0), 1.6);
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn network_ball_is_exact_and_sorted() {
        let net = line_network();
        let set = sample_set(&net);
        let center = set.get(0).position; // x = 0.5
        let ball = set.network_ball(&net, &center, 2.6);
        let ids: Vec<PoiId> = ball.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!((ball[0].1 - 0.0).abs() < 1e-9);
        assert!((ball[1].1 - 1.0).abs() < 1e-9);
        assert!((ball[2].1 - 2.5).abs() < 1e-9);
        let tight = set.network_ball(&net, &center, 1.0);
        assert_eq!(tight.len(), 2);
    }

    #[test]
    fn poi_distance_same_edge() {
        let net = line_network();
        let set = sample_set(&net);
        assert!((set.poi_distance(&net, 0, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn network_knn_matches_brute_force() {
        let net = line_network();
        let set = sample_set(&net);
        let from = NetworkPoint::new(&net, 0, 0.0); // x = 0
        for k in 1..=3 {
            let got = set.network_knn(&net, &from, k);
            assert_eq!(got.len(), k);
            let mut expected: Vec<(PoiId, f64)> = (0..set.len() as PoiId)
                .map(|id| (id, dist_rn(&net, &from, &set.get(id).position)))
                .collect();
            expected.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            for i in 0..k {
                assert!((got[i].1 - expected[i].1).abs() < 1e-9, "k={k} rank {i}");
            }
        }
    }

    #[test]
    fn network_knn_edge_cases() {
        let net = line_network();
        let set = sample_set(&net);
        let from = NetworkPoint::new(&net, 0, 0.0);
        assert!(set.network_knn(&net, &from, 0).is_empty());
        // k larger than the POI count returns everything.
        assert_eq!(set.network_knn(&net, &from, 99).len(), set.len());
    }

    #[test]
    fn keyword_union_dedups() {
        let net = line_network();
        let pois = vec![
            Poi::new(NetworkPoint::new(&net, 0, 0.1), vec![0, 1]),
            Poi::new(NetworkPoint::new(&net, 0, 0.2), vec![1, 2]),
        ];
        let set = PoiSet::new(&net, pois);
        assert_eq!(set.keyword_union(&[0, 1]), vec![0, 1, 2]);
        assert!(set.keyword_union(&[]).is_empty());
    }
}
