//! # gpssn-road — the spatial road network substrate `G_r`
//!
//! Implements Definitions 1–2 of the paper: a road network is a planar
//! weighted graph whose vertices are road intersections with 2-D
//! coordinates and whose edges are road segments; POIs are facilities
//! located *on edges* with a keyword set each.
//!
//! * [`network`] — [`RoadNetwork`]: CSR graph + vertex coordinates.
//! * [`poi`] — [`NetworkPoint`] (a position on an edge), [`Poi`], and
//!   [`PoiSet`] (POI collection with an R\*-tree Euclidean prefilter and
//!   exact road-network ball queries `⊙(o_i, r)`).
//! * [`distance`] — exact `dist_RN` between arbitrary on-edge points via
//!   seeded Dijkstra, plus batched variants.
//! * [`pivots`] — road-network pivots `rp_1..rp_h` with precomputed
//!   distance tables and the triangle-inequality lower/upper bounds used
//!   by every road-distance pruning rule (Eqs. 16–17 of the paper).
//! * [`generator`] — synthetic planar-ish road network and POI generators
//!   (Section 6.1's synthetic data pipeline).

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod distance;
pub mod generator;
pub mod network;
pub mod pivots;
pub mod poi;

pub use distance::{
    dist_rn, dist_rn_many, dist_rn_many_ch, dist_rn_many_counted, dist_rn_many_counted_with,
    dist_rn_matrix_ch, dist_rn_with, point_dist_from_map, shortest_route, Route,
};
pub use generator::{generate_pois, generate_road_network, PoiGenConfig, RoadGenConfig};
pub use network::RoadNetwork;
pub use pivots::{lb_dist_via_pivots, ub_dist_via_pivots, RoadPivots};
pub use poi::{NetworkPoint, Poi, PoiId, PoiSet};
