//! The spatial-social network `G_rs` (Definition 4).

use gpssn_road::{NetworkPoint, PoiSet, RoadNetwork};
use gpssn_social::{SocialNetwork, UserId};
use gpssn_spatial::Point;

/// A spatial-social network: road network + POIs + social network + a
/// home location on the road network for every user.
#[derive(Debug, Clone)]
pub struct SpatialSocialNetwork {
    road: RoadNetwork,
    pois: PoiSet,
    social: SocialNetwork,
    homes: Vec<NetworkPoint>,
}

impl SpatialSocialNetwork {
    /// Assembles a spatial-social network.
    ///
    /// # Panics
    /// Panics if `homes.len()` differs from the number of social users.
    pub fn new(
        road: RoadNetwork,
        pois: PoiSet,
        social: SocialNetwork,
        homes: Vec<NetworkPoint>,
    ) -> Self {
        assert_eq!(
            homes.len(),
            social.num_users(),
            "every user needs a home location on the road network"
        );
        SpatialSocialNetwork {
            road,
            pois,
            social,
            homes,
        }
    }

    /// The road network `G_r`.
    #[inline]
    pub fn road(&self) -> &RoadNetwork {
        &self.road
    }

    /// The POI set `O`.
    #[inline]
    pub fn pois(&self) -> &PoiSet {
        &self.pois
    }

    /// The social network `G_s`.
    #[inline]
    pub fn social(&self) -> &SocialNetwork {
        &self.social
    }

    /// Home location of user `u` on the road network.
    #[inline]
    pub fn home(&self, u: UserId) -> NetworkPoint {
        self.homes[u as usize]
    }

    /// All home locations.
    #[inline]
    pub fn homes(&self) -> &[NetworkPoint] {
        &self.homes
    }

    /// 2-D coordinates of user `u`'s home.
    pub fn home_location(&self, u: UserId) -> Point {
        self.homes[u as usize].location(&self.road)
    }

    /// Exact road-network distance from user `u`'s home to POI `o`
    /// (`dist_RN(u_j, o_i)` of Definition 5).
    pub fn user_poi_distance(&self, u: UserId, o: gpssn_road::PoiId) -> f64 {
        gpssn_road::dist_rn(
            &self.road,
            &self.homes[u as usize],
            &self.pois.get(o).position,
        )
    }

    /// The paper's objective: `maxdist_RN(S, R) = max_{u∈S} max_{o∈R}
    /// dist_RN(u, o)` computed exactly. `INFINITY` for empty inputs is
    /// avoided by returning 0 when either set is empty.
    pub fn maxdist_rn(&self, users: &[UserId], pois: &[gpssn_road::PoiId]) -> f64 {
        let mut max = 0.0f64;
        for &u in users {
            let targets: Vec<NetworkPoint> =
                pois.iter().map(|&o| self.pois.get(o).position).collect();
            let dists = gpssn_road::dist_rn_many(&self.road, &self.homes[u as usize], &targets);
            for d in dists {
                max = max.max(d);
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpssn_road::Poi;
    use gpssn_social::InterestVector;

    /// A tiny deterministic fixture: 3-vertex line road, 2 POIs, 2 users.
    pub(crate) fn tiny() -> SpatialSocialNetwork {
        let locs = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(4.0, 0.0),
        ];
        let road = RoadNetwork::from_euclidean_edges(locs, &[(0, 1), (1, 2)]);
        let pois = PoiSet::new(
            &road,
            vec![
                Poi::new(NetworkPoint::new(&road, 0, 1.0), vec![0]), // x=1
                Poi::new(NetworkPoint::new(&road, 1, 1.0), vec![1]), // x=3
            ],
        );
        let social = SocialNetwork::new(
            vec![
                InterestVector::new(vec![1.0, 0.0]),
                InterestVector::new(vec![0.0, 1.0]),
            ],
            &[(0, 1)],
        );
        let homes = vec![
            NetworkPoint::new(&road, 0, 0.0), // x=0
            NetworkPoint::new(&road, 1, 2.0), // x=4
        ];
        SpatialSocialNetwork::new(road, pois, social, homes)
    }

    #[test]
    fn accessors_line_up() {
        let ssn = tiny();
        assert_eq!(ssn.social().num_users(), 2);
        assert_eq!(ssn.pois().len(), 2);
        assert_eq!(ssn.home_location(0), Point::new(0.0, 0.0));
        assert_eq!(ssn.home_location(1), Point::new(4.0, 0.0));
    }

    #[test]
    fn user_poi_distances() {
        let ssn = tiny();
        assert!((ssn.user_poi_distance(0, 0) - 1.0).abs() < 1e-9);
        assert!((ssn.user_poi_distance(0, 1) - 3.0).abs() < 1e-9);
        assert!((ssn.user_poi_distance(1, 0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn maxdist_takes_worst_pair() {
        let ssn = tiny();
        let d = ssn.maxdist_rn(&[0, 1], &[0, 1]);
        assert!((d - 3.0).abs() < 1e-9);
        assert_eq!(ssn.maxdist_rn(&[], &[0]), 0.0);
        assert_eq!(ssn.maxdist_rn(&[0], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "home location")]
    fn rejects_missing_homes() {
        let t = tiny();
        SpatialSocialNetwork::new(
            t.road.clone(),
            t.pois.clone(),
            t.social.clone(),
            vec![t.homes[0]],
        );
    }
}
