//! The user–POI-set matching score `Match_Score(u_j, R)` — Eq. (2).
//!
//! `Match_Score(u_j, R) = Σ_f w_f^{(j)} · χ(w_f^{(j)} ∈ ∪_{o∈R} o.K)`:
//! the total interest weight of the user's topics that are covered by at
//! least one POI of `R`. It is monotone in `R` (Lemma 2), which is what
//! makes superset-based upper bounds safe.

use crate::network::SpatialSocialNetwork;
use gpssn_road::PoiId;
use gpssn_social::{InterestVector, UserId};

/// Matching score of an interest vector against a keyword set. Keywords
/// are topic ids indexing the vector; out-of-range keywords contribute
/// nothing (weight 0).
pub fn match_score_keywords(interest: &InterestVector, keywords: &[u32]) -> f64 {
    let mut covered = vec![false; interest.dim()];
    for &k in keywords {
        if (k as usize) < covered.len() {
            covered[k as usize] = true;
        }
    }
    covered
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c)
        .map(|(f, _)| interest.weight(f))
        .sum()
}

/// `Match_Score(u_j, R)` over a spatial-social network: the user's
/// interest weight covered by the keyword union of the POI set `R`.
pub fn match_score(ssn: &SpatialSocialNetwork, user: UserId, pois: &[PoiId]) -> f64 {
    let union = ssn.pois().keyword_union(pois);
    match_score_keywords(ssn.social().interest(user), &union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scores_covered_topics_only() {
        let w = InterestVector::new(vec![0.7, 0.3, 0.7]);
        assert!((match_score_keywords(&w, &[0]) - 0.7).abs() < 1e-12);
        assert!((match_score_keywords(&w, &[0, 2]) - 1.4).abs() < 1e-12);
        assert!((match_score_keywords(&w, &[0, 1, 2]) - 1.7).abs() < 1e-12);
        assert_eq!(match_score_keywords(&w, &[]), 0.0);
    }

    #[test]
    fn duplicate_keywords_count_once() {
        let w = InterestVector::new(vec![0.5, 0.5]);
        assert!((match_score_keywords(&w, &[0, 0, 0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_keywords_ignored() {
        let w = InterestVector::new(vec![0.5]);
        assert_eq!(match_score_keywords(&w, &[7]), 0.0);
    }

    proptest! {
        /// Monotonicity (Lemma 2): adding POI keywords never lowers the
        /// score, and the superset score upper-bounds the subset score.
        #[test]
        fn monotone_in_keyword_set(
            weights in proptest::collection::vec(0.0f64..1.0, 1..8),
            ks in proptest::collection::vec(0u32..8, 0..10),
            extra in proptest::collection::vec(0u32..8, 0..5),
        ) {
            let w = InterestVector::new(weights);
            let base = match_score_keywords(&w, &ks);
            let mut bigger = ks.clone();
            bigger.extend(extra);
            let sup = match_score_keywords(&w, &bigger);
            prop_assert!(sup + 1e-12 >= base);
        }

        /// Score never exceeds the total interest mass.
        #[test]
        fn bounded_by_total_weight(
            weights in proptest::collection::vec(0.0f64..1.0, 1..8),
            ks in proptest::collection::vec(0u32..16, 0..16),
        ) {
            let w = InterestVector::new(weights.clone());
            let total: f64 = weights.iter().sum();
            prop_assert!(match_score_keywords(&w, &ks) <= total + 1e-12);
        }
    }
}
