//! # gpssn-ssn — integrated spatial-social networks `G_rs`
//!
//! Implements Definition 4 of the paper: the combination of a road network
//! `G_r` (with POIs) and a social network `G_s`, where every user's home
//! is a location on a road-network edge.
//!
//! * [`network`] — [`SpatialSocialNetwork`] tying the two layers together.
//! * [`scores`] — the user–POI-set matching score `Match_Score(u_j, R)`
//!   (Eq. 2) in exact and keyword-set forms.
//! * [`datasets`] — dataset builders: the paper's synthetic `UNI`/`ZIPF`
//!   pipelines and the surrogate `Bri+Cal` / `Gow+Col` spatial-social
//!   networks (simulated check-in histories; see DESIGN.md §5 for the
//!   substitution argument).
//! * [`stats`] — Table-2 style dataset statistics.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod datasets;
pub mod io;
pub mod network;
pub mod scores;
pub mod stats;

pub use datasets::{
    bri_cal_surrogate, gow_col_surrogate, synthetic, DatasetKind, SurrogateConfig, SyntheticConfig,
};
pub use io::{load_ssn, read_ssn, save_ssn, write_ssn};
pub use network::SpatialSocialNetwork;
pub use scores::{match_score, match_score_keywords};
pub use stats::DatasetStats;
