//! Plain-text serialization of spatial-social networks.
//!
//! A simple line-oriented format (versioned header, one section per
//! layer) so generated datasets can be saved once and reused across runs
//! and tools — see the `datagen` and `gpq` binaries in `gpssn-bench`.
//! The format is exact for the graph structure and keywords; floating
//! point fields round-trip through their shortest-exact `{:?}` encoding.

use crate::network::SpatialSocialNetwork;
use gpssn_road::{NetworkPoint, Poi, PoiSet, RoadNetwork};
use gpssn_social::{InterestVector, SocialNetwork};
use gpssn_spatial::Point;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &str = "# gpssn-ssn v1";

/// Serializes `ssn` to `w`.
pub fn write_ssn<W: Write>(ssn: &SpatialSocialNetwork, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{MAGIC}")?;

    let road = ssn.road();
    writeln!(w, "road-vertices {}", road.num_vertices())?;
    for v in 0..road.num_vertices() as u32 {
        let p = road.location(v);
        writeln!(w, "{:?} {:?}", p.x, p.y)?;
    }
    writeln!(w, "road-edges {}", road.num_edges())?;
    for (u, v, len) in road.graph().edges() {
        writeln!(w, "{u} {v} {len:?}")?;
    }

    writeln!(w, "pois {}", ssn.pois().len())?;
    for poi in ssn.pois().pois() {
        let ks: Vec<String> = poi.keywords.iter().map(|k| k.to_string()).collect();
        writeln!(w, "{} {:?} {}", poi.position.edge, poi.position.offset, ks.join(","))?;
    }

    let social = ssn.social();
    writeln!(w, "users {} topics {}", social.num_users(), social.num_topics())?;
    for u in 0..social.num_users() as u32 {
        let ws: Vec<String> = social.interest(u).weights().iter().map(|x| format!("{x:?}")).collect();
        writeln!(w, "{}", ws.join(" "))?;
    }
    writeln!(w, "friendships {}", social.num_friendships())?;
    for (a, b, _) in social.graph().edges() {
        writeln!(w, "{a} {b}")?;
    }

    writeln!(w, "homes {}", ssn.homes().len())?;
    for h in ssn.homes() {
        writeln!(w, "{} {:?}", h.edge, h.offset)?;
    }
    w.flush()
}

/// Deserializes a spatial-social network from `r`.
pub fn read_ssn<R: Read>(r: R) -> io::Result<SpatialSocialNetwork> {
    let mut lines = BufReader::new(r).lines();
    let mut next = |what: &str| -> io::Result<String> {
        lines
            .next()
            .ok_or_else(|| bad(format!("unexpected EOF: expected {what}")))?};

    let header = next("header")?;
    if header.trim() != MAGIC {
        return Err(bad(format!("bad header: {header:?}")));
    }

    let nv: usize = field(&next("road-vertices")?, "road-vertices")?;
    let mut locations = Vec::with_capacity(nv);
    for _ in 0..nv {
        let line = next("vertex")?;
        let mut it = line.split_whitespace();
        let x = parse_f64(it.next(), "vertex x")?;
        let y = parse_f64(it.next(), "vertex y")?;
        locations.push(Point::new(x, y));
    }
    let ne: usize = field(&next("road-edges")?, "road-edges")?;
    let mut edges = Vec::with_capacity(ne);
    for _ in 0..ne {
        let line = next("edge")?;
        let mut it = line.split_whitespace();
        let u: u32 = parse(it.next(), "edge u")?;
        let v: u32 = parse(it.next(), "edge v")?;
        let len = parse_f64(it.next(), "edge len")?;
        edges.push((u, v, len));
    }
    let road = RoadNetwork::from_weighted_edges(locations, &edges);

    let np: usize = field(&next("pois")?, "pois")?;
    let mut pois = Vec::with_capacity(np);
    for _ in 0..np {
        let line = next("poi")?;
        let mut it = line.split_whitespace();
        let edge: u32 = parse(it.next(), "poi edge")?;
        let offset = parse_f64(it.next(), "poi offset")?;
        let keywords: Vec<u32> = match it.next() {
            None | Some("") => Vec::new(),
            Some(ks) => ks
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.parse::<u32>().map_err(|e| bad(format!("poi keyword: {e}"))))
                .collect::<io::Result<_>>()?,
        };
        pois.push(Poi::new(NetworkPoint::new(&road, edge, offset), keywords));
    }
    let pois = PoiSet::new(&road, pois);

    let users_line = next("users")?;
    let mut it = users_line.split_whitespace();
    expect(it.next(), "users")?;
    let m: usize = parse(it.next(), "user count")?;
    expect(it.next(), "topics")?;
    let d: usize = parse(it.next(), "topic count")?;
    let mut interests = Vec::with_capacity(m);
    for _ in 0..m {
        let line = next("interest vector")?;
        let ws: Vec<f64> = line
            .split_whitespace()
            .map(|s| s.parse::<f64>().map_err(|e| bad(format!("interest weight: {e}"))))
            .collect::<io::Result<_>>()?;
        if ws.len() != d {
            return Err(bad(format!("interest vector has {} weights, expected {d}", ws.len())));
        }
        interests.push(InterestVector::new(ws));
    }
    let nf: usize = field(&next("friendships")?, "friendships")?;
    let mut friendships = Vec::with_capacity(nf);
    for _ in 0..nf {
        let line = next("friendship")?;
        let mut it = line.split_whitespace();
        let a: u32 = parse(it.next(), "friendship a")?;
        let b: u32 = parse(it.next(), "friendship b")?;
        friendships.push((a, b));
    }
    let social = SocialNetwork::new(interests, &friendships);

    let nh: usize = field(&next("homes")?, "homes")?;
    if nh != m {
        return Err(bad(format!("{nh} homes for {m} users")));
    }
    let mut homes = Vec::with_capacity(nh);
    for _ in 0..nh {
        let line = next("home")?;
        let mut it = line.split_whitespace();
        let edge: u32 = parse(it.next(), "home edge")?;
        let offset = parse_f64(it.next(), "home offset")?;
        homes.push(NetworkPoint::new(&road, edge, offset));
    }
    Ok(SpatialSocialNetwork::new(road, pois, social, homes))
}

/// Saves to a file path.
pub fn save_ssn(ssn: &SpatialSocialNetwork, path: impl AsRef<Path>) -> io::Result<()> {
    write_ssn(ssn, std::fs::File::create(path)?)
}

/// Loads from a file path.
pub fn load_ssn(path: impl AsRef<Path>) -> io::Result<SpatialSocialNetwork> {
    read_ssn(std::fs::File::open(path)?)
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn field<T: std::str::FromStr>(line: &str, name: &str) -> io::Result<T> {
    let mut it = line.split_whitespace();
    let tag = it.next().unwrap_or("");
    if tag != name {
        return Err(bad(format!("expected section {name:?}, found {tag:?}")));
    }
    parse(it.next(), name)
}

fn parse<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> io::Result<T> {
    tok.ok_or_else(|| bad(format!("missing {what}")))?
        .parse::<T>()
        .map_err(|_| bad(format!("unparsable {what}")))
}

fn parse_f64(tok: Option<&str>, what: &str) -> io::Result<f64> {
    parse(tok, what)
}

fn expect(tok: Option<&str>, what: &str) -> io::Result<()> {
    match tok {
        Some(t) if t == what => Ok(()),
        other => Err(bad(format!("expected {what:?}, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{synthetic, SyntheticConfig};

    #[test]
    fn round_trip_preserves_everything() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), 13);
        let mut buf = Vec::new();
        write_ssn(&ssn, &mut buf).unwrap();
        let back = read_ssn(buf.as_slice()).unwrap();

        assert_eq!(back.road().num_vertices(), ssn.road().num_vertices());
        assert_eq!(back.road().num_edges(), ssn.road().num_edges());
        assert_eq!(back.pois().len(), ssn.pois().len());
        assert_eq!(back.social().num_users(), ssn.social().num_users());
        assert_eq!(back.social().num_friendships(), ssn.social().num_friendships());
        // Exact float round-trip via {:?}.
        for v in 0..ssn.road().num_vertices() as u32 {
            assert_eq!(back.road().location(v), ssn.road().location(v));
        }
        for o in 0..ssn.pois().len() as u32 {
            assert_eq!(back.pois().get(o).keywords, ssn.pois().get(o).keywords);
            assert_eq!(back.pois().get(o).position, ssn.pois().get(o).position);
        }
        for u in 0..ssn.social().num_users() as u32 {
            assert_eq!(back.social().interest(u), ssn.social().interest(u));
            assert_eq!(back.home(u), ssn.home(u));
        }
        // Distances agree, so query results will too.
        assert_eq!(back.user_poi_distance(0, 0), ssn.user_poi_distance(0, 0));
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_ssn("nonsense\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), 13);
        let mut buf = Vec::new();
        write_ssn(&ssn, &mut buf).unwrap();
        let cut = &buf[..buf.len() / 2];
        assert!(read_ssn(cut).is_err());
    }

    #[test]
    fn save_and_load_files() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), 14);
        let path = std::env::temp_dir().join("gpssn_io_test.ssn");
        save_ssn(&ssn, &path).unwrap();
        let back = load_ssn(&path).unwrap();
        assert_eq!(back.social().num_users(), ssn.social().num_users());
        let _ = std::fs::remove_file(&path);
    }
}
