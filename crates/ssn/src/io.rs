//! Plain-text serialization of spatial-social networks.
//!
//! A simple line-oriented format (versioned header, one section per
//! layer) so generated datasets can be saved once and reused across runs
//! and tools — see the `datagen` and `gpq` binaries in `gpssn-bench`.
//! The format is exact for the graph structure and keywords; floating
//! point fields round-trip through their shortest-exact `{:?}` encoding.

use crate::network::SpatialSocialNetwork;
use gpssn_road::{NetworkPoint, Poi, PoiSet, RoadNetwork};
use gpssn_social::{InterestVector, SocialNetwork};
use gpssn_spatial::Point;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &str = "# gpssn-ssn v1";

/// Serializes `ssn` to `w`.
pub fn write_ssn<W: Write>(ssn: &SpatialSocialNetwork, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{MAGIC}")?;

    let road = ssn.road();
    writeln!(w, "road-vertices {}", road.num_vertices())?;
    for v in 0..road.num_vertices() as u32 {
        let p = road.location(v);
        writeln!(w, "{:?} {:?}", p.x, p.y)?;
    }
    writeln!(w, "road-edges {}", road.num_edges())?;
    for (u, v, len) in road.graph().edges() {
        writeln!(w, "{u} {v} {len:?}")?;
    }

    writeln!(w, "pois {}", ssn.pois().len())?;
    for poi in ssn.pois().pois() {
        let ks: Vec<String> = poi.keywords.iter().map(|k| k.to_string()).collect();
        writeln!(
            w,
            "{} {:?} {}",
            poi.position.edge,
            poi.position.offset,
            ks.join(",")
        )?;
    }

    let social = ssn.social();
    writeln!(
        w,
        "users {} topics {}",
        social.num_users(),
        social.num_topics()
    )?;
    for u in 0..social.num_users() as u32 {
        let ws: Vec<String> = social
            .interest(u)
            .weights()
            .iter()
            .map(|x| format!("{x:?}"))
            .collect();
        writeln!(w, "{}", ws.join(" "))?;
    }
    writeln!(w, "friendships {}", social.num_friendships())?;
    for (a, b, _) in social.graph().edges() {
        writeln!(w, "{a} {b}")?;
    }

    writeln!(w, "homes {}", ssn.homes().len())?;
    for h in ssn.homes() {
        writeln!(w, "{} {:?}", h.edge, h.offset)?;
    }
    w.flush()
}

/// Upper bound for pre-allocation from untrusted counts: a corrupt
/// header claiming 10^18 vertices must not abort the process inside
/// `with_capacity` — the vectors still grow to the real size on demand.
const MAX_PREALLOC: usize = 1 << 16;

/// Deserializes a spatial-social network from `r`.
///
/// Every malformed input — truncation, bad tokens, out-of-range ids,
/// non-finite floats, inconsistent counts — is reported as an
/// [`io::ErrorKind::InvalidData`] error. No input reachable through this
/// function panics: all referential and numeric invariants the in-memory
/// constructors assert are validated here first.
pub fn read_ssn<R: Read>(r: R) -> io::Result<SpatialSocialNetwork> {
    if gpssn_failpoint::failpoint!("ssn::read") {
        return Err(io::Error::other("injected fault: ssn::read"));
    }
    let mut lines = BufReader::new(r).lines();
    let mut next = |what: &str| -> io::Result<String> {
        lines
            .next()
            .ok_or_else(|| bad(format!("unexpected EOF: expected {what}")))?
    };

    let header = next("header")?;
    if header.trim() != MAGIC {
        return Err(bad(format!("bad header: {header:?}")));
    }

    let nv: usize = field(&next("road-vertices")?, "road-vertices")?;
    let mut locations = Vec::with_capacity(nv.min(MAX_PREALLOC));
    for _ in 0..nv {
        let line = next("vertex")?;
        let mut it = line.split_whitespace();
        let x = parse_finite(it.next(), "vertex x")?;
        let y = parse_finite(it.next(), "vertex y")?;
        locations.push(Point::new(x, y));
    }
    let ne: usize = field(&next("road-edges")?, "road-edges")?;
    let mut edges = Vec::with_capacity(ne.min(MAX_PREALLOC));
    for _ in 0..ne {
        let line = next("edge")?;
        let mut it = line.split_whitespace();
        let u: u32 = parse(it.next(), "edge u")?;
        let v: u32 = parse(it.next(), "edge v")?;
        let len = parse_finite(it.next(), "edge len")?;
        if (u as usize) >= nv || (v as usize) >= nv {
            return Err(bad(format!("edge ({u}, {v}) references a vertex >= {nv}")));
        }
        if u == v {
            return Err(bad(format!("edge ({u}, {v}) is a self-loop")));
        }
        if len < 0.0 {
            return Err(bad(format!("edge ({u}, {v}) has negative length {len}")));
        }
        // Euclidean-prefilter invariant: a road segment can never be
        // shorter than the straight line between its endpoints.
        let euclid = locations[u as usize].distance(&locations[v as usize]);
        if len + 1e-9 < euclid {
            return Err(bad(format!(
                "edge ({u}, {v}) length {len} shorter than Euclidean distance {euclid}"
            )));
        }
        edges.push((u, v, len));
    }
    let road = RoadNetwork::from_weighted_edges(locations, &edges);
    let num_edges = road.num_edges();

    let np: usize = field(&next("pois")?, "pois")?;
    let mut pois = Vec::with_capacity(np.min(MAX_PREALLOC));
    for _ in 0..np {
        let line = next("poi")?;
        let mut it = line.split_whitespace();
        let edge: u32 = parse(it.next(), "poi edge")?;
        let offset = parse_finite(it.next(), "poi offset")?;
        if (edge as usize) >= num_edges {
            return Err(bad(format!(
                "poi edge {edge} out of range (road has {num_edges} edges)"
            )));
        }
        let keywords: Vec<u32> = match it.next() {
            None | Some("") => Vec::new(),
            Some(ks) => ks
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse::<u32>()
                        .map_err(|e| bad(format!("poi keyword: {e}")))
                })
                .collect::<io::Result<_>>()?,
        };
        pois.push(Poi::new(NetworkPoint::new(&road, edge, offset), keywords));
    }
    let pois = PoiSet::new(&road, pois);

    let users_line = next("users")?;
    let mut it = users_line.split_whitespace();
    expect(it.next(), "users")?;
    let m: usize = parse(it.next(), "user count")?;
    expect(it.next(), "topics")?;
    let d: usize = parse(it.next(), "topic count")?;
    let mut interests = Vec::with_capacity(m.min(MAX_PREALLOC));
    for _ in 0..m {
        let line = next("interest vector")?;
        let ws: Vec<f64> = line
            .split_whitespace()
            .map(|s| {
                s.parse::<f64>()
                    .map_err(|e| bad(format!("interest weight: {e}")))
            })
            .collect::<io::Result<_>>()?;
        if ws.len() != d {
            return Err(bad(format!(
                "interest vector has {} weights, expected {d}",
                ws.len()
            )));
        }
        if let Some(w) = ws
            .iter()
            .find(|w| !w.is_finite() || !(0.0..=1.0).contains(*w))
        {
            return Err(bad(format!("interest weight {w} outside [0, 1]")));
        }
        interests.push(InterestVector::new(ws));
    }
    let nf: usize = field(&next("friendships")?, "friendships")?;
    let mut friendships = Vec::with_capacity(nf.min(MAX_PREALLOC));
    for _ in 0..nf {
        let line = next("friendship")?;
        let mut it = line.split_whitespace();
        let a: u32 = parse(it.next(), "friendship a")?;
        let b: u32 = parse(it.next(), "friendship b")?;
        if (a as usize) >= m || (b as usize) >= m {
            return Err(bad(format!(
                "friendship ({a}, {b}) references a user >= {m}"
            )));
        }
        if a == b {
            return Err(bad(format!("friendship ({a}, {b}) is a self-loop")));
        }
        friendships.push((a, b));
    }
    let social = SocialNetwork::new(interests, &friendships);

    let nh: usize = field(&next("homes")?, "homes")?;
    if nh != m {
        return Err(bad(format!("{nh} homes for {m} users")));
    }
    let mut homes = Vec::with_capacity(nh.min(MAX_PREALLOC));
    for _ in 0..nh {
        let line = next("home")?;
        let mut it = line.split_whitespace();
        let edge: u32 = parse(it.next(), "home edge")?;
        let offset = parse_finite(it.next(), "home offset")?;
        if (edge as usize) >= num_edges {
            return Err(bad(format!(
                "home edge {edge} out of range (road has {num_edges} edges)"
            )));
        }
        homes.push(NetworkPoint::new(&road, edge, offset));
    }
    Ok(SpatialSocialNetwork::new(road, pois, social, homes))
}

/// Saves to a file path.
pub fn save_ssn(ssn: &SpatialSocialNetwork, path: impl AsRef<Path>) -> io::Result<()> {
    write_ssn(ssn, std::fs::File::create(path)?)
}

/// Loads from a file path.
pub fn load_ssn(path: impl AsRef<Path>) -> io::Result<SpatialSocialNetwork> {
    read_ssn(std::fs::File::open(path)?)
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn field<T: std::str::FromStr>(line: &str, name: &str) -> io::Result<T> {
    let mut it = line.split_whitespace();
    let tag = it.next().unwrap_or("");
    if tag != name {
        return Err(bad(format!("expected section {name:?}, found {tag:?}")));
    }
    parse(it.next(), name)
}

fn parse<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> io::Result<T> {
    tok.ok_or_else(|| bad(format!("missing {what}")))?
        .parse::<T>()
        .map_err(|_| bad(format!("unparsable {what}")))
}

/// Parses an `f64` and rejects NaN and infinities: a single non-finite
/// coordinate would otherwise poison every distance downstream (and NaN
/// heap keys violate the traversal's ordering invariants).
fn parse_finite(tok: Option<&str>, what: &str) -> io::Result<f64> {
    let x: f64 = parse(tok, what)?;
    if !x.is_finite() {
        return Err(bad(format!("{what} must be finite, got {x}")));
    }
    Ok(x)
}

fn expect(tok: Option<&str>, what: &str) -> io::Result<()> {
    match tok {
        Some(t) if t == what => Ok(()),
        other => Err(bad(format!("expected {what:?}, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{synthetic, SyntheticConfig};

    #[test]
    fn round_trip_preserves_everything() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), 13);
        let mut buf = Vec::new();
        write_ssn(&ssn, &mut buf).unwrap();
        let back = read_ssn(buf.as_slice()).unwrap();

        assert_eq!(back.road().num_vertices(), ssn.road().num_vertices());
        assert_eq!(back.road().num_edges(), ssn.road().num_edges());
        assert_eq!(back.pois().len(), ssn.pois().len());
        assert_eq!(back.social().num_users(), ssn.social().num_users());
        assert_eq!(
            back.social().num_friendships(),
            ssn.social().num_friendships()
        );
        // Exact float round-trip via {:?}.
        for v in 0..ssn.road().num_vertices() as u32 {
            assert_eq!(back.road().location(v), ssn.road().location(v));
        }
        for o in 0..ssn.pois().len() as u32 {
            assert_eq!(back.pois().get(o).keywords, ssn.pois().get(o).keywords);
            assert_eq!(back.pois().get(o).position, ssn.pois().get(o).position);
        }
        for u in 0..ssn.social().num_users() as u32 {
            assert_eq!(back.social().interest(u), ssn.social().interest(u));
            assert_eq!(back.home(u), ssn.home(u));
        }
        // Distances agree, so query results will too.
        assert_eq!(back.user_poi_distance(0, 0), ssn.user_poi_distance(0, 0));
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_ssn("nonsense\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), 13);
        let mut buf = Vec::new();
        write_ssn(&ssn, &mut buf).unwrap();
        let cut = &buf[..buf.len() / 2];
        assert!(read_ssn(cut).is_err());
    }

    /// One serialized dataset shared by the fuzzing properties below
    /// (dataset synthesis dominates the per-case cost otherwise).
    fn reference_bytes() -> &'static [u8] {
        use std::sync::OnceLock;
        static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
        BYTES.get_or_init(|| {
            let ssn = synthetic(&SyntheticConfig::uni().scaled(0.006), 17);
            let mut buf = Vec::new();
            write_ssn(&ssn, &mut buf).unwrap();
            buf
        })
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Truncating a valid stream before its final line yields a clean
        /// `InvalidData` error — never a panic. (Cuts *inside* the final
        /// home line can leave a shorter-but-valid float token and still
        /// parse, so the property stops at the last line boundary.)
        #[test]
        fn truncated_streams_error_cleanly(frac in 0.0f64..1.0) {
            let buf = reference_bytes();
            let limit = buf[..buf.len() - 1].iter().rposition(|&b| b == b'\n').unwrap();
            let cut = (limit as f64 * frac) as usize;
            let err = read_ssn(&buf[..cut]).unwrap_err();
            proptest::prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }

        /// Flipping any single byte of a valid stream either still parses
        /// (some digit flips are benign) or errors with `InvalidData`; no
        /// mutation may panic or surface a different error kind.
        #[test]
        fn mutated_streams_never_panic(pos in 0.0f64..1.0, byte in 0u8..=255) {
            let mut buf = reference_bytes().to_vec();
            let i = ((buf.len() - 1) as f64 * pos) as usize;
            buf[i] = byte;
            if let Err(e) = read_ssn(buf.as_slice()) {
                proptest::prop_assert_eq!(e.kind(), io::ErrorKind::InvalidData);
            }
        }

        /// Splicing random garbage into a random position must likewise
        /// degrade into `InvalidData`, not a panic — this exercises the
        /// structural validators (counts, ids, finiteness, self-loops).
        #[test]
        fn spliced_garbage_never_panics(
            pos in 0.0f64..1.0,
            garbage in proptest::collection::vec(0u8..=255, 0..64),
        ) {
            let mut buf = reference_bytes().to_vec();
            let i = (buf.len() as f64 * pos) as usize;
            buf.splice(i..i, garbage);
            if let Err(e) = read_ssn(buf.as_slice()) {
                proptest::prop_assert_eq!(e.kind(), io::ErrorKind::InvalidData);
            }
        }
    }

    #[test]
    fn rejects_out_of_range_ids_and_nonfinite_floats() {
        // Hand-built minimal valid file, then targeted corruptions.
        let good = "# gpssn-ssn v1\n\
            road-vertices 2\n0.0 0.0\n1.0 0.0\n\
            road-edges 1\n0 1 1.0\n\
            pois 1\n0 0.5 0\n\
            users 2 topics 1\n0.5\n0.5\n\
            friendships 1\n0 1\n\
            homes 2\n0 0.0\n0 1.0\n";
        assert!(read_ssn(good.as_bytes()).is_ok());
        for (broken, what) in [
            (
                good.replace("road-edges 1\n0 1 1.0", "road-edges 1\n0 7 1.0"),
                "edge endpoint",
            ),
            (
                good.replace("road-edges 1\n0 1 1.0", "road-edges 1\n0 0 1.0"),
                "edge self-loop",
            ),
            (
                good.replace("road-edges 1\n0 1 1.0", "road-edges 1\n0 1 -1.0"),
                "negative length",
            ),
            (
                good.replace("road-edges 1\n0 1 1.0", "road-edges 1\n0 1 0.5"),
                "sub-Euclidean length",
            ),
            (
                good.replace("road-edges 1\n0 1 1.0", "road-edges 1\n0 1 NaN"),
                "NaN length",
            ),
            (
                good.replace("pois 1\n0 0.5", "pois 1\n9 0.5"),
                "poi edge id",
            ),
            (
                good.replace("0.5\n0.5\n", "0.5\n1.5\n"),
                "interest weight > 1",
            ),
            (
                good.replace("0.5\n0.5\n", "0.5\ninf\n"),
                "non-finite interest",
            ),
            (
                good.replace("friendships 1\n0 1", "friendships 1\n0 9"),
                "friendship endpoint",
            ),
            (
                good.replace("friendships 1\n0 1", "friendships 1\n1 1"),
                "friendship self-loop",
            ),
            (
                good.replace("homes 2\n0 0.0", "homes 2\n9 0.0"),
                "home edge id",
            ),
            (
                good.replace("homes 2\n0 0.0\n0 1.0", "homes 2\n0 NaN\n0 1.0"),
                "NaN home offset",
            ),
        ] {
            let err = read_ssn(broken.as_bytes()).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "{what} must be InvalidData"
            );
        }
    }

    #[test]
    fn huge_claimed_counts_do_not_abort() {
        // A corrupt count must not pre-allocate petabytes; it should run
        // off the end of the stream and report InvalidData.
        let huge = "# gpssn-ssn v1\nroad-vertices 999999999999\n0.0 0.0\n";
        let err = read_ssn(huge.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn save_and_load_files() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), 14);
        let path = std::env::temp_dir().join("gpssn_io_test.ssn");
        save_ssn(&ssn, &path).unwrap();
        let back = load_ssn(&path).unwrap();
        assert_eq!(back.social().num_users(), ssn.social().num_users());
        let _ = std::fs::remove_file(&path);
    }
}
