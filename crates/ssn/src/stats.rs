//! Dataset statistics in the shape of the paper's Table 2.

use crate::network::SpatialSocialNetwork;
use std::fmt;

/// Summary statistics of a spatial-social network.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// `|V(G_s)|` — number of users.
    pub users: usize,
    /// `deg(G_s)` — average friendship degree.
    pub avg_social_degree: f64,
    /// `|V(G_r)|` — number of road intersections.
    pub road_vertices: usize,
    /// `deg(G_r)` — average road degree.
    pub avg_road_degree: f64,
    /// `n` — number of POIs.
    pub pois: usize,
    /// `d` — topic dimensionality.
    pub topics: usize,
}

impl DatasetStats {
    /// Computes the statistics of `ssn`.
    pub fn of(ssn: &SpatialSocialNetwork) -> Self {
        DatasetStats {
            users: ssn.social().num_users(),
            avg_social_degree: ssn.social().average_degree(),
            road_vertices: ssn.road().num_vertices(),
            avg_road_degree: ssn.road().average_degree(),
            pois: ssn.pois().len(),
            topics: ssn.social().num_topics(),
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V(Gs)|={} deg(Gs)={:.1} |V(Gr)|={} deg(Gr)={:.1} n={} d={}",
            self.users,
            self.avg_social_degree,
            self.road_vertices,
            self.avg_road_degree,
            self.pois,
            self.topics
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{synthetic, SyntheticConfig};

    #[test]
    fn stats_reflect_network() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 5);
        let st = DatasetStats::of(&ssn);
        assert_eq!(st.users, ssn.social().num_users());
        assert_eq!(st.road_vertices, ssn.road().num_vertices());
        assert_eq!(st.pois, ssn.pois().len());
        assert_eq!(st.topics, 5);
        assert!(st.avg_road_degree > 0.0);
    }

    #[test]
    fn display_is_compact() {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 5);
        let s = DatasetStats::of(&ssn).to_string();
        assert!(s.contains("|V(Gs)|="));
        assert!(s.contains("n="));
    }
}
