//! Dataset builders (Section 6.1 of the paper).
//!
//! * [`synthetic`] — the paper's `UNI` / `ZIPF` pipelines: random planar
//!   road network, POIs on random edges, synthetic social network, users
//!   mapped to random road locations.
//! * [`bri_cal_surrogate`] / [`gow_col_surrogate`] — surrogates for the
//!   paper's real datasets (Brightkite + California, Gowalla + Colorado).
//!   The raw SNAP/DIMACS files are not available offline, so we reproduce
//!   the *derivation pipeline* on simulated check-ins: a heavy-tailed
//!   social graph matching Table 2's size and average degree, users who
//!   check into spatially clustered POIs, interest vectors
//!   `w_f = fraction of visits with keyword f` (exactly the paper's rule),
//!   and homes at the road location nearest the check-in centroid.
//!   See DESIGN.md §5 for the substitution argument.

use crate::network::SpatialSocialNetwork;
use gpssn_graph::ValueDistribution;
use gpssn_road::{
    generate_pois, generate_road_network, NetworkPoint, PoiGenConfig, PoiSet, RoadGenConfig,
};
use gpssn_social::{
    generate_power_law_network, generate_social_network, InterestVector, SocialGenConfig,
    SocialNetwork, UserId,
};
use gpssn_spatial::{Point, RStarTree};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The four evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Synthetic, Uniform distributions.
    Uni,
    /// Synthetic, Zipf distributions.
    Zipf,
    /// Brightkite + California surrogate.
    BriCal,
    /// Gowalla + Colorado surrogate.
    GowCol,
}

impl DatasetKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Uni => "UNI",
            DatasetKind::Zipf => "ZIPF",
            DatasetKind::BriCal => "Bri+Cal",
            DatasetKind::GowCol => "Gow+Col",
        }
    }

    /// All four datasets in the paper's presentation order.
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::BriCal,
            DatasetKind::GowCol,
            DatasetKind::Uni,
            DatasetKind::Zipf,
        ]
    }

    /// Builds the dataset at `scale` (1.0 = the paper's full size).
    pub fn build(self, scale: f64, seed: u64) -> SpatialSocialNetwork {
        match self {
            DatasetKind::Uni => synthetic(&SyntheticConfig::uni().scaled(scale), seed),
            DatasetKind::Zipf => synthetic(&SyntheticConfig::zipf().scaled(scale), seed),
            DatasetKind::BriCal => bri_cal_surrogate(scale, seed),
            DatasetKind::GowCol => gow_col_surrogate(scale, seed),
        }
    }
}

/// Configuration for the synthetic `UNI`/`ZIPF` datasets.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Road-network generation parameters.
    pub road: RoadGenConfig,
    /// POI generation parameters.
    pub poi: PoiGenConfig,
    /// Social-network generation parameters.
    pub social: SocialGenConfig,
}

impl SyntheticConfig {
    /// The paper's default synthetic configuration with Uniform draws
    /// (`|V(G_r)| = |V(G_s)| = 30K`, `n = 10K`, `d = 5`).
    pub fn uni() -> Self {
        SyntheticConfig {
            road: RoadGenConfig::default(),
            poi: PoiGenConfig::default(),
            social: SocialGenConfig::default(),
        }
    }

    /// Same sizes with Zipf draws.
    pub fn zipf() -> Self {
        let mut cfg = Self::uni();
        cfg.poi.distribution = ValueDistribution::Zipf;
        cfg.social.distribution = ValueDistribution::Zipf;
        cfg
    }

    /// Scales all cardinalities by `scale` (sizes are floored at small
    /// workable minimums so tests can run tiny instances).
    pub fn scaled(mut self, scale: f64) -> Self {
        self.road.num_vertices = ((self.road.num_vertices as f64 * scale) as usize).max(16);
        self.poi.num_pois = ((self.poi.num_pois as f64 * scale) as usize).max(8);
        self.social.num_users = ((self.social.num_users as f64 * scale) as usize).max(8);
        self
    }
}

/// Builds a synthetic spatial-social network (the paper's `UNI`/`ZIPF`).
pub fn synthetic(cfg: &SyntheticConfig, seed: u64) -> SpatialSocialNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let road = generate_road_network(&cfg.road, &mut rng);
    let pois = PoiSet::new(&road, generate_pois(&road, &cfg.poi, &mut rng));
    let social = generate_social_network(&cfg.social, &mut rng);
    // "Randomly mapping social-network users to a 2D spatial location on
    // the road network": a random position on a random edge.
    let m = road.num_edges();
    let homes: Vec<NetworkPoint> = (0..social.num_users())
        .map(|_| {
            let e = rng.gen_range(0..m) as u32;
            NetworkPoint::new(&road, e, rng.gen_range(0.0..=1.0) * road.edge_length(e))
        })
        .collect();
    SpatialSocialNetwork::new(road, pois, social, homes)
}

/// Configuration for the surrogate real datasets.
#[derive(Debug, Clone)]
pub struct SurrogateConfig {
    /// Number of users (Table 2: 40K for both).
    pub num_users: usize,
    /// Target average friendship degree (Table 2: 10.3 / 32.1).
    pub avg_social_degree: f64,
    /// Road intersections (Table 2: 21K / 30K).
    pub road_vertices: usize,
    /// Number of POIs users check into.
    pub num_pois: usize,
    /// Topic vocabulary size `d`.
    pub num_topics: usize,
    /// Simulated check-ins per user.
    pub checkins_per_user: usize,
    /// Locality radius of a user's check-ins (Euclidean).
    pub checkin_radius: f64,
    /// Side of the square data space.
    pub space_size: f64,
}

impl SurrogateConfig {
    /// Brightkite + California (Table 2 row 1).
    pub fn bri_cal() -> Self {
        SurrogateConfig {
            num_users: 40_000,
            avg_social_degree: 10.3,
            road_vertices: 21_000,
            num_pois: 10_000,
            num_topics: 5,
            checkins_per_user: 20,
            checkin_radius: 10.0,
            space_size: 100.0,
        }
    }

    /// Gowalla + Colorado (Table 2 row 2).
    pub fn gow_col() -> Self {
        SurrogateConfig {
            num_users: 40_000,
            avg_social_degree: 32.1,
            road_vertices: 30_000,
            ..Self::bri_cal()
        }
    }

    /// Scales the cardinalities by `scale`.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.num_users = ((self.num_users as f64 * scale) as usize).max(8);
        self.road_vertices = ((self.road_vertices as f64 * scale) as usize).max(16);
        self.num_pois = ((self.num_pois as f64 * scale) as usize).max(8);
        self
    }
}

/// Builds the Brightkite + California surrogate at `scale`.
pub fn bri_cal_surrogate(scale: f64, seed: u64) -> SpatialSocialNetwork {
    build_surrogate(&SurrogateConfig::bri_cal().scaled(scale), seed)
}

/// Builds the Gowalla + Colorado surrogate at `scale`.
pub fn gow_col_surrogate(scale: f64, seed: u64) -> SpatialSocialNetwork {
    build_surrogate(&SurrogateConfig::gow_col().scaled(scale), seed)
}

/// The shared surrogate pipeline (see module docs).
pub fn build_surrogate(cfg: &SurrogateConfig, seed: u64) -> SpatialSocialNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let road = generate_road_network(
        &RoadGenConfig {
            num_vertices: cfg.road_vertices,
            space_size: cfg.space_size,
            neighbors_per_vertex: 2,
        },
        &mut rng,
    );
    let pois = PoiSet::new(
        &road,
        generate_pois(
            &road,
            &PoiGenConfig {
                num_pois: cfg.num_pois,
                num_keywords: cfg.num_topics,
                max_keywords_per_poi: 3,
                distribution: ValueDistribution::Zipf, // check-in data is skewed
                keyword_locality: 0.8,
            },
            &mut rng,
        ),
    );
    // Heavy-tailed friendship graph at the target average degree.
    let skeleton = generate_power_law_network(
        cfg.num_users,
        cfg.num_topics,
        cfg.avg_social_degree,
        &mut rng,
    );

    // Simulated check-ins: each user picks an anchor POI and repeatedly
    // visits POIs within `checkin_radius` of it. Interest vectors follow
    // the paper's rule (visit fraction per keyword); homes sit at the road
    // vertex nearest the check-in centroid.
    let vertex_tree = RStarTree::str_bulk_load(
        32,
        road.locations()
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u32, p)),
    );
    let mut interests = Vec::with_capacity(cfg.num_users);
    let mut homes = Vec::with_capacity(cfg.num_users);
    for _ in 0..cfg.num_users {
        let anchor = rng.gen_range(0..pois.len()) as u32;
        let anchor_loc = pois.location(anchor);
        let nearby = pois.euclidean_ball(anchor_loc, cfg.checkin_radius);
        let mut keyword_visits = vec![0usize; cfg.num_topics];
        let mut centroid = Point::new(0.0, 0.0);
        for _ in 0..cfg.checkins_per_user {
            let poi = if nearby.is_empty() {
                anchor
            } else {
                nearby[rng.gen_range(0..nearby.len())]
            };
            for &k in &pois.get(poi).keywords {
                if (k as usize) < cfg.num_topics {
                    keyword_visits[k as usize] += 1;
                }
            }
            let loc = pois.location(poi);
            centroid.x += loc.x;
            centroid.y += loc.y;
        }
        centroid.x /= cfg.checkins_per_user as f64;
        centroid.y /= cfg.checkins_per_user as f64;
        let weights: Vec<f64> = keyword_visits
            .iter()
            .map(|&v| (v as f64 / cfg.checkins_per_user as f64).min(1.0))
            .collect();
        interests.push(InterestVector::new(weights).as_distribution());
        let v = nearest_vertex(&vertex_tree, &centroid, cfg.space_size);
        homes.push(NetworkPoint::at_vertex(&road, v));
    }
    let friendships: Vec<(UserId, UserId)> =
        skeleton.graph().edges().map(|(a, b, _)| (a, b)).collect();
    let social = SocialNetwork::new(interests, &friendships);
    SpatialSocialNetwork::new(road, pois, social, homes)
}

/// Nearest indexed point to `p` by expanding-radius search.
// Audited unwrap: `partial_cmp` over squared distances of generated
// points, which are always finite.
#[allow(clippy::unwrap_used)]
fn nearest_vertex(tree: &RStarTree, p: &Point, space: f64) -> u32 {
    let mut radius = space / 64.0;
    loop {
        let hits = tree.within_radius(p, radius);
        if let Some((id, _)) = hits
            .into_iter()
            .map(|(id, q)| (id, p.distance_sq(&q)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(id, _)| (id, ()))
        {
            return id;
        }
        radius *= 2.0;
        if radius > space * 4.0 {
            // Degenerate tree (shouldn't happen for non-empty input).
            return 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpssn_graph::components::connected_components;

    #[test]
    fn synthetic_uni_builds_consistently() {
        let cfg = SyntheticConfig::uni().scaled(0.01);
        let ssn = synthetic(&cfg, 7);
        assert!(ssn.social().num_users() >= 8);
        assert!(ssn.pois().len() >= 8);
        assert_eq!(ssn.homes().len(), ssn.social().num_users());
        // Homes are valid positions on edges.
        for h in ssn.homes() {
            let len = ssn.road().edge_length(h.edge);
            assert!(h.offset >= 0.0 && h.offset <= len);
        }
        let (_, k) = connected_components(ssn.road().graph());
        assert_eq!(k, 1, "road network must be connected");
    }

    #[test]
    fn zipf_differs_from_uni() {
        let uni = synthetic(&SyntheticConfig::uni().scaled(0.01), 7);
        let zipf = synthetic(&SyntheticConfig::zipf().scaled(0.01), 7);
        // Same sizes, different degree structure.
        assert_eq!(uni.social().num_users(), zipf.social().num_users());
        assert_ne!(
            uni.social().num_friendships(),
            zipf.social().num_friendships(),
            "UNI and ZIPF should differ structurally"
        );
    }

    #[test]
    fn surrogate_matches_table2_shape() {
        let ssn = bri_cal_surrogate(0.02, 3);
        let s = ssn.social();
        assert_eq!(s.num_users(), 800);
        // Average degree near the Brightkite target (10.3) at small scale.
        let deg = s.average_degree();
        assert!((7.0..=12.0).contains(&deg), "avg degree {deg}");
        // Interest vectors are distributions (sum 1) or zero.
        for u in 0..s.num_users() as u32 {
            let total: f64 = s.interest(u).weights().iter().sum();
            assert!(total == 0.0 || (total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gow_col_is_denser_than_bri_cal() {
        let bri = bri_cal_surrogate(0.02, 3);
        let gow = gow_col_surrogate(0.02, 3);
        assert!(gow.social().average_degree() > bri.social().average_degree());
        assert!(gow.road().num_vertices() > bri.road().num_vertices());
    }

    #[test]
    fn dataset_kind_roundtrip() {
        for kind in DatasetKind::all() {
            let ssn = kind.build(0.005, 1);
            assert!(ssn.social().num_users() >= 8, "{} too small", kind.name());
        }
        assert_eq!(DatasetKind::Uni.name(), "UNI");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = synthetic(&SyntheticConfig::uni().scaled(0.01), 99);
        let b = synthetic(&SyntheticConfig::uni().scaled(0.01), 99);
        assert_eq!(a.social().num_friendships(), b.social().num_friendships());
        assert_eq!(a.home(3).edge, b.home(3).edge);
    }
}
