//! The social-network index `I_S` (paper Section 4.1).
//!
//! `G_s` is partitioned into balanced connected subgraphs (the leaf
//! nodes); connected groups of nodes are then recursively merged into
//! higher-level nodes until a single root remains. Every node stores:
//!
//! * `e_S.lb_w` / `e_S.ub_w` — elementwise lower/upper bounds of the
//!   interest vectors below the node (Eqs. 9–10), forming the interest
//!   MBR used by the index-level interest-score pruning (Lemma 8);
//! * lower/upper hop-distance bounds to each social pivot (Eqs. 11–12);
//! * lower/upper road-distance bounds from the users' homes to each road
//!   pivot (Eqs. 13–14).
//!
//! Leaf members additionally expose their exact per-pivot distance
//! vectors (social hops and road distances), as the paper stores in leaf
//! entries. Unreachable hop distances are saturated to `m + 1` (farther
//! than any finite hop distance), which keeps every triangle-inequality
//! bound valid across components — see the module tests.

use crate::build::{par_map, BuildOptions, BuildStages};
use crate::pivot_select::PivotSelectConfig;
use gpssn_graph::{partition_graph, CsrGraph, NodeId as GraphNodeId};
use gpssn_road::RoadPivots;
use gpssn_social::{SocialPivots, UserId, UNREACHABLE_HOPS};
use gpssn_ssn::SpatialSocialNetwork;

/// Build-time parameters of `I_S`.
#[derive(Debug, Clone)]
pub struct SocialIndexConfig {
    /// Users per leaf partition.
    pub leaf_size: usize,
    /// Children per internal node.
    pub fanout: usize,
    /// Pivot-selection knobs (used by [`SocialIndex::build_with_selected_pivots`]).
    pub pivot_select: PivotSelectConfig,
    /// Partition each dominant-topic bucket separately so leaf interest
    /// MBRs stay tight. Pure graph partitioning (the paper's METIS
    /// reference) produces topic-diverse leaves whose wide MBRs defeat
    /// the index-level interest pruning (Lemma 8); topic-aware leaves
    /// restore it. Ablatable — see the `ablation` bench.
    pub topic_aware_leaves: bool,
    /// Build parallelism (`0` = auto). Runtime-only: the built index is
    /// bit-identical for every thread count.
    pub build: BuildOptions,
}

impl Default for SocialIndexConfig {
    fn default() -> Self {
        SocialIndexConfig {
            leaf_size: 64,
            fanout: 8,
            pivot_select: PivotSelectConfig::default(),
            topic_aware_leaves: true,
            build: BuildOptions::default(),
        }
    }
}

/// One node of `I_S`.
#[derive(Debug, Clone)]
pub struct SocialNode {
    /// Height above the leaves (0 = leaf).
    pub level: u32,
    /// Child node ids (empty for leaves).
    pub children: Vec<u32>,
    /// Member users (populated for leaves only).
    pub users: Vec<UserId>,
    /// Per-topic lower bounds of descendant interest weights (Eq. 9).
    pub lb_w: Vec<f64>,
    /// Per-topic upper bounds of descendant interest weights (Eq. 10).
    pub ub_w: Vec<f64>,
    /// Per-social-pivot hop lower bounds (Eq. 11), saturated.
    pub lb_sn: Vec<u32>,
    /// Per-social-pivot hop upper bounds (Eq. 12), saturated.
    pub ub_sn: Vec<u32>,
    /// Per-road-pivot home-distance lower bounds (Eq. 13).
    pub lb_rn: Vec<f64>,
    /// Per-road-pivot home-distance upper bounds (Eq. 14).
    pub ub_rn: Vec<f64>,
    /// Number of users below the node.
    pub user_count: usize,
}

/// The social-network index `I_S`.
#[derive(Debug, Clone)]
pub struct SocialIndex {
    nodes: Vec<SocialNode>,
    root: u32,
    /// Saturated hop distances `[user][social pivot]`.
    user_sn: Vec<Vec<u32>>,
    /// Road distances from homes `[user][road pivot]`.
    user_rn: Vec<Vec<f64>>,
    social_pivots: SocialPivots,
    /// Saturation value for unreachable hops (`m + 1`).
    hop_saturation: u32,
}

impl SocialIndex {
    /// Builds `I_S` with the given pivots. Parallelized over
    /// `cfg.build.threads` workers; the result is bit-identical for
    /// every thread count.
    pub fn build(
        ssn: &SpatialSocialNetwork,
        social_pivots: SocialPivots,
        road_pivots: &RoadPivots,
        cfg: &SocialIndexConfig,
    ) -> Self {
        Self::build_with_stages(ssn, social_pivots, road_pivots, cfg).0
    }

    /// [`SocialIndex::build`], also returning per-stage wall-clock
    /// timings (for the `gpssn_build_stage_ns{stage}` telemetry and
    /// `build_report`).
    pub fn build_with_stages(
        ssn: &SpatialSocialNetwork,
        social_pivots: SocialPivots,
        road_pivots: &RoadPivots,
        cfg: &SocialIndexConfig,
    ) -> (Self, BuildStages) {
        assert!(cfg.leaf_size >= 1 && cfg.fanout >= 2, "invalid index shape");
        let mut stages = BuildStages::default();
        let threads = cfg.build.threads;
        let social = ssn.social();
        let m = social.num_users();
        let hop_saturation = (m + 1) as u32;
        let saturate = |h: u32| {
            if h == UNREACHABLE_HOPS {
                hop_saturation
            } else {
                h
            }
        };
        // Per-user pivot tables. The social side is table lookups; the
        // road side costs a seed lookup plus `h` table probes per user
        // and dominates, so both fan out over contiguous user chunks
        // (each user's row is a pure function of the user id).
        let (user_sn, user_rn) = stages.time("user_tables", || {
            let user_sn: Vec<Vec<u32>> = par_map(
                threads,
                m,
                || (),
                |_, u| {
                    social_pivots
                        .user_dists(u as UserId)
                        .into_iter()
                        .map(saturate)
                        .collect()
                },
            );
            let user_rn: Vec<Vec<f64>> = par_map(
                threads,
                m,
                || (),
                |_, u| road_pivots.point_dists(ssn.road(), &ssn.home(u as UserId)),
            );
            (user_sn, user_rn)
        });

        let d = social.num_topics();
        let l = social_pivots.len();
        let h = road_pivots.len();
        let blank = |level: u32| SocialNode {
            level,
            children: Vec::new(),
            users: Vec::new(),
            lb_w: vec![f64::INFINITY; d],
            ub_w: vec![f64::NEG_INFINITY; d],
            lb_sn: vec![u32::MAX; l],
            ub_sn: vec![0; l],
            lb_rn: vec![f64::INFINITY; h],
            ub_rn: vec![f64::NEG_INFINITY; h],
            user_count: 0,
        };

        // Level 0: balanced connected partitions of G_s — either of the
        // whole graph, or of each dominant-topic subgraph (tight MBRs) —
        // then one leaf node per partition. Leaf MBR/bound accumulation
        // is independent per leaf, so it fans out over leaf chunks.
        let t0 = std::time::Instant::now();
        let leaf_parts: Vec<Vec<UserId>> = if cfg.topic_aware_leaves && d > 0 {
            topic_aware_partition(ssn, cfg.leaf_size)
        } else {
            partition_graph(social.graph(), cfg.leaf_size).parts
        };
        stages.stages.push(("leaf_partition", t0.elapsed()));
        let t0 = std::time::Instant::now();
        let mut nodes: Vec<SocialNode> = par_map(
            threads,
            leaf_parts.len(),
            || (),
            |_, i| {
                let members = &leaf_parts[i];
                let mut node = blank(0);
                node.users = members.clone();
                for &u in members {
                    let w = social.interest(u);
                    for f in 0..d {
                        node.lb_w[f] = node.lb_w[f].min(w.weight(f));
                        node.ub_w[f] = node.ub_w[f].max(w.weight(f));
                    }
                    for (k, &d) in user_sn[u as usize].iter().enumerate() {
                        node.lb_sn[k] = node.lb_sn[k].min(d);
                        node.ub_sn[k] = node.ub_sn[k].max(d);
                    }
                    for (k, &d) in user_rn[u as usize].iter().enumerate() {
                        node.lb_rn[k] = node.lb_rn[k].min(d);
                        node.ub_rn[k] = node.ub_rn[k].max(d);
                    }
                }
                node.user_count = members.len();
                node
            },
        );
        let mut current: Vec<u32> = (0..nodes.len() as u32).collect();
        let mut part_of_user = vec![0u32; m];
        for (i, node) in nodes.iter().enumerate() {
            for &u in &node.users {
                part_of_user[u as usize] = i as u32;
            }
        }
        stages.stages.push(("leaf_nodes", t0.elapsed()));

        // Recursive grouping: connected subgraphs of the quotient graph.
        let t0 = std::time::Instant::now();
        let mut parent: Vec<u32> = vec![u32::MAX; nodes.len()];
        let mut level = 0u32;
        while current.len() > 1 {
            level += 1;
            // Quotient graph over `current` nodes.
            let idx_of: std::collections::HashMap<u32, u32> = current
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, i as u32))
                .collect();
            let mut qedges: std::collections::HashSet<(GraphNodeId, GraphNodeId)> =
                Default::default();
            for (a, b, _) in social.graph().edges() {
                // Map each user up to its current-level ancestor.
                let na = ancestor_at(&nodes, &parent, part_of_user[a as usize], level - 1);
                let nb = ancestor_at(&nodes, &parent, part_of_user[b as usize], level - 1);
                if na != nb {
                    let (x, y) = (idx_of[&na], idx_of[&nb]);
                    let key = if x < y { (x, y) } else { (y, x) };
                    qedges.insert(key);
                }
            }
            // Sort for determinism: HashSet iteration order varies per
            // instance and would leak into the partition structure.
            let mut qedge_list: Vec<(GraphNodeId, GraphNodeId, f64)> =
                qedges.into_iter().map(|(a, b)| (a, b, 1.0)).collect();
            qedge_list.sort_by_key(|a| (a.0, a.1));
            let quotient = CsrGraph::from_edges(current.len(), &qedge_list);
            let grouping = partition_graph(&quotient, cfg.fanout);
            let groups: Vec<Vec<u32>> = if grouping.num_parts() < current.len() {
                grouping
                    .parts
                    .iter()
                    .map(|g| g.iter().map(|&i| current[i as usize]).collect())
                    .collect()
            } else {
                // Degenerate quotient (no reduction): chunk sequentially.
                current.chunks(cfg.fanout).map(|c| c.to_vec()).collect()
            };
            let mut next: Vec<u32> = Vec::with_capacity(groups.len());
            for group in groups {
                let mut node = blank(level);
                for &child in &group {
                    let c = &nodes[child as usize];
                    for f in 0..d {
                        node.lb_w[f] = node.lb_w[f].min(c.lb_w[f]);
                        node.ub_w[f] = node.ub_w[f].max(c.ub_w[f]);
                    }
                    for k in 0..l {
                        node.lb_sn[k] = node.lb_sn[k].min(c.lb_sn[k]);
                        node.ub_sn[k] = node.ub_sn[k].max(c.ub_sn[k]);
                    }
                    for k in 0..h {
                        node.lb_rn[k] = node.lb_rn[k].min(c.lb_rn[k]);
                        node.ub_rn[k] = node.ub_rn[k].max(c.ub_rn[k]);
                    }
                    node.user_count += c.user_count;
                }
                node.children = group;
                next.push(nodes.len() as u32);
                nodes.push(node);
            }
            // Record parenthood for ancestor lookups.
            parent.resize(nodes.len(), u32::MAX);
            for &id in &next {
                for &c in &nodes[id as usize].children {
                    parent[c as usize] = id;
                }
            }
            current = next;
        }

        let root = current.first().copied().unwrap_or_else(|| {
            // Empty social network: synthesize an empty root.
            nodes.push(blank(0));
            (nodes.len() - 1) as u32
        });
        stages.stages.push(("tree_levels", t0.elapsed()));
        let idx = SocialIndex {
            nodes,
            root,
            user_sn,
            user_rn,
            social_pivots,
            hop_saturation,
        };
        (idx, stages)
    }

    /// Builds `I_S`, first selecting `l` social pivots with Algorithm 1.
    pub fn build_with_selected_pivots(
        ssn: &SpatialSocialNetwork,
        num_pivots: usize,
        road_pivots: &RoadPivots,
        cfg: &SocialIndexConfig,
    ) -> Self {
        let mut ps = cfg.pivot_select.clone();
        ps.count = num_pivots;
        let pivots = crate::pivot_select::select_social_pivots(ssn.social(), &ps);
        let sp = SocialPivots::new_with_threads(ssn.social(), pivots, cfg.build.threads);
        Self::build(ssn, sp, road_pivots, cfg)
    }

    /// Root node id.
    #[inline]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, id: u32) -> &SocialNode {
        &self.nodes[id as usize]
    }

    /// Number of levels (1 for a single-leaf index).
    pub fn height(&self) -> u32 {
        self.nodes[self.root as usize].level + 1
    }

    /// Number of index pages (nodes).
    pub fn num_pages(&self) -> usize {
        self.nodes.len()
    }

    /// Saturated social-pivot hop distances of user `u`.
    #[inline]
    pub fn user_sn_dists(&self, u: UserId) -> &[u32] {
        &self.user_sn[u as usize]
    }

    /// Road-pivot distances of user `u`'s home.
    #[inline]
    pub fn user_rn_dists(&self, u: UserId) -> &[f64] {
        &self.user_rn[u as usize]
    }

    /// The social pivots.
    #[inline]
    pub fn social_pivots(&self) -> &SocialPivots {
        &self.social_pivots
    }

    /// The hop value unreachable distances were saturated to (`m + 1`).
    #[inline]
    pub fn hop_saturation(&self) -> u32 {
        self.hop_saturation
    }

    /// All users below node `id` (leaf members for leaves).
    pub fn users_under(&self, id: u32) -> Vec<UserId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(x) = stack.pop() {
            let node = &self.nodes[x as usize];
            out.extend_from_slice(&node.users);
            stack.extend_from_slice(&node.children);
        }
        out
    }
}

/// Partitions users per dominant-topic bucket: each bucket's induced
/// friendship subgraph is partitioned for connectivity, keeping leaf
/// interest MBRs topic-pure (tight along the dominant axis).
fn topic_aware_partition(ssn: &SpatialSocialNetwork, leaf_size: usize) -> Vec<Vec<UserId>> {
    let social = ssn.social();
    let m = social.num_users();
    let d = social.num_topics();
    // Dominant topic per user.
    let dominant: Vec<usize> = (0..m as UserId)
        .map(|u| {
            let w = social.interest(u);
            (0..d)
                .max_by(|&a, &b| w.weight(a).total_cmp(&w.weight(b)))
                .unwrap_or(0)
        })
        .collect();
    let mut buckets: Vec<Vec<UserId>> = vec![Vec::new(); d];
    for u in 0..m as UserId {
        buckets[dominant[u as usize]].push(u);
    }
    let mut parts: Vec<Vec<UserId>> = Vec::new();
    for bucket in buckets {
        if bucket.is_empty() {
            continue;
        }
        // Induced subgraph of the bucket (compact ids), then partition.
        let index_of: std::collections::HashMap<UserId, u32> = bucket
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, i as u32))
            .collect();
        let mut edges: Vec<(GraphNodeId, GraphNodeId, f64)> = Vec::new();
        for (a, b, _) in social.graph().edges() {
            if let (Some(&x), Some(&y)) = (index_of.get(&a), index_of.get(&b)) {
                edges.push((x, y, 1.0));
            }
        }
        let sub = CsrGraph::from_edges(bucket.len(), &edges);
        // Same-topic subgraphs are sparse, so pure connectivity
        // partitioning fragments into many tiny parts (inflating the
        // index page count and traversal I/O). Pack the bucket's parts
        // greedily into full leaves — members still share the topic, so
        // the interest MBR stays tight.
        let mut packed: Vec<Vec<UserId>> = Vec::new();
        for part in partition_graph(&sub, leaf_size).parts {
            let members: Vec<UserId> = part.into_iter().map(|i| bucket[i as usize]).collect();
            match packed.last_mut() {
                Some(open) if open.len() + members.len() <= leaf_size => {
                    open.extend(members);
                }
                _ => packed.push(members),
            }
        }
        parts.extend(packed);
    }
    parts
}

/// Ancestor of `id` at `level`, following the construction-time parent
/// table (`u32::MAX` marks "no parent yet").
fn ancestor_at(nodes: &[SocialNode], parent: &[u32], mut id: u32, level: u32) -> u32 {
    while nodes[id as usize].level < level {
        debug_assert_ne!(
            parent[id as usize],
            u32::MAX,
            "parent recorded during construction"
        );
        id = parent[id as usize];
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpssn_ssn::{synthetic, SyntheticConfig};

    fn small_ssn() -> SpatialSocialNetwork {
        synthetic(&SyntheticConfig::uni().scaled(0.01), 17)
    }

    fn build_index(ssn: &SpatialSocialNetwork) -> SocialIndex {
        let sp = SocialPivots::new(ssn.social(), vec![0, 1]);
        let rp = RoadPivots::new(ssn.road(), vec![0, 5]);
        SocialIndex::build(
            ssn,
            sp,
            &rp,
            &SocialIndexConfig {
                leaf_size: 16,
                fanout: 4,
                ..Default::default()
            },
        )
    }

    #[test]
    fn covers_all_users_exactly_once() {
        let ssn = small_ssn();
        let idx = build_index(&ssn);
        let mut users = idx.users_under(idx.root());
        users.sort_unstable();
        let m = ssn.social().num_users();
        assert_eq!(users, (0..m as UserId).collect::<Vec<_>>());
        assert_eq!(idx.node(idx.root()).user_count, m);
    }

    #[test]
    fn interest_mbrs_bracket_members() {
        let ssn = small_ssn();
        let idx = build_index(&ssn);
        for id in 0..idx.num_pages() as u32 {
            let node = idx.node(id);
            if node.user_count == 0 {
                continue;
            }
            for u in idx.users_under(id) {
                let w = ssn.social().interest(u);
                for f in 0..w.dim() {
                    assert!(node.lb_w[f] <= w.weight(f) + 1e-12, "lb_w violated");
                    assert!(node.ub_w[f] + 1e-12 >= w.weight(f), "ub_w violated");
                }
            }
        }
    }

    #[test]
    fn pivot_bounds_bracket_members() {
        let ssn = small_ssn();
        let idx = build_index(&ssn);
        for id in 0..idx.num_pages() as u32 {
            let node = idx.node(id);
            if node.user_count == 0 {
                continue;
            }
            for u in idx.users_under(id) {
                for (k, &d) in idx.user_sn_dists(u).iter().enumerate() {
                    assert!(node.lb_sn[k] <= d && d <= node.ub_sn[k]);
                }
                for (k, &d) in idx.user_rn_dists(u).iter().enumerate() {
                    assert!(node.lb_rn[k] <= d + 1e-12 && d <= node.ub_rn[k] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn levels_are_consistent() {
        let ssn = small_ssn();
        let idx = build_index(&ssn);
        let root = idx.node(idx.root());
        assert_eq!(root.level + 1, idx.height());
        // Children are exactly one level below their parent.
        for id in 0..idx.num_pages() as u32 {
            let n = idx.node(id);
            for &c in &n.children {
                assert_eq!(idx.node(c).level + 1, n.level);
            }
            if n.children.is_empty() && n.user_count > 0 {
                assert_eq!(n.level, 0, "leaves sit at level 0");
            }
        }
    }

    #[test]
    fn saturation_replaces_unreachable() {
        let ssn = small_ssn();
        let idx = build_index(&ssn);
        let sat = idx.hop_saturation();
        for u in 0..ssn.social().num_users() as UserId {
            for &d in idx.user_sn_dists(u) {
                assert!(d <= sat, "hop distance {d} above saturation {sat}");
            }
        }
    }

    /// `I_S` construction is bit-identical for every thread count: node
    /// structure, MBRs, pivot bounds, and user tables all match the
    /// sequential build exactly.
    #[test]
    fn build_is_thread_count_invariant() {
        let ssn = small_ssn();
        let build_at = |threads: usize| {
            let sp = SocialPivots::new(ssn.social(), vec![0, 1]);
            let rp = RoadPivots::new(ssn.road(), vec![0, 5]);
            SocialIndex::build(
                &ssn,
                sp,
                &rp,
                &SocialIndexConfig {
                    leaf_size: 16,
                    fanout: 4,
                    build: crate::build::BuildOptions::with_threads(threads),
                    ..Default::default()
                },
            )
        };
        let base = build_at(1);
        for threads in [2, 8, 0] {
            let idx = build_at(threads);
            assert_eq!(idx.root, base.root, "threads={threads}");
            assert_eq!(
                format!("{:?}", idx.nodes),
                format!("{:?}", base.nodes),
                "threads={threads}"
            );
            assert_eq!(idx.user_sn, base.user_sn, "threads={threads}");
            let bits = |t: &[Vec<f64>]| -> Vec<Vec<u64>> {
                t.iter()
                    .map(|r| r.iter().map(|d| d.to_bits()).collect())
                    .collect()
            };
            assert_eq!(bits(&idx.user_rn), bits(&base.user_rn), "threads={threads}");
        }
    }

    #[test]
    fn build_stages_cover_the_pipeline() {
        let ssn = small_ssn();
        let sp = SocialPivots::new(ssn.social(), vec![0, 1]);
        let rp = RoadPivots::new(ssn.road(), vec![0, 5]);
        let (_, stages) = SocialIndex::build_with_stages(
            &ssn,
            sp,
            &rp,
            &SocialIndexConfig {
                leaf_size: 16,
                fanout: 4,
                ..Default::default()
            },
        );
        let names: Vec<&str> = stages.stages.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["user_tables", "leaf_partition", "leaf_nodes", "tree_levels"]
        );
    }

    #[test]
    fn single_leaf_when_everything_fits() {
        let ssn = small_ssn();
        let sp = SocialPivots::new(ssn.social(), vec![0]);
        let rp = RoadPivots::new(ssn.road(), vec![0]);
        let idx = SocialIndex::build(
            &ssn,
            sp,
            &rp,
            &SocialIndexConfig {
                leaf_size: 100_000,
                fanout: 4,
                topic_aware_leaves: false,
                ..Default::default()
            },
        );
        // A big leaf per connected component, then grouped to one root.
        assert!(idx.height() <= 2);
    }
}
