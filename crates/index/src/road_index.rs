//! The road-network index `I_R` (paper Section 4.1).
//!
//! An R\*-tree over POI locations, augmented with:
//!
//! * per-POI (leaf) data: `sup_K = ∪ keywords(⊙(o_i, 2·r_max))`,
//!   `sub_K = ∪ keywords(⊙(o_i, r_min))` (both as exact keyword lists and
//!   hashed bit-vector signatures `V_sup` / `V_sub`), plus exact road
//!   distances to the `h` road pivots;
//! * per-node data: the bit-OR of descendant `V_sup` signatures, sample
//!   POIs (whose `sub_K` drives the lower-bound matching score, Eq. 18),
//!   and lower/upper pivot-distance bounds over all descendant POIs
//!   (Eqs. 7–8).

use crate::build::{par_map, BuildOptions, BuildStages};
use gpssn_road::{PoiId, PoiSet, RoadNetwork, RoadPivots};
use gpssn_spatial::{Entry, KeywordSignature, NodeId, RStarTree};

/// Build-time parameters of `I_R`.
#[derive(Debug, Clone)]
pub struct RoadIndexConfig {
    /// R\*-tree node capacity (one node = one simulated page).
    pub node_capacity: usize,
    /// Smallest radius a query may use (`r_min`); drives `sub_K`.
    pub r_min: f64,
    /// Largest radius a query may use (`r_max`); drives `sup_K` via
    /// `⊙(o_i, 2·r_max)`.
    pub r_max: f64,
    /// Sample POIs retained per node for Eq. (18).
    pub samples_per_node: usize,
    /// Build a contraction-hierarchy distance oracle at index time so
    /// refinement can answer `dist_RN` probes without full Dijkstra runs
    /// (bit-identical answers; see `gpssn_graph::ch`). Disable to trade
    /// query speed for build time — the engine then falls back to plain
    /// Dijkstra.
    pub build_ch: bool,
    /// Build parallelism (`0` = auto). A runtime-only knob: the built
    /// index is bit-identical for every thread count, and it is not
    /// serialized with the index.
    pub build: BuildOptions,
}

impl Default for RoadIndexConfig {
    fn default() -> Self {
        RoadIndexConfig {
            node_capacity: 32,
            r_min: 0.5,
            r_max: 4.0,
            samples_per_node: 3,
            build_ch: true,
            build: BuildOptions::default(),
        }
    }
}

/// Leaf-level augmentation of one POI.
#[derive(Debug, Clone)]
pub struct PoiAugment {
    /// `sup_K`: keyword union over `⊙(o_i, 2·r_max)` (sorted, dedup).
    pub sup_keywords: Vec<u32>,
    /// `sub_K`: keyword union over `⊙(o_i, r_min)`.
    pub sub_keywords: Vec<u32>,
    /// Hashed signature of `sup_K` (`o_i.V_sup`).
    pub sup_sig: KeywordSignature,
    /// Hashed signature of `sub_K` (`o_i.V_sub`).
    pub sub_sig: KeywordSignature,
    /// Exact road distances `dist_RN(o_i, rp_k)` to the `h` pivots.
    pub pivot_dists: Vec<f64>,
}

/// Node-level augmentation of one R\*-tree node.
#[derive(Debug, Clone)]
pub struct RoadNodeAugment {
    /// Bit-OR of descendant `V_sup` signatures (`e_R.V_sup`).
    pub sup_sig: KeywordSignature,
    /// `lb_dist_RN(e_R, rp_k)` per pivot (Eq. 7).
    pub lb_pivot: Vec<f64>,
    /// `ub_dist_RN(e_R, rp_k)` per pivot (Eq. 8).
    pub ub_pivot: Vec<f64>,
    /// Sample POIs under the node (for the Eq. 18 lower bound).
    pub samples: Vec<PoiId>,
    /// Number of POIs below the node.
    pub poi_count: usize,
}

/// The road-network index `I_R`.
#[derive(Debug, Clone)]
pub struct RoadIndex {
    tree: RStarTree,
    poi_aug: Vec<PoiAugment>,
    node_aug: Vec<RoadNodeAugment>,
    pivots: RoadPivots,
    cfg: RoadIndexConfig,
    /// Contraction-hierarchy oracle over the road graph, built once at
    /// index time (absent when the index was built or loaded without
    /// one — queries then fall back to Dijkstra).
    ch: Option<gpssn_graph::ChOracle>,
}

impl RoadIndex {
    /// Builds `I_R` over the POIs of `pois` with the given road pivots.
    ///
    /// Cost: one bounded Dijkstra per POI per radius (`r_min`, `2·r_max`)
    /// plus one Dijkstra per pivot (inside [`RoadPivots::new`], already
    /// done by the caller). Parallelized over `cfg.build.threads`
    /// workers; the result is bit-identical for every thread count.
    pub fn build(
        road: &RoadNetwork,
        pois: &PoiSet,
        pivots: RoadPivots,
        cfg: RoadIndexConfig,
    ) -> Self {
        Self::build_with_stages(road, pois, pivots, cfg).0
    }

    /// [`RoadIndex::build`], also returning per-stage wall-clock timings
    /// and the CH contraction counters (for the
    /// `gpssn_build_stage_ns{stage}` telemetry and `build_report`).
    pub fn build_with_stages(
        road: &RoadNetwork,
        pois: &PoiSet,
        pivots: RoadPivots,
        cfg: RoadIndexConfig,
    ) -> (Self, BuildStages) {
        assert!(
            cfg.r_min > 0.0 && cfg.r_max >= cfg.r_min,
            "invalid radius range"
        );
        let mut stages = BuildStages::default();
        let n = pois.len();
        let threads = cfg.build.threads;
        // The hottest loop of the build: two radius-bounded ball
        // Dijkstras per POI. Each POI's augment is a pure function of
        // the POI id, so the loop fans out over contiguous id chunks —
        // one reusable Dijkstra workspace per worker — and the merged
        // result is the sequential one, in id order, for every thread
        // count.
        let poi_aug: Vec<PoiAugment> = stages.time("poi_augment", || {
            par_map(threads, n, gpssn_graph::DijkstraWorkspace::new, |ws, i| {
                let id = i as PoiId;
                let center = pois.get(id).position;
                let sup_ball: Vec<PoiId> = pois
                    .network_ball_with(road, ws, &center, 2.0 * cfg.r_max)
                    .into_iter()
                    .map(|(o, _)| o)
                    .collect();
                let sub_ball: Vec<PoiId> = pois
                    .network_ball_with(road, ws, &center, cfg.r_min)
                    .into_iter()
                    .map(|(o, _)| o)
                    .collect();
                let sup_keywords = pois.keyword_union(&sup_ball);
                let sub_keywords = pois.keyword_union(&sub_ball);
                let sup_sig = KeywordSignature::from_keywords(sup_keywords.iter().copied());
                let sub_sig = KeywordSignature::from_keywords(sub_keywords.iter().copied());
                let pivot_dists = pivots.point_dists(road, &center);
                PoiAugment {
                    sup_keywords,
                    sub_keywords,
                    sup_sig,
                    sub_sig,
                    pivot_dists,
                }
            })
        });

        let tree = stages.time("rstar_str", || {
            RStarTree::str_bulk_load_with_threads(
                cfg.node_capacity,
                (0..n as PoiId).map(|id| (id, pois.location(id))),
                threads,
            )
        });
        let node_aug = stages.time("node_aggregate", || {
            aggregate(&tree, &poi_aug, pivots.len(), cfg.samples_per_node)
        });
        let (ch, ch_stats) = {
            let t0 = std::time::Instant::now();
            let built = cfg
                .build_ch
                .then(|| gpssn_graph::ChOracle::build_with_stats(road.graph(), threads));
            stages.stages.push(("ch_contract", t0.elapsed()));
            match built {
                Some((oracle, stats)) => (Some(oracle), Some(stats)),
                None => (None, None),
            }
        };
        stages.ch = ch_stats;
        let idx = RoadIndex {
            tree,
            poi_aug,
            node_aug,
            pivots,
            cfg,
            ch,
        };
        (idx, stages)
    }

    /// Reassembles an index from deserialized parts: the R\*-tree is
    /// re-bulk-built (deterministic given the POI set and node capacity —
    /// the same STR packing the builder uses, so built and loaded trees
    /// are identical) and node augments re-aggregated, so only the
    /// expensive-to-recompute parts (per-POI keyword balls, the CH
    /// oracle) come from the file.
    pub(crate) fn from_loaded_parts(
        pois: &PoiSet,
        pivots: RoadPivots,
        cfg: RoadIndexConfig,
        poi_aug: Vec<PoiAugment>,
        ch: Option<gpssn_graph::ChOracle>,
    ) -> Self {
        let n = poi_aug.len();
        let tree = RStarTree::str_bulk_load_with_threads(
            cfg.node_capacity,
            (0..n as PoiId).map(|id| (id, pois.location(id))),
            cfg.build.threads,
        );
        let node_aug = aggregate(&tree, &poi_aug, pivots.len(), cfg.samples_per_node);
        RoadIndex {
            tree,
            poi_aug,
            node_aug,
            pivots,
            cfg,
            ch,
        }
    }

    /// The contraction-hierarchy oracle, if the index carries one.
    #[inline]
    pub fn ch(&self) -> Option<&gpssn_graph::ChOracle> {
        self.ch.as_ref()
    }

    /// Drops the CH oracle (used by tests and by callers that need the
    /// Dijkstra fallback path of an already-built index).
    pub fn without_ch(mut self) -> Self {
        self.ch = None;
        self
    }

    /// The underlying R\*-tree.
    #[inline]
    pub fn tree(&self) -> &RStarTree {
        &self.tree
    }

    /// Leaf augmentation of POI `id`.
    #[inline]
    pub fn poi(&self, id: PoiId) -> &PoiAugment {
        &self.poi_aug[id as usize]
    }

    /// Node augmentation of tree node `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> &RoadNodeAugment {
        &self.node_aug[id as usize]
    }

    /// The road pivots the index was built with.
    #[inline]
    pub fn pivots(&self) -> &RoadPivots {
        &self.pivots
    }

    /// Build configuration.
    #[inline]
    pub fn config(&self) -> &RoadIndexConfig {
        &self.cfg
    }

    /// Number of index pages (nodes).
    pub fn num_pages(&self) -> usize {
        self.tree.num_nodes()
    }

    /// Number of indexed POIs.
    #[inline]
    pub fn num_pois(&self) -> usize {
        self.poi_aug.len()
    }
}

/// Bottom-up aggregation of node augments.
fn aggregate(
    tree: &RStarTree,
    poi_aug: &[PoiAugment],
    num_pivots: usize,
    samples_per_node: usize,
) -> Vec<RoadNodeAugment> {
    let empty = RoadNodeAugment {
        sup_sig: KeywordSignature::empty(),
        lb_pivot: vec![f64::INFINITY; num_pivots],
        ub_pivot: vec![f64::NEG_INFINITY; num_pivots],
        samples: Vec::new(),
        poi_count: 0,
    };
    let mut aug = vec![empty; tree.num_nodes()];
    // Post-order via explicit stack.
    let mut order = Vec::with_capacity(tree.num_nodes());
    let mut stack = vec![tree.root()];
    while let Some(id) = stack.pop() {
        order.push(id);
        for e in &tree.node(id).entries {
            if let Entry::Child { node, .. } = *e {
                stack.push(node);
            }
        }
    }
    for &id in order.iter().rev() {
        let node = tree.node(id);
        let mut a = aug[id as usize].clone();
        for e in &node.entries {
            match *e {
                Entry::Item { item, .. } => {
                    let p = &poi_aug[item as usize];
                    a.sup_sig.union_in_place(&p.sup_sig);
                    for k in 0..num_pivots {
                        a.lb_pivot[k] = a.lb_pivot[k].min(p.pivot_dists[k]);
                        a.ub_pivot[k] = a.ub_pivot[k].max(p.pivot_dists[k]);
                    }
                    if a.samples.len() < samples_per_node {
                        a.samples.push(item);
                    }
                    a.poi_count += 1;
                }
                Entry::Child { node: c, .. } => {
                    let child = &aug[c as usize];
                    a.sup_sig.union_in_place(&child.sup_sig);
                    for k in 0..num_pivots {
                        a.lb_pivot[k] = a.lb_pivot[k].min(child.lb_pivot[k]);
                        a.ub_pivot[k] = a.ub_pivot[k].max(child.ub_pivot[k]);
                    }
                    for &s in &child.samples {
                        if a.samples.len() < samples_per_node {
                            a.samples.push(s);
                        }
                    }
                    a.poi_count += child.poi_count;
                }
            }
        }
        aug[id as usize] = a;
    }
    aug
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpssn_graph::ValueDistribution;
    use gpssn_road::{generate_pois, generate_road_network, PoiGenConfig, RoadGenConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn small_instance() -> (RoadNetwork, PoiSet) {
        let mut rng = StdRng::seed_from_u64(21);
        let road = generate_road_network(
            &RoadGenConfig {
                num_vertices: 300,
                space_size: 30.0,
                neighbors_per_vertex: 2,
            },
            &mut rng,
        );
        let pois = PoiSet::new(
            &road,
            generate_pois(
                &road,
                &PoiGenConfig {
                    num_pois: 150,
                    num_keywords: 5,
                    max_keywords_per_poi: 3,
                    distribution: ValueDistribution::Uniform,
                    keyword_locality: 0.8,
                },
                &mut rng,
            ),
        );
        (road, pois)
    }

    fn build(road: &RoadNetwork, pois: &PoiSet) -> RoadIndex {
        let pivots = RoadPivots::new(road, vec![0, 50, 100]);
        RoadIndex::build(
            road,
            pois,
            pivots,
            RoadIndexConfig {
                r_max: 3.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn sup_contains_own_and_sub_keywords() {
        let (road, pois) = small_instance();
        let idx = build(&road, &pois);
        for id in 0..pois.len() as PoiId {
            let a = idx.poi(id);
            // A POI is in its own sup and sub balls.
            for &k in &pois.get(id).keywords {
                assert!(
                    a.sup_keywords.contains(&k),
                    "poi {id} sup misses own keyword {k}"
                );
                assert!(
                    a.sub_keywords.contains(&k),
                    "poi {id} sub misses own keyword {k}"
                );
            }
            // sub ⊆ sup (r_min <= 2*r_max).
            for &k in &a.sub_keywords {
                assert!(a.sup_keywords.contains(&k));
            }
            assert!(a.sub_sig.is_subset_of(&a.sup_sig));
        }
    }

    #[test]
    fn node_signature_covers_descendants() {
        let (road, pois) = small_instance();
        let idx = build(&road, &pois);
        let root = idx.tree().root();
        let root_aug = idx.node(root);
        assert_eq!(root_aug.poi_count, pois.len());
        for id in 0..pois.len() as PoiId {
            assert!(idx.poi(id).sup_sig.is_subset_of(&root_aug.sup_sig));
        }
        assert!(!root_aug.samples.is_empty());
    }

    #[test]
    fn node_pivot_bounds_bracket_descendants() {
        let (road, pois) = small_instance();
        let idx = build(&road, &pois);
        // Check every node against the POIs actually below it.
        for node_id in 0..idx.tree().num_nodes() as u32 {
            let a = idx.node(node_id);
            if a.poi_count == 0 {
                continue;
            }
            // Gather descendants.
            let mut stack = vec![node_id];
            let mut below = Vec::new();
            while let Some(id) = stack.pop() {
                for e in &idx.tree().node(id).entries {
                    match *e {
                        Entry::Item { item, .. } => below.push(item),
                        Entry::Child { node, .. } => stack.push(node),
                    }
                }
            }
            for k in 0..idx.pivots().len() {
                let min = below
                    .iter()
                    .map(|&o| idx.poi(o).pivot_dists[k])
                    .fold(f64::INFINITY, f64::min);
                let max = below
                    .iter()
                    .map(|&o| idx.poi(o).pivot_dists[k])
                    .fold(f64::NEG_INFINITY, f64::max);
                assert!((a.lb_pivot[k] - min).abs() < 1e-9);
                assert!((a.ub_pivot[k] - max).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sub_keywords_shrink_with_smaller_r_min() {
        let (road, pois) = small_instance();
        let pivots = RoadPivots::new(&road, vec![0]);
        let wide = RoadIndex::build(
            &road,
            &pois,
            pivots.clone(),
            RoadIndexConfig {
                r_min: 2.0,
                r_max: 3.0,
                ..Default::default()
            },
        );
        let narrow = RoadIndex::build(
            &road,
            &pois,
            pivots,
            RoadIndexConfig {
                r_min: 0.2,
                r_max: 3.0,
                ..Default::default()
            },
        );
        let mut narrower_somewhere = false;
        for id in 0..pois.len() as PoiId {
            let w = &wide.poi(id).sub_keywords;
            let n = &narrow.poi(id).sub_keywords;
            assert!(
                n.iter().all(|k| w.contains(k)),
                "narrow sub ⊄ wide sub for poi {id}"
            );
            if n.len() < w.len() {
                narrower_somewhere = true;
            }
        }
        assert!(narrower_somewhere, "r_min had no effect at all");
    }

    /// The tentpole determinism claim at index level: the whole `I_R`
    /// build — POI augments, STR tree, aggregates, CH oracle — is
    /// bit-identical for every thread count, so the serialized file is
    /// byte-identical too.
    #[test]
    fn build_is_thread_count_invariant() {
        let (road, pois) = small_instance();
        let build_at = |threads: usize| {
            let pivots = RoadPivots::new(&road, vec![0, 50, 100]);
            RoadIndex::build(
                &road,
                &pois,
                pivots,
                RoadIndexConfig {
                    r_max: 3.0,
                    build: BuildOptions::with_threads(threads),
                    ..Default::default()
                },
            )
        };
        let base = build_at(1);
        let mut base_bytes = Vec::new();
        crate::io::write_road_index(&base, &mut base_bytes).unwrap();
        for threads in [2, 8, 0] {
            let idx = build_at(threads);
            assert_eq!(idx.num_pages(), base.num_pages(), "threads={threads}");
            for id in 0..pois.len() as PoiId {
                let (x, y) = (idx.poi(id), base.poi(id));
                assert_eq!(x.sup_keywords, y.sup_keywords, "threads={threads}");
                assert_eq!(x.sub_keywords, y.sub_keywords, "threads={threads}");
                let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|d| d.to_bits()).collect() };
                assert_eq!(
                    bits(&x.pivot_dists),
                    bits(&y.pivot_dists),
                    "threads={threads}"
                );
            }
            let mut bytes = Vec::new();
            crate::io::write_road_index(&idx, &mut bytes).unwrap();
            assert_eq!(
                bytes, base_bytes,
                "serialized bytes differ at threads={threads}"
            );
        }
    }

    #[test]
    fn build_stages_cover_the_pipeline() {
        let (road, pois) = small_instance();
        let pivots = RoadPivots::new(&road, vec![0, 50]);
        let (idx, stages) = RoadIndex::build_with_stages(
            &road,
            &pois,
            pivots,
            RoadIndexConfig {
                r_max: 3.0,
                ..Default::default()
            },
        );
        let names: Vec<&str> = stages.stages.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["poi_augment", "rstar_str", "node_aggregate", "ch_contract"]
        );
        assert!(stages.total() >= stages.get("poi_augment").unwrap());
        // CH ran, so its counters rode along.
        let ch = stages.ch.expect("CH stage stats");
        assert!(idx.ch().is_some());
        assert_eq!(ch.shortcuts, idx.ch().unwrap().num_shortcuts());
        assert!(ch.witness_resets > 0);
    }

    #[test]
    #[should_panic(expected = "invalid radius")]
    fn rejects_bad_radii() {
        let (road, pois) = small_instance();
        let pivots = RoadPivots::new(&road, vec![0]);
        RoadIndex::build(
            &road,
            &pois,
            pivots,
            RoadIndexConfig {
                r_min: 2.0,
                r_max: 1.0,
                ..Default::default()
            },
        );
    }
}
