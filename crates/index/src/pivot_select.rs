//! Pivot selection — the paper's Algorithm 1.
//!
//! Random-restart local search: start from a random pivot set, repeatedly
//! swap a pivot with a random non-pivot, keep the swap when the cost
//! improves, and take the best result over several restarts.
//!
//! **Cost model.** The paper defers `Cost_RN` / `Cost_SN` to appendices
//! that are not part of the extended abstract, so we re-derive the natural
//! objective: pivots exist to make the triangle-inequality *lower bound*
//! tight, so we maximize the expected bound over a fixed random sample of
//! vertex pairs:
//!
//! ```text
//! Cost(P) = Σ_{(a,b) ∈ sample} max_{p ∈ P} |d(a,p) − d(p,b)|
//! ```
//!
//! Distance columns (one single-source run per candidate pivot) are cached
//! across swap iterations, so the whole search costs `O(global_iter ·
//! swap_iter)` single-source traversals in the worst case. Columns missing
//! from the cache are independent single-source runs, so each evaluation
//! fans them out over scoped threads; results are merged back in candidate
//! order, keeping the selection bit-deterministic given the seed
//! regardless of thread count.

use gpssn_graph::{bfs, dijkstra_all, NodeId};
use gpssn_road::RoadNetwork;
use gpssn_social::SocialNetwork;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;

/// Tuning knobs for Algorithm 1.
#[derive(Debug, Clone)]
pub struct PivotSelectConfig {
    /// Number of pivots to select (`h` or `l`).
    pub count: usize,
    /// Random restarts (`global_iter` in Algorithm 1).
    pub global_iter: usize,
    /// Swap attempts per restart (`swap_iter`).
    pub swap_iter: usize,
    /// Number of sampled vertex pairs the cost model evaluates.
    pub sample_pairs: usize,
    /// RNG seed (pivot selection is deterministic given the seed).
    pub seed: u64,
}

impl Default for PivotSelectConfig {
    fn default() -> Self {
        PivotSelectConfig {
            count: 5,
            global_iter: 3,
            swap_iter: 24,
            sample_pairs: 64,
            seed: 0x9d17,
        }
    }
}

/// Selects road-network pivots (vertices of `G_r`) via Algorithm 1 with
/// Dijkstra distance columns.
pub fn select_road_pivots(net: &RoadNetwork, cfg: &PivotSelectConfig) -> Vec<NodeId> {
    let n = net.num_vertices();
    select_pivots(n, cfg, |p| dijkstra_all(net.graph(), &[(p, 0.0)]))
}

/// Selects social-network pivots (users of `G_s`) via Algorithm 1 with
/// BFS hop columns (unreachable mapped to a large finite sentinel so the
/// cost stays comparable).
pub fn select_social_pivots(net: &SocialNetwork, cfg: &PivotSelectConfig) -> Vec<NodeId> {
    let n = net.num_users();
    let far = (n + 1) as f64;
    select_pivots(n, cfg, |p| {
        bfs::hop_distances(net.graph(), p)
            .into_iter()
            .map(|h| if h == bfs::UNREACHABLE { far } else { h as f64 })
            .collect()
    })
}

/// Generic Algorithm 1 over any single-source distance oracle.
fn select_pivots<F>(n: usize, cfg: &PivotSelectConfig, column: F) -> Vec<NodeId>
where
    F: Fn(NodeId) -> Vec<f64> + Sync,
{
    assert!(cfg.count >= 1, "need at least one pivot");
    assert!(n >= cfg.count, "more pivots requested than vertices");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Fixed evaluation sample.
    let pairs: Vec<(usize, usize)> = (0..cfg.sample_pairs)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let mut columns: HashMap<NodeId, Vec<f64>> = HashMap::new();
    let cost_of = |pivots: &[NodeId], columns: &mut HashMap<NodeId, Vec<f64>>| -> f64 {
        // Uncached columns are independent single-source runs: fan out
        // over scoped threads, merge in candidate order (the cost below
        // is order-insensitive anyway — max over pivots — but the merge
        // keeps the cache contents deterministic too).
        let missing: Vec<NodeId> = {
            let mut missing = Vec::new();
            for &p in pivots {
                if !columns.contains_key(&p) && !missing.contains(&p) {
                    missing.push(p);
                }
            }
            missing
        };
        for (p, col) in missing.iter().zip(columns_parallel(&missing, &column)) {
            columns.insert(*p, col);
        }
        pairs
            .iter()
            .map(|&(a, b)| {
                pivots
                    .iter()
                    .map(|p| {
                        let col = &columns[p];
                        (col[a] - col[b]).abs()
                    })
                    .fold(0.0, f64::max)
            })
            .sum()
    };

    let mut global_cost = f64::NEG_INFINITY;
    let mut global_best: Vec<NodeId> = Vec::new();
    for _ in 0..cfg.global_iter.max(1) {
        // Random initial pivot set (distinct).
        let mut pivots: Vec<NodeId> = Vec::with_capacity(cfg.count);
        while pivots.len() < cfg.count {
            let cand = rng.gen_range(0..n) as NodeId;
            if !pivots.contains(&cand) {
                pivots.push(cand);
            }
        }
        let mut local_cost = cost_of(&pivots, &mut columns);
        for _ in 0..cfg.swap_iter {
            let slot = rng.gen_range(0..cfg.count);
            let replacement = rng.gen_range(0..n) as NodeId;
            if pivots.contains(&replacement) {
                continue;
            }
            let old = pivots[slot];
            pivots[slot] = replacement;
            let new_cost = cost_of(&pivots, &mut columns);
            if new_cost > local_cost {
                local_cost = new_cost;
            } else {
                pivots[slot] = old;
            }
        }
        if local_cost > global_cost {
            global_cost = local_cost;
            global_best = pivots;
        }
    }
    global_best.sort_unstable();
    global_best
}

/// Computes the distance columns of `missing` concurrently (one scoped
/// thread per column — there are at most `cfg.count` of them per
/// evaluation), returning them in input order.
// Audited expect: `join` only fails when a column worker panicked, and
// propagating that panic is exactly the intended behavior.
#[allow(clippy::expect_used)]
fn columns_parallel<F>(missing: &[NodeId], column: &F) -> Vec<Vec<f64>>
where
    F: Fn(NodeId) -> Vec<f64> + Sync,
{
    if missing.len() <= 1 {
        return missing.iter().map(|&p| column(p)).collect();
    }
    let mut out: Vec<Vec<f64>> = Vec::with_capacity(missing.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = missing
            .iter()
            .map(|&p| scope.spawn(move || column(p)))
            .collect();
        for h in handles {
            out.push(h.join().expect("pivot column worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpssn_social::{generate_social_network, SocialGenConfig};
    use gpssn_spatial::Point;

    fn grid(nx: usize, ny: usize) -> RoadNetwork {
        let mut locs = Vec::new();
        let mut edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                locs.push(Point::new(x as f64, y as f64));
                let id = (y * nx + x) as u32;
                if x + 1 < nx {
                    edges.push((id, id + 1));
                }
                if y + 1 < ny {
                    edges.push((id, id + nx as u32));
                }
            }
        }
        RoadNetwork::from_euclidean_edges(locs, &edges)
    }

    #[test]
    fn selects_requested_number_distinct() {
        let net = grid(6, 6);
        let cfg = PivotSelectConfig {
            count: 4,
            ..Default::default()
        };
        let pivots = select_road_pivots(&net, &cfg);
        assert_eq!(pivots.len(), 4);
        let mut dedup = pivots.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
        assert!(pivots.iter().all(|&p| (p as usize) < 36));
    }

    #[test]
    fn deterministic_under_seed() {
        let net = grid(5, 5);
        let cfg = PivotSelectConfig {
            count: 3,
            ..Default::default()
        };
        assert_eq!(
            select_road_pivots(&net, &cfg),
            select_road_pivots(&net, &cfg)
        );
    }

    #[test]
    fn optimized_beats_single_restart_without_swaps() {
        // With swaps disabled the result is a random set; the cost model
        // must make the optimized set at least as good on its own sample.
        let net = grid(8, 8);
        let base_cfg = PivotSelectConfig {
            count: 3,
            global_iter: 1,
            swap_iter: 0,
            ..Default::default()
        };
        let opt_cfg = PivotSelectConfig {
            count: 3,
            global_iter: 4,
            swap_iter: 40,
            ..Default::default()
        };
        // Evaluate both sets on a common fresh sample of pairs.
        let eval = |pivots: &[NodeId]| -> f64 {
            let cols: Vec<Vec<f64>> = pivots
                .iter()
                .map(|&p| dijkstra_all(net.graph(), &[(p, 0.0)]))
                .collect();
            let mut total = 0.0;
            let n = net.num_vertices();
            for a in (0..n).step_by(5) {
                for b in (0..n).step_by(7) {
                    total += cols.iter().map(|c| (c[a] - c[b]).abs()).fold(0.0, f64::max);
                }
            }
            total
        };
        let random = select_road_pivots(&net, &base_cfg);
        let optimized = select_road_pivots(&net, &opt_cfg);
        assert!(
            eval(&optimized) >= eval(&random) * 0.95,
            "optimization made bounds much worse"
        );
    }

    #[test]
    fn social_pivots_work_on_disconnected_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cfg = SocialGenConfig {
            num_users: 200,
            ..Default::default()
        };
        let net = generate_social_network(&cfg, &mut rng);
        let pivots = select_social_pivots(
            &net,
            &PivotSelectConfig {
                count: 3,
                ..Default::default()
            },
        );
        assert_eq!(pivots.len(), 3);
    }

    #[test]
    #[should_panic(expected = "more pivots")]
    fn rejects_too_many_pivots() {
        let net = grid(2, 2);
        select_road_pivots(
            &net,
            &PivotSelectConfig {
                count: 10,
                ..Default::default()
            },
        );
    }
}
