//! # gpssn-index — indexing mechanisms for GP-SSN (paper Section 4)
//!
//! Two indexes are built over a spatial-social network and traversed
//! simultaneously by the query algorithm:
//!
//! * [`road_index`] — `I_R`: an R\*-tree over POI locations whose leaves
//!   carry precomputed `sup_K` / `sub_K` keyword sets (unions over the
//!   road-network balls `⊙(o_i, 2·r_max)` and `⊙(o_i, r_min)`), hashed
//!   signatures, and pivot distances; non-leaf entries carry bit-OR'd
//!   signatures, sample POIs, and lower/upper pivot-distance bounds
//!   (Eqs. 7–8).
//! * [`social_index`] — `I_S`: a hierarchy over a balanced partitioning of
//!   the social graph whose nodes carry interest-vector MBRs (Eqs. 9–10)
//!   and lower/upper distance bounds to social and road pivots
//!   (Eqs. 11–14).
//! * [`pivot_select`] — the paper's Algorithm 1: random-restart local
//!   search maximizing a bound-tightness cost model (Appendices L/M are
//!   re-derived; see DESIGN.md).
//! * [`build`] — the shared build-parallelism knob ([`BuildOptions`])
//!   and per-stage wall-clock accounting ([`BuildStages`]) behind the
//!   deterministic parallel builders of both indexes.
//! * [`io`] — page-access accounting, reproducing the paper's I/O-cost
//!   metric over a simulated paged index file (one node = one page), plus
//!   the checksummed persistence format with per-section corruption
//!   detection and self-healing loads.
//! * [`crc32`] — the hand-rolled CRC-32 behind those section checksums.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod build;
pub mod crc32;
pub mod io;
pub mod pivot_select;
pub mod road_index;
pub mod social_index;

pub use build::{BuildOptions, BuildStages};
pub use io::{
    corrupt_section, load_road_index, load_road_index_healing, read_road_index,
    read_road_index_healing, save_road_index, write_road_index, CorruptSection, HealedLoad,
    IoCounter,
};
pub use pivot_select::{select_road_pivots, select_social_pivots, PivotSelectConfig};
pub use road_index::{PoiAugment, RoadIndex, RoadIndexConfig, RoadNodeAugment};
pub use social_index::{SocialIndex, SocialIndexConfig, SocialNode};
