//! Hand-rolled CRC-32 (IEEE 802.3 polynomial), used to checksum the
//! sections of the persisted road index.
//!
//! The workspace deliberately carries no compression/checksum
//! dependency, and the index files are small text artifacts, so a
//! table-driven byte-at-a-time CRC is plenty: it exists to catch torn
//! writes and bit rot on load, not to win throughput benchmarks.

/// Reflected polynomial of CRC-32/ISO-HDLC (the zlib/PNG/Ethernet CRC).
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming CRC-32 state; feed bytes with [`Crc32::update`], read the
/// final value with [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh CRC over zero bytes.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC-32/ISO-HDLC check value from the catalogue of
        // parametrised CRC algorithms.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"section pois 42 deadbeef\n1 2 3\n";
        let mut c = Crc32::new();
        for chunk in data.chunks(5) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_sum() {
        let base = b"cfg 16 0.5 4.0 3\n".to_vec();
        let want = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), want, "bit {i} not detected");
        }
    }
}
