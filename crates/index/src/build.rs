//! Build-parallelism knobs and per-stage timing shared by the `I_R` and
//! `I_S` builders.
//!
//! Every parallel build path in this workspace is **deterministic**: the
//! work is split into fixed chunks whose boundaries depend only on the
//! input size (never on thread scheduling), each chunk is computed by
//! exactly one worker, and results are merged back in input order. The
//! thread count therefore changes wall clock only — the built index (and
//! its serialized bytes) are identical for any `threads` value,
//! including `0` (auto). `tests/build_determinism.rs` and the CI
//! build-determinism job enforce this end to end.

use std::time::{Duration, Instant};

/// Parallelism knob for index construction, threaded through
/// [`crate::RoadIndexConfig`] / [`crate::SocialIndexConfig`] and the
/// `gpq --build-threads` CLI flag.
///
/// This is a runtime-only knob: it is **not** serialized with the index
/// (the output does not depend on it), and a loaded index always gets
/// the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuildOptions {
    /// Worker threads for index construction. `0` (the default) uses the
    /// machine's available parallelism; `1` builds sequentially.
    pub threads: usize,
}

impl BuildOptions {
    /// Options with an explicit thread count (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        BuildOptions { threads }
    }

    /// The effective worker count (`threads`, or the machine's available
    /// parallelism when `threads == 0`).
    pub fn resolve(&self) -> usize {
        resolve_threads(self.threads)
    }
}

/// `0` → available parallelism, otherwise the explicit count.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Wall-clock timings of one index build, stage by stage, plus the CH
/// contraction counters when that stage ran. Returned by the
/// `*_with_stages` builders; the engine folds these into the
/// `gpssn_build_stage_ns{stage}` telemetry histogram and `build_report`
/// turns them into `BENCH_build.json`.
#[derive(Debug, Clone, Default)]
pub struct BuildStages {
    /// `(stage name, wall clock)` in execution order.
    pub stages: Vec<(&'static str, Duration)>,
    /// Contraction counters from [`gpssn_graph::ChOracle::build_with_stats`]
    /// (present only when the road index built a CH oracle).
    pub ch: Option<gpssn_graph::ChBuildStats>,
}

impl BuildStages {
    /// Runs `f`, recording its wall clock under `name`.
    pub(crate) fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.stages.push((name, t0.elapsed()));
        out
    }

    /// Duration of the named stage, if it ran.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.stages
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
    }

    /// Sum of all stage durations.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }
}

/// Minimum items per worker before a build loop fans out: below this,
/// thread spawn overhead beats the win and the loop runs inline.
pub(crate) const PAR_FLOOR: usize = 32;

/// Deterministic parallel map over `0..n`: the range is split into
/// `workers` contiguous chunks (boundaries a function of `n` and the
/// resolved thread count only), each chunk is mapped by one scoped
/// worker holding its own scratch state from `state()`, and the results
/// are concatenated in index order. Because `f` is a pure function of
/// the index (scratch state is reused but never escapes), the output is
/// identical to the sequential map for every thread count.
// Audited expect: `join` only fails when a worker panicked, and
// propagating that panic is exactly the intended behavior.
#[allow(clippy::expect_used)]
pub(crate) fn par_map<S, R, M, F>(threads: usize, n: usize, state: M, f: F) -> Vec<R>
where
    R: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = resolve_threads(threads).min(n.div_ceil(PAR_FLOOR)).max(1);
    if workers <= 1 {
        let mut s = state();
        return (0..n).map(|i| f(&mut s, i)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (f, state) = (&f, &state);
                let lo = w * chunk;
                let hi = n.min(lo + chunk);
                scope.spawn(move || {
                    let mut s = state();
                    (lo..hi).map(|i| f(&mut s, i)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("index build worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let n = 1000;
        let seq: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9e37)).collect();
        for threads in [1, 2, 3, 8, 0] {
            let par = par_map(
                threads,
                n,
                || 0u64,
                |acc, i| {
                    *acc += 1; // per-worker scratch must not leak into output
                    (i as u64).wrapping_mul(0x9e37)
                },
            );
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        assert!(par_map(8, 0, || (), |_, i| i).is_empty());
        assert_eq!(par_map(8, 3, || (), |_, i| i), vec![0, 1, 2]);
    }

    #[test]
    fn resolve_maps_zero_to_auto() {
        assert!(BuildOptions::default().resolve() >= 1);
        assert_eq!(BuildOptions::with_threads(3).resolve(), 3);
        assert_eq!(BuildOptions::default(), BuildOptions { threads: 0 });
    }

    #[test]
    fn stages_record_in_order() {
        let mut st = BuildStages::default();
        let x = st.time("a", || 41) + st.time("b", || 1);
        assert_eq!(x, 42);
        assert_eq!(st.stages.len(), 2);
        assert_eq!(st.stages[0].0, "a");
        assert!(st.get("b").is_some());
        assert!(st.get("missing").is_none());
        assert_eq!(st.total(), st.stages.iter().map(|(_, d)| *d).sum());
    }
}
