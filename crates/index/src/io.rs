//! Simulated page-access (I/O) accounting, with an optional LRU buffer
//! pool.
//!
//! The paper reports the number of page accesses during query answering.
//! We model each index node (of either `I_R` or `I_S`) as one page of a
//! paged index file; visiting a node during traversal or refinement costs
//! one page access. A query-local counter keeps the accounting explicit
//! and thread-safe without locking.
//!
//! [`PageCache`] adds the classic database refinement: an LRU buffer pool
//! in front of the page file, so repeated touches of a hot page (e.g. the
//! index roots, or leaf pages revisited across refinement rounds) only
//! cost one physical read. The `cache` experiment in `gpssn-bench`
//! sweeps the pool size.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// A page-access counter. Cheap to clone-by-reference into traversal code;
/// interior mutability keeps traversal APIs immutable.
#[derive(Debug, Default)]
pub struct IoCounter {
    pages: Cell<u64>,
    cache: Option<RefCell<PageCache>>,
    hits: Cell<u64>,
}

impl IoCounter {
    /// A fresh counter at zero, with no buffer pool (every touch is a
    /// physical page access — the paper's metric).
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter backed by an LRU buffer pool of `capacity` pages:
    /// [`IoCounter::touch_page`] only counts misses.
    pub fn with_cache(capacity: usize) -> Self {
        IoCounter {
            pages: Cell::new(0),
            cache: Some(RefCell::new(PageCache::new(capacity))),
            hits: Cell::new(0),
        }
    }

    /// Records one page access (always physical; bypasses the pool).
    #[inline]
    pub fn touch(&self) {
        self.pages.set(self.pages.get() + 1);
    }

    /// Records `n` page accesses (always physical).
    #[inline]
    pub fn touch_n(&self, n: u64) {
        self.pages.set(self.pages.get() + n);
    }

    /// Records an access to an identified page: with a buffer pool, only
    /// a miss counts as a physical access; without one, this is
    /// [`IoCounter::touch`].
    pub fn touch_page(&self, page: u64) {
        match &self.cache {
            None => self.touch(),
            Some(cache) => {
                if cache.borrow_mut().access(page) {
                    self.hits.set(self.hits.get() + 1);
                } else {
                    self.touch();
                }
            }
        }
    }

    /// Physical page accesses so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.pages.get()
    }

    /// Buffer-pool hits so far (0 without a pool).
    #[inline]
    pub fn cache_hits(&self) -> u64 {
        self.hits.get()
    }

    /// Resets counters and evicts the pool.
    pub fn reset(&self) {
        self.pages.set(0);
        self.hits.set(0);
        if let Some(cache) = &self.cache {
            cache.borrow_mut().clear();
        }
    }
}

/// A strict-LRU page cache: `access` returns whether the page was
/// resident, inserting (and evicting the least-recently-used page) when
/// it was not.
#[derive(Debug)]
pub struct PageCache {
    capacity: usize,
    /// page → last-use stamp.
    resident: HashMap<u64, u64>,
    clock: u64,
}

impl PageCache {
    /// A pool holding up to `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "page cache needs capacity");
        PageCache {
            capacity,
            resident: HashMap::with_capacity(capacity + 1),
            clock: 0,
        }
    }

    /// Touches `page`: `true` on hit, `false` on miss (page is brought
    /// in, evicting the LRU page if the pool is full).
    pub fn access(&mut self, page: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(stamp) = self.resident.get_mut(&page) {
            *stamp = clock;
            return true;
        }
        if self.resident.len() == self.capacity {
            // Evict the least recently used (linear scan: pool sizes in
            // this simulation are tens-to-thousands of entries, and
            // misses — the only path that scans — are what we count).
            let (&lru, _) = self
                .resident
                .iter()
                .min_by_key(|&(_, &stamp)| stamp)
                .expect("non-empty pool");
            self.resident.remove(&lru);
        }
        self.resident.insert(page, clock);
        false
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Evicts everything.
    pub fn clear(&mut self) {
        self.resident.clear();
        self.clock = 0;
    }
}

/// Page-id namespace helpers: `I_R` and `I_S` nodes live in one simulated
/// file each.
pub mod page_ids {
    /// Page id of road-index node `n`.
    pub fn road(n: u32) -> u64 {
        n as u64
    }

    /// Page id of social-index node `n`.
    pub fn social(n: u32) -> u64 {
        (1u64 << 32) | n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let io = IoCounter::new();
        assert_eq!(io.count(), 0);
        io.touch();
        io.touch();
        io.touch_n(3);
        assert_eq!(io.count(), 5);
        io.reset();
        assert_eq!(io.count(), 0);
    }

    #[test]
    fn immutable_reference_suffices() {
        let io = IoCounter::new();
        let r = &io;
        r.touch();
        assert_eq!(io.count(), 1);
    }

    #[test]
    fn uncached_touch_page_counts_every_access() {
        let io = IoCounter::new();
        io.touch_page(7);
        io.touch_page(7);
        assert_eq!(io.count(), 2);
        assert_eq!(io.cache_hits(), 0);
    }

    #[test]
    fn cached_touch_page_counts_misses_only() {
        let io = IoCounter::with_cache(2);
        io.touch_page(1); // miss
        io.touch_page(1); // hit
        io.touch_page(2); // miss
        io.touch_page(1); // hit
        assert_eq!(io.count(), 2);
        assert_eq!(io.cache_hits(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut cache = PageCache::new(2);
        assert!(!cache.access(1));
        assert!(!cache.access(2));
        assert!(cache.access(1)); // 1 is now most recent
        assert!(!cache.access(3)); // evicts 2
        assert!(cache.access(1));
        assert!(!cache.access(2)); // 2 was evicted
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_pool() {
        let mut cache = PageCache::new(2);
        cache.access(1);
        cache.clear();
        assert!(cache.is_empty());
        assert!(!cache.access(1)); // miss again after clear
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        PageCache::new(0);
    }

    #[test]
    fn page_id_namespaces_do_not_collide() {
        assert_ne!(page_ids::road(5), page_ids::social(5));
        assert_eq!(page_ids::road(5), 5);
    }
}
