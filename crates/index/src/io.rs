//! Simulated page-access (I/O) accounting, with an optional LRU buffer
//! pool.
//!
//! The paper reports the number of page accesses during query answering.
//! We model each index node (of either `I_R` or `I_S`) as one page of a
//! paged index file; visiting a node during traversal or refinement costs
//! one page access. A query-local counter keeps the accounting explicit
//! and thread-safe without locking.
//!
//! [`PageCache`] adds the classic database refinement: an LRU buffer pool
//! in front of the page file, so repeated touches of a hot page (e.g. the
//! index roots, or leaf pages revisited across refinement rounds) only
//! cost one physical read. The `cache` experiment in `gpssn-bench`
//! sweeps the pool size.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// A page-access counter. Cheap to clone-by-reference into traversal code;
/// interior mutability keeps traversal APIs immutable.
#[derive(Debug, Default)]
pub struct IoCounter {
    pages: Cell<u64>,
    cache: Option<RefCell<PageCache>>,
    hits: Cell<u64>,
}

impl IoCounter {
    /// A fresh counter at zero, with no buffer pool (every touch is a
    /// physical page access — the paper's metric).
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter backed by an LRU buffer pool of `capacity` pages:
    /// [`IoCounter::touch_page`] only counts misses.
    pub fn with_cache(capacity: usize) -> Self {
        IoCounter {
            pages: Cell::new(0),
            cache: Some(RefCell::new(PageCache::new(capacity))),
            hits: Cell::new(0),
        }
    }

    /// Records one page access (always physical; bypasses the pool).
    #[inline]
    pub fn touch(&self) {
        self.pages.set(self.pages.get() + 1);
    }

    /// Records `n` page accesses (always physical).
    #[inline]
    pub fn touch_n(&self, n: u64) {
        self.pages.set(self.pages.get() + n);
    }

    /// Records an access to an identified page: with a buffer pool, only
    /// a miss counts as a physical access; without one, this is
    /// [`IoCounter::touch`].
    pub fn touch_page(&self, page: u64) {
        match &self.cache {
            None => self.touch(),
            Some(cache) => {
                if cache.borrow_mut().access(page) {
                    self.hits.set(self.hits.get() + 1);
                } else {
                    self.touch();
                }
            }
        }
    }

    /// Physical page accesses so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.pages.get()
    }

    /// Buffer-pool hits so far (0 without a pool).
    #[inline]
    pub fn cache_hits(&self) -> u64 {
        self.hits.get()
    }

    /// Resets counters and evicts the pool.
    pub fn reset(&self) {
        self.pages.set(0);
        self.hits.set(0);
        if let Some(cache) = &self.cache {
            cache.borrow_mut().clear();
        }
    }
}

/// A strict-LRU page cache: `access` returns whether the page was
/// resident, inserting (and evicting the least-recently-used page) when
/// it was not.
#[derive(Debug)]
pub struct PageCache {
    capacity: usize,
    /// page → last-use stamp.
    resident: HashMap<u64, u64>,
    clock: u64,
}

impl PageCache {
    /// A pool holding up to `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "page cache needs capacity");
        PageCache {
            capacity,
            resident: HashMap::with_capacity(capacity + 1),
            clock: 0,
        }
    }

    /// Touches `page`: `true` on hit, `false` on miss (page is brought
    /// in, evicting the LRU page if the pool is full).
    pub fn access(&mut self, page: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(stamp) = self.resident.get_mut(&page) {
            *stamp = clock;
            return true;
        }
        if self.resident.len() == self.capacity {
            // Evict the least recently used (linear scan: pool sizes in
            // this simulation are tens-to-thousands of entries, and
            // misses — the only path that scans — are what we count).
            // `capacity > 0` is asserted at construction, so a full pool
            // always yields a victim; `if let` keeps this panic-free.
            if let Some((&lru, _)) = self.resident.iter().min_by_key(|&(_, &stamp)| stamp) {
                self.resident.remove(&lru);
            }
        }
        self.resident.insert(page, clock);
        false
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Evicts everything.
    pub fn clear(&mut self) {
        self.resident.clear();
        self.clock = 0;
    }
}

/// Page-id namespace helpers: `I_R` and `I_S` nodes live in one simulated
/// file each.
pub mod page_ids {
    /// Page id of road-index node `n`.
    pub fn road(n: u32) -> u64 {
        n as u64
    }

    /// Page id of social-index node `n`.
    pub fn social(n: u32) -> u64 {
        (1u64 << 32) | n as u64
    }
}

// ---------------------------------------------------------------------
// Road-index persistence.
// ---------------------------------------------------------------------

use crate::road_index::{PoiAugment, RoadIndex, RoadIndexConfig};
use gpssn_graph::ChOracle;
use gpssn_road::{PoiSet, RoadNetwork, RoadPivots};
use gpssn_spatial::KeywordSignature;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const INDEX_MAGIC_V1: &str = "# gpssn-road-index v1";
const INDEX_MAGIC_V2: &str = "# gpssn-road-index v2";

/// The serialized sections of a v2 index file, in file order. Each is
/// independently CRC-32-checked on load, so corruption is reported (and,
/// for the `ch` section, healed) at section granularity.
const SECTION_NAMES: [&str; 4] = ["cfg", "pivots", "pois", "ch"];

/// Upper bound for pre-allocation from untrusted counts (matches the
/// `gpssn-ssn` reader): a corrupt header must not abort inside
/// `with_capacity`; vectors still grow to the real size on demand.
const MAX_PREALLOC: usize = 1 << 16;

/// Typed payload behind the `InvalidData` [`io::Error`] returned when a
/// v2 section fails its checksum; recover it with [`corrupt_section`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptSection {
    /// Which serialized section failed verification (`"cfg"`,
    /// `"pivots"`, `"pois"`, or `"ch"`).
    pub section: String,
}

impl std::fmt::Display for CorruptSection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "road-index section {:?} failed its checksum",
            self.section
        )
    }
}

impl std::error::Error for CorruptSection {}

/// The corrupt section's name, when `e` is a checksum failure from the
/// v2 index reader (`None` for every other I/O error). This is what
/// callers use to map the error onto a typed `IndexCorrupt` and to
/// decide whether a rebuild can heal it.
pub fn corrupt_section(e: &io::Error) -> Option<&str> {
    e.get_ref()?
        .downcast_ref::<CorruptSection>()
        .map(|c| c.section.as_str())
}

fn corrupt(section: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        CorruptSection {
            section: section.to_string(),
        },
    )
}

/// Serializes a [`RoadIndex`] as versioned plain text (the v2 sectioned
/// format: every section carries a line count and a CRC-32 of its body,
/// so loads verify integrity per section).
///
/// Only the expensive-to-recompute parts are written: the per-POI
/// keyword balls with pivot distances, and the contraction-hierarchy
/// oracle (when present). The R\*-tree, node aggregates, signatures, and
/// the pivot distance table are deterministic functions of the POI set /
/// road network and are rebuilt on load.
pub fn write_road_index<W: Write>(idx: &RoadIndex, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{INDEX_MAGIC_V2}")?;
    let cfg = idx.config();
    let mut body = Vec::new();
    writeln!(
        body,
        "cfg {} {:?} {:?} {}",
        cfg.node_capacity, cfg.r_min, cfg.r_max, cfg.samples_per_node
    )?;
    write_section(&mut w, "cfg", &body)?;

    body.clear();
    let pivots = idx.pivots();
    writeln!(body, "pivots {}", pivots.len())?;
    for &p in pivots.pivots() {
        writeln!(body, "{p}")?;
    }
    write_section(&mut w, "pivots", &body)?;

    body.clear();
    writeln!(body, "pois {}", idx.num_pois())?;
    for id in 0..idx.num_pois() as u32 {
        let a = idx.poi(id);
        writeln!(body, "{}", join_u32(&a.sup_keywords))?;
        writeln!(body, "{}", join_u32(&a.sub_keywords))?;
        let ds: Vec<String> = a.pivot_dists.iter().map(|d| format!("{d:?}")).collect();
        writeln!(body, "{}", ds.join(" "))?;
    }
    write_section(&mut w, "pois", &body)?;

    body.clear();
    match idx.ch() {
        Some(ch) => {
            writeln!(body, "has-ch 1")?;
            ch.write_text(&mut body)?;
        }
        None => writeln!(body, "has-ch 0")?,
    }
    write_section(&mut w, "ch", &body)?;
    w.flush()
}

/// Writes one section: a `section <name> <lines> <crc32>` header, then
/// the body verbatim. The CRC covers the body bytes exactly as written.
fn write_section<W: Write>(w: &mut W, name: &str, body: &[u8]) -> io::Result<()> {
    let nlines = body.iter().filter(|&&b| b == b'\n').count();
    let crc = crate::crc32::crc32(body);
    writeln!(w, "section {name} {nlines} {crc:08x}")?;
    w.write_all(body)
}

/// Deserializes a [`RoadIndex`] written by [`write_road_index`]. Reads
/// both the current v2 sectioned format (verifying every section's
/// CRC-32 — a mismatch is an `InvalidData` error carrying
/// [`CorruptSection`]) and the legacy v1 format (no checksums).
///
/// `road` and `pois` must be the network and POI set the index was built
/// over (counts are validated). An index saved without a CH oracle loads
/// fine — the engine then answers `dist_RN` probes via the Dijkstra
/// fallback. To *recover* from a corrupt `ch` section instead of
/// failing, use [`read_road_index_healing`].
pub fn read_road_index<R: Read>(road: &RoadNetwork, pois: &PoiSet, r: R) -> io::Result<RoadIndex> {
    if gpssn_failpoint::failpoint!("index::read_road_index") {
        return Err(io::Error::other("injected fault: index::read_road_index"));
    }
    let mut lines = BufReader::new(r).lines();
    match next_line(&mut lines)?.trim() {
        INDEX_MAGIC_V2 => {
            let sections = read_sections(&mut lines)?;
            assemble_v2(road, pois, &sections, false).map(|h| h.index)
        }
        INDEX_MAGIC_V1 => read_v1_body(road, pois, &mut lines),
        _ => Err(bad_data("bad road-index magic")),
    }
}

/// Outcome of a healing index load (see [`read_road_index_healing`]).
#[derive(Debug)]
pub struct HealedLoad {
    /// The loaded (possibly partially rebuilt) index.
    pub index: RoadIndex,
    /// Whether the CH section was corrupt and the oracle was rebuilt
    /// from the road graph. The rebuild is bit-identical in effect: CH
    /// distance answers match plain Dijkstra exactly either way.
    pub rebuilt_ch: bool,
}

/// Self-healing variant of [`read_road_index`]: a v2 file whose `ch`
/// section fails its checksum is *healed* by rebuilding the
/// contraction-hierarchy oracle from the road graph (deterministic, and
/// answer-equivalent — the oracle is a pure accelerator). Corruption in
/// any other section (`cfg`, `pivots`, `pois`) is not recoverable from
/// the inputs at hand and stays a [`CorruptSection`] error; so does any
/// corruption in a legacy v1 file, which carries no checksums to
/// localize the damage.
pub fn read_road_index_healing<R: Read>(
    road: &RoadNetwork,
    pois: &PoiSet,
    r: R,
) -> io::Result<HealedLoad> {
    if gpssn_failpoint::failpoint!("index::read_road_index") {
        return Err(io::Error::other("injected fault: index::read_road_index"));
    }
    let mut lines = BufReader::new(r).lines();
    match next_line(&mut lines)?.trim() {
        INDEX_MAGIC_V2 => {
            let sections = read_sections(&mut lines)?;
            assemble_v2(road, pois, &sections, true)
        }
        INDEX_MAGIC_V1 => read_v1_body(road, pois, &mut lines).map(|index| HealedLoad {
            index,
            rebuilt_ch: false,
        }),
        _ => Err(bad_data("bad road-index magic")),
    }
}

/// One v2 section, read off the file: its name, whether its body matched
/// the stored CRC, and the body text itself.
struct Section {
    name: String,
    ok: bool,
    body: String,
}

/// Reads every `section <name> <lines> <crc32>` block to end of input.
fn read_sections<B: BufRead>(lines: &mut io::Lines<B>) -> io::Result<Vec<Section>> {
    let mut out = Vec::new();
    while let Some(header) = lines.next() {
        let header = header?;
        if header.trim().is_empty() {
            continue;
        }
        let mut it = header.split_whitespace();
        expect_tag(it.next(), "section")?;
        let name: String = parse(it.next())?;
        let nlines: usize = parse(it.next())?;
        let want: String = parse(it.next())?;
        let mut body = String::new();
        for _ in 0..nlines {
            match lines.next() {
                Some(l) => {
                    body.push_str(&l?);
                    body.push('\n');
                }
                None => return Err(bad_data("unexpected end of road-index file")),
            }
        }
        let got = format!("{:08x}", crate::crc32::crc32(body.as_bytes()));
        out.push(Section {
            name,
            ok: got == want,
            body,
        });
    }
    Ok(out)
}

/// Parses the four verified v2 sections into a [`RoadIndex`]. With
/// `heal` set, a corrupt `ch` section is replaced by a fresh
/// [`ChOracle::build`] over the road graph; otherwise (and for every
/// other corrupt section) the load fails with [`CorruptSection`].
fn assemble_v2(
    road: &RoadNetwork,
    pois: &PoiSet,
    sections: &[Section],
    heal: bool,
) -> io::Result<HealedLoad> {
    if sections.len() != SECTION_NAMES.len()
        || sections
            .iter()
            .zip(SECTION_NAMES)
            .any(|(s, want)| s.name != want)
    {
        return Err(bad_data("road-index sections missing or out of order"));
    }
    let ch_corruptible = gpssn_failpoint::failpoint!("index::ch_corrupt");
    for s in sections {
        let ch_faulted = s.name == "ch" && ch_corruptible;
        if !s.ok || ch_faulted {
            if heal && s.name == "ch" {
                continue; // rebuilt below
            }
            return Err(corrupt(&s.name));
        }
    }
    let section = |name: &str| -> &Section {
        // Position is validated against SECTION_NAMES above.
        &sections[SECTION_NAMES.iter().position(|&n| n == name).unwrap_or(0)]
    };
    let mut lines = section("cfg").body.as_bytes().lines();
    let (node_capacity, r_min, r_max, samples_per_node) = parse_cfg(&mut lines)?;
    let mut lines = section("pivots").body.as_bytes().lines();
    let pivot_ids = parse_pivots(&mut lines, road)?;
    let mut lines = section("pois").body.as_bytes().lines();
    let poi_aug = parse_pois(&mut lines, pois, pivot_ids.len())?;
    let ch_section = section("ch");
    let (ch, rebuilt_ch) = if ch_section.ok && !ch_corruptible {
        let mut lines = ch_section.body.as_bytes().lines();
        (parse_ch(&mut lines, road)?, false)
    } else {
        // Healing: the oracle is a deterministic function of the road
        // graph, so a corrupt section costs a rebuild, not the load.
        // `build` is the parallel contraction (all cores) — its output
        // is bit-identical for every thread count, so the healed index
        // byte-matches one rebuilt sequentially.
        (Some(ChOracle::build(road.graph())), true)
    };
    let cfg = RoadIndexConfig {
        node_capacity,
        r_min,
        r_max,
        samples_per_node,
        build_ch: ch.is_some(),
        build: crate::build::BuildOptions::default(),
    };
    // The pivot table is h exact Dijkstra columns — deterministic (and
    // thread-count invariant), so it is rebuilt in parallel rather than
    // stored.
    let pivots = RoadPivots::new_with_threads(road, pivot_ids, cfg.build.threads);
    Ok(HealedLoad {
        index: RoadIndex::from_loaded_parts(pois, pivots, cfg, poi_aug, ch),
        rebuilt_ch,
    })
}

/// Parses a legacy v1 body (the magic line already consumed): the same
/// sections as v2, concatenated with no headers and no checksums.
fn read_v1_body<B: BufRead>(
    road: &RoadNetwork,
    pois: &PoiSet,
    lines: &mut io::Lines<B>,
) -> io::Result<RoadIndex> {
    let (node_capacity, r_min, r_max, samples_per_node) = parse_cfg(lines)?;
    let pivot_ids = parse_pivots(lines, road)?;
    let poi_aug = parse_pois(lines, pois, pivot_ids.len())?;
    let ch = parse_ch(lines, road)?;
    let cfg = RoadIndexConfig {
        node_capacity,
        r_min,
        r_max,
        samples_per_node,
        build_ch: ch.is_some(),
        build: crate::build::BuildOptions::default(),
    };
    let pivots = RoadPivots::new_with_threads(road, pivot_ids, cfg.build.threads);
    Ok(RoadIndex::from_loaded_parts(pois, pivots, cfg, poi_aug, ch))
}

fn parse_cfg<B: BufRead>(lines: &mut io::Lines<B>) -> io::Result<(usize, f64, f64, usize)> {
    let header = next_line(lines)?;
    let mut it = header.split_whitespace();
    expect_tag(it.next(), "cfg")?;
    let node_capacity: usize = parse(it.next())?;
    let r_min: f64 = parse(it.next())?;
    let r_max: f64 = parse(it.next())?;
    let samples_per_node: usize = parse(it.next())?;
    if !(r_min > 0.0 && r_max >= r_min) {
        return Err(bad_data("invalid radius range"));
    }
    Ok((node_capacity, r_min, r_max, samples_per_node))
}

fn parse_pivots<B: BufRead>(lines: &mut io::Lines<B>, road: &RoadNetwork) -> io::Result<Vec<u32>> {
    let header = next_line(lines)?;
    let mut it = header.split_whitespace();
    expect_tag(it.next(), "pivots")?;
    let h: usize = parse(it.next())?;
    let mut pivot_ids = Vec::with_capacity(h.min(MAX_PREALLOC));
    for _ in 0..h {
        let p: u32 = parse(Some(next_line(lines)?.trim()))?;
        if (p as usize) >= road.num_vertices() {
            return Err(bad_data("pivot vertex out of range"));
        }
        pivot_ids.push(p);
    }
    Ok(pivot_ids)
}

fn parse_pois<B: BufRead>(
    lines: &mut io::Lines<B>,
    pois: &PoiSet,
    h: usize,
) -> io::Result<Vec<PoiAugment>> {
    let header = next_line(lines)?;
    let mut it = header.split_whitespace();
    expect_tag(it.next(), "pois")?;
    let n: usize = parse(it.next())?;
    if n != pois.len() {
        return Err(bad_data("index POI count does not match the POI set"));
    }
    let mut poi_aug = Vec::with_capacity(n.min(MAX_PREALLOC));
    for _ in 0..n {
        let sup_keywords = parse_u32_list(&next_line(lines)?)?;
        let sub_keywords = parse_u32_list(&next_line(lines)?)?;
        let dist_line = next_line(lines)?;
        let mut pivot_dists = Vec::with_capacity(h.min(MAX_PREALLOC));
        for tok in dist_line.split_whitespace() {
            pivot_dists.push(parse::<f64>(Some(tok))?);
        }
        if pivot_dists.len() != h {
            return Err(bad_data("pivot distance arity mismatch"));
        }
        let sup_sig = KeywordSignature::from_keywords(sup_keywords.iter().copied());
        let sub_sig = KeywordSignature::from_keywords(sub_keywords.iter().copied());
        poi_aug.push(PoiAugment {
            sup_keywords,
            sub_keywords,
            sup_sig,
            sub_sig,
            pivot_dists,
        });
    }
    Ok(poi_aug)
}

fn parse_ch<B: BufRead>(
    lines: &mut io::Lines<B>,
    road: &RoadNetwork,
) -> io::Result<Option<ChOracle>> {
    let header = next_line(lines)?;
    let mut it = header.split_whitespace();
    expect_tag(it.next(), "has-ch")?;
    let has_ch: u8 = parse(it.next())?;
    match has_ch {
        0 => Ok(None),
        1 => {
            let ch = ChOracle::read_text(lines)?;
            if ch.num_nodes() != road.num_vertices() {
                return Err(bad_data("ch oracle size does not match the road network"));
            }
            Ok(Some(ch))
        }
        _ => Err(bad_data("has-ch must be 0 or 1")),
    }
}

/// [`write_road_index`] to a file path.
pub fn save_road_index(idx: &RoadIndex, path: impl AsRef<Path>) -> io::Result<()> {
    write_road_index(idx, std::fs::File::create(path)?)
}

/// [`read_road_index`] from a file path.
pub fn load_road_index(
    road: &RoadNetwork,
    pois: &PoiSet,
    path: impl AsRef<Path>,
) -> io::Result<RoadIndex> {
    read_road_index(road, pois, std::fs::File::open(path)?)
}

/// [`read_road_index_healing`] from a file path.
pub fn load_road_index_healing(
    road: &RoadNetwork,
    pois: &PoiSet,
    path: impl AsRef<Path>,
) -> io::Result<HealedLoad> {
    read_road_index_healing(road, pois, std::fs::File::open(path)?)
}

fn join_u32(xs: &[u32]) -> String {
    xs.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_u32_list(line: &str) -> io::Result<Vec<u32>> {
    line.split_whitespace().map(|t| parse(Some(t))).collect()
}

fn next_line<B: BufRead>(lines: &mut io::Lines<B>) -> io::Result<String> {
    lines
        .next()
        .ok_or_else(|| bad_data("unexpected end of road-index file"))?
}

fn expect_tag(tok: Option<&str>, tag: &str) -> io::Result<()> {
    if tok == Some(tag) {
        Ok(())
    } else {
        Err(bad_data("unexpected road-index section tag"))
    }
}

fn parse<T: std::str::FromStr>(field: Option<&str>) -> io::Result<T> {
    field
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_data("malformed road-index field"))
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let io = IoCounter::new();
        assert_eq!(io.count(), 0);
        io.touch();
        io.touch();
        io.touch_n(3);
        assert_eq!(io.count(), 5);
        io.reset();
        assert_eq!(io.count(), 0);
    }

    #[test]
    fn immutable_reference_suffices() {
        let io = IoCounter::new();
        let r = &io;
        r.touch();
        assert_eq!(io.count(), 1);
    }

    #[test]
    fn uncached_touch_page_counts_every_access() {
        let io = IoCounter::new();
        io.touch_page(7);
        io.touch_page(7);
        assert_eq!(io.count(), 2);
        assert_eq!(io.cache_hits(), 0);
    }

    #[test]
    fn cached_touch_page_counts_misses_only() {
        let io = IoCounter::with_cache(2);
        io.touch_page(1); // miss
        io.touch_page(1); // hit
        io.touch_page(2); // miss
        io.touch_page(1); // hit
        assert_eq!(io.count(), 2);
        assert_eq!(io.cache_hits(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut cache = PageCache::new(2);
        assert!(!cache.access(1));
        assert!(!cache.access(2));
        assert!(cache.access(1)); // 1 is now most recent
        assert!(!cache.access(3)); // evicts 2
        assert!(cache.access(1));
        assert!(!cache.access(2)); // 2 was evicted
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_pool() {
        let mut cache = PageCache::new(2);
        cache.access(1);
        cache.clear();
        assert!(cache.is_empty());
        assert!(!cache.access(1)); // miss again after clear
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        PageCache::new(0);
    }

    #[test]
    fn page_id_namespaces_do_not_collide() {
        assert_ne!(page_ids::road(5), page_ids::social(5));
        assert_eq!(page_ids::road(5), 5);
    }

    use gpssn_graph::ValueDistribution;
    use gpssn_road::{generate_pois, generate_road_network, PoiGenConfig, RoadGenConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn small_instance() -> (RoadNetwork, PoiSet) {
        let mut rng = StdRng::seed_from_u64(33);
        let road = generate_road_network(
            &RoadGenConfig {
                num_vertices: 200,
                space_size: 20.0,
                neighbors_per_vertex: 2,
            },
            &mut rng,
        );
        let pois = PoiSet::new(
            &road,
            generate_pois(
                &road,
                &PoiGenConfig {
                    num_pois: 80,
                    num_keywords: 5,
                    max_keywords_per_poi: 3,
                    distribution: ValueDistribution::Uniform,
                    keyword_locality: 0.8,
                },
                &mut rng,
            ),
        );
        (road, pois)
    }

    fn build_index(road: &RoadNetwork, pois: &PoiSet, build_ch: bool) -> RoadIndex {
        let pivots = RoadPivots::new(road, vec![0, 40, 90]);
        RoadIndex::build(
            road,
            pois,
            pivots,
            RoadIndexConfig {
                r_max: 3.0,
                build_ch,
                ..Default::default()
            },
        )
    }

    fn assert_same_index(a: &RoadIndex, b: &RoadIndex) {
        assert_eq!(a.num_pois(), b.num_pois());
        assert_eq!(a.num_pages(), b.num_pages());
        assert_eq!(a.pivots().pivots(), b.pivots().pivots());
        for id in 0..a.num_pois() as u32 {
            let (x, y) = (a.poi(id), b.poi(id));
            assert_eq!(x.sup_keywords, y.sup_keywords);
            assert_eq!(x.sub_keywords, y.sub_keywords);
            assert_eq!(x.sup_sig, y.sup_sig);
            assert_eq!(x.sub_sig, y.sub_sig);
            let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|d| d.to_bits()).collect() };
            assert_eq!(bits(&x.pivot_dists), bits(&y.pivot_dists));
        }
        for n in 0..a.num_pages() as u32 {
            let (x, y) = (a.node(n), b.node(n));
            assert_eq!(x.sup_sig, y.sup_sig);
            assert_eq!(x.samples, y.samples);
            assert_eq!(x.poi_count, y.poi_count);
        }
    }

    #[test]
    fn road_index_round_trips_with_ch() {
        let (road, pois) = small_instance();
        let idx = build_index(&road, &pois, true);
        assert!(idx.ch().is_some());
        let mut buf = Vec::new();
        write_road_index(&idx, &mut buf).unwrap();
        let back = read_road_index(&road, &pois, &buf[..]).unwrap();
        assert_same_index(&idx, &back);
        // The CH oracle round-trips to bit-identical answers.
        let (orig, loaded) = (idx.ch().unwrap(), back.ch().unwrap());
        let mut s = gpssn_graph::ChSearch::new();
        let targets: Vec<u32> = (0..road.num_vertices() as u32).step_by(7).collect();
        for src in [0u32, 11, 63] {
            let (x, _) = orig.dists(&mut s, &[(src, 0.0)], &targets);
            let (y, _) = loaded.dists(&mut s, &[(src, 0.0)], &targets);
            for (a, b) in x.iter().zip(y.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn ch_less_index_round_trips_and_loads() {
        let (road, pois) = small_instance();
        let idx = build_index(&road, &pois, false);
        assert!(idx.ch().is_none());
        let mut buf = Vec::new();
        write_road_index(&idx, &mut buf).unwrap();
        let back = read_road_index(&road, &pois, &buf[..]).unwrap();
        assert!(back.ch().is_none(), "CH-less index must stay CH-less");
        assert_same_index(&idx, &back);
    }

    #[test]
    fn read_road_index_rejects_mismatched_pois() {
        let (road, pois) = small_instance();
        let idx = build_index(&road, &pois, false);
        let mut buf = Vec::new();
        write_road_index(&idx, &mut buf).unwrap();
        // A POI set of a different size must be rejected.
        let mut rng = StdRng::seed_from_u64(9);
        let other = PoiSet::new(
            &road,
            generate_pois(
                &road,
                &PoiGenConfig {
                    num_pois: 10,
                    num_keywords: 3,
                    max_keywords_per_poi: 2,
                    distribution: ValueDistribution::Uniform,
                    keyword_locality: 0.5,
                },
                &mut rng,
            ),
        );
        assert!(read_road_index(&road, &other, &buf[..]).is_err());
    }

    #[test]
    fn read_road_index_rejects_garbage() {
        let (road, pois) = small_instance();
        for text in ["", "# wrong magic\n", "# gpssn-road-index v1\ncfg nope\n"] {
            assert!(read_road_index(&road, &pois, text.as_bytes()).is_err());
        }
    }

    /// Strips the v2 framing (magic + `section` headers) down to the
    /// legacy v1 layout: the same bodies, concatenated.
    fn downgrade_to_v1(v2: &str) -> String {
        let mut out = String::from("# gpssn-road-index v1\n");
        for line in v2.lines().skip(1) {
            if !line.starts_with("section ") {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// Flips one character inside the body of the named section (leaving
    /// every header line intact), simulating bit rot.
    fn corrupt_body(v2: &str, name: &str) -> String {
        let mut out = Vec::new();
        let mut in_target = false;
        let mut done = false;
        for line in v2.lines() {
            if line.starts_with("section ") {
                in_target = line.split_whitespace().nth(1) == Some(name);
                out.push(line.to_string());
                continue;
            }
            if in_target && !done && !line.is_empty() {
                let mut chars: Vec<char> = line.chars().collect();
                chars[0] = if chars[0] == '0' { '1' } else { '0' };
                out.push(chars.into_iter().collect());
                done = true;
            } else {
                out.push(line.to_string());
            }
        }
        assert!(done, "section {name} had no body to corrupt");
        out.join("\n") + "\n"
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let (road, pois) = small_instance();
        let idx = build_index(&road, &pois, true);
        let mut buf = Vec::new();
        write_road_index(&idx, &mut buf).unwrap();
        let v1 = downgrade_to_v1(std::str::from_utf8(&buf).unwrap());
        let back = read_road_index(&road, &pois, v1.as_bytes()).unwrap();
        assert_same_index(&idx, &back);
        // The healing reader also accepts v1 (without healing anything).
        let healed = read_road_index_healing(&road, &pois, v1.as_bytes()).unwrap();
        assert!(!healed.rebuilt_ch);
        assert_same_index(&idx, &healed.index);
    }

    #[test]
    fn corrupt_sections_yield_targeted_errors() {
        let (road, pois) = small_instance();
        let idx = build_index(&road, &pois, true);
        let mut buf = Vec::new();
        write_road_index(&idx, &mut buf).unwrap();
        let text = std::str::from_utf8(&buf).unwrap();
        for name in ["cfg", "pivots", "pois", "ch"] {
            let bad = corrupt_body(text, name);
            let err = read_road_index(&road, &pois, bad.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{name}");
            assert_eq!(corrupt_section(&err), Some(name));
        }
        // Ordinary parse errors carry no CorruptSection payload.
        let err = read_road_index(&road, &pois, b"garbage".as_slice()).unwrap_err();
        assert_eq!(corrupt_section(&err), None);
    }

    #[test]
    fn healing_rebuilds_only_the_ch_section() {
        let (road, pois) = small_instance();
        let idx = build_index(&road, &pois, true);
        let mut buf = Vec::new();
        write_road_index(&idx, &mut buf).unwrap();
        let text = std::str::from_utf8(&buf).unwrap();

        let bad_ch = corrupt_body(text, "ch");
        let healed = read_road_index_healing(&road, &pois, bad_ch.as_bytes()).unwrap();
        assert!(healed.rebuilt_ch);
        assert_same_index(&idx, &healed.index);
        // The rebuilt oracle answers bit-identically to the original.
        let (orig, rebuilt) = (idx.ch().unwrap(), healed.index.ch().unwrap());
        let mut s = gpssn_graph::ChSearch::new();
        let targets: Vec<u32> = (0..road.num_vertices() as u32).step_by(7).collect();
        for src in [0u32, 11, 63] {
            let (x, _) = orig.dists(&mut s, &[(src, 0.0)], &targets);
            let (y, _) = rebuilt.dists(&mut s, &[(src, 0.0)], &targets);
            for (a, b) in x.iter().zip(y.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // Corruption anywhere else is not healable.
        for name in ["cfg", "pivots", "pois"] {
            let bad = corrupt_body(text, name);
            let err = read_road_index_healing(&road, &pois, bad.as_bytes()).unwrap_err();
            assert_eq!(corrupt_section(&err), Some(name), "{name} must stay fatal");
        }
    }

    #[test]
    fn intact_v2_files_do_not_trigger_healing() {
        let (road, pois) = small_instance();
        let idx = build_index(&road, &pois, false);
        let mut buf = Vec::new();
        write_road_index(&idx, &mut buf).unwrap();
        let healed = read_road_index_healing(&road, &pois, &buf[..]).unwrap();
        assert!(!healed.rebuilt_ch);
        assert!(healed.index.ch().is_none());
        assert_same_index(&idx, &healed.index);
    }
}
