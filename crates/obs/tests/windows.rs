//! Rolling-window accuracy and rotation contracts: the log2-bucketed
//! quantile estimate stays within its guaranteed factor-of-2 band of
//! the exact sample quantile across qualitatively different latency
//! shapes (uniform, lognormal, bimodal), and slot rotation handles the
//! awkward clocks — stalls, idle gaps, cold slots — without losing or
//! resurrecting data.

use gpssn_obs::{RollingWindow, ServeClass, SloConfig, SloMonitor, WindowConfig};
use std::time::Duration;

/// SplitMix64: deterministic samples, no external RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)`.
fn uniform01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal via Box–Muller.
fn normal(state: &mut u64) -> f64 {
    let u1 = uniform01(state).max(f64::MIN_POSITIVE);
    let u2 = uniform01(state);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The exact empirical quantile matching `WindowHistogram::quantile`'s
/// rank convention: the `ceil(q·n)`-th smallest sample.
fn exact_quantile(sorted: &[u64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
    sorted[rank - 1] as f64
}

/// Feeds `samples` into one window (all inside the live span) and
/// asserts every checked quantile lands within the log2 bucket bound:
/// `[exact / 2, exact * 2]` (the estimate interpolates inside a bucket
/// spanning `[2^(k-1), 2^k - 1]`).
fn assert_quantiles_bounded(samples: &[u64], what: &str) {
    let cfg = WindowConfig::default();
    let mut w = RollingWindow::new(&cfg);
    // Spread records across the whole live window so the snapshot
    // exercises a real multi-slot merge, not one hot slot.
    let slot_ns = cfg.slot.as_nanos() as u64;
    let span = slot_ns * cfg.slots as u64;
    let step = span / samples.len() as u64;
    for (i, &v) in samples.iter().enumerate() {
        w.record(i as u64 * step, v);
    }
    let snap = w.snapshot(span - 1);
    assert_eq!(snap.count, samples.len() as u64, "{what}: lost samples");

    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for q in [0.5, 0.9, 0.95, 0.99] {
        let exact = exact_quantile(&sorted, q);
        let est = w.snapshot(span - 1).quantile(q);
        assert!(
            est >= exact / 2.0 && est <= exact * 2.0,
            "{what}: p{} estimate {est:.1} outside [{:.1}, {:.1}] (exact {exact:.1})",
            q * 100.0,
            exact / 2.0,
            exact * 2.0
        );
    }
    // The mean is exact (tracked as a sum, not bucketed).
    let true_mean = samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64;
    let got_mean = snap.mean();
    assert!(
        (got_mean - true_mean).abs() < 1e-6,
        "{what}: mean {got_mean} != {true_mean}"
    );
}

#[test]
fn quantiles_bounded_on_uniform_latencies() {
    let mut rng = 0x5eed_0001u64;
    // Uniform 1–50 ms, in nanoseconds.
    let samples: Vec<u64> = (0..4000)
        .map(|_| 1_000_000 + (uniform01(&mut rng) * 49_000_000.0) as u64)
        .collect();
    assert_quantiles_bounded(&samples, "uniform");
}

#[test]
fn quantiles_bounded_on_lognormal_latencies() {
    let mut rng = 0x5eed_0002u64;
    // ln N(ln 8ms, 0.7²): a realistic right-skewed service latency.
    let mu = (8_000_000f64).ln();
    let samples: Vec<u64> = (0..4000)
        .map(|_| (mu + 0.7 * normal(&mut rng)).exp().max(1.0) as u64)
        .collect();
    assert_quantiles_bounded(&samples, "lognormal");
}

#[test]
fn quantiles_bounded_on_bimodal_latencies() {
    let mut rng = 0x5eed_0003u64;
    // 85% cache hits near 2 ms, 15% misses near 80 ms — the split the
    // paper's pruning-vs-refinement cost induces.
    let samples: Vec<u64> = (0..4000)
        .map(|_| {
            if uniform01(&mut rng) < 0.85 {
                1_500_000 + (uniform01(&mut rng) * 1_000_000.0) as u64
            } else {
                70_000_000 + (uniform01(&mut rng) * 20_000_000.0) as u64
            }
        })
        .collect();
    assert_quantiles_bounded(&samples, "bimodal");
}

/// A stalled clock (every record at the same instant) keeps absorbing
/// into one slot: nothing is lost, nothing ages out.
#[test]
fn clock_stall_absorbs_into_one_slot() {
    let mut w = RollingWindow::new(&WindowConfig::default());
    for i in 0..100u64 {
        w.record(5_000_000_000, i + 1);
    }
    let snap = w.snapshot(5_000_000_000);
    assert_eq!(snap.count, 100);
    // Still fully visible a whole window later minus one slot.
    assert_eq!(w.snapshot(55_000_000_000).count, 100);
    // Gone once the window slides past.
    assert_eq!(w.snapshot(65_000_000_000).count, 0);
}

/// Traffic with idle gaps: empty slots contribute nothing, cold
/// (never-written) slots contribute nothing, and old tenancies are
/// evicted exactly when the window slides past them — not resurrected
/// by later snapshots.
#[test]
fn idle_gaps_and_cold_slots_merge_to_the_live_window_only() {
    let cfg = WindowConfig {
        slot: Duration::from_secs(1),
        slots: 4,
    };
    let s = 1_000_000_000u64; // one slot in ns
    let mut w = RollingWindow::new(&cfg);
    w.record(0, 10); // slot 0
    w.record(2 * s, 20); // slot 2; slots 1 and 3 never written
    assert_eq!(w.snapshot(2 * s).count, 2, "gap slots must not drop data");
    // Window [1,4]: slot 0 aged out.
    assert_eq!(w.snapshot(4 * s).count, 1);
    // New tenancy for ring position 0 (slot index 4) while position 2
    // still holds live data.
    w.record(4 * s, 30);
    assert_eq!(w.snapshot(4 * s).count, 2);
    // Far-future snapshot: everything aged out, nothing resurrected.
    assert_eq!(w.snapshot(40 * s).count, 0);
    // Recording again after the long idle resets the stale tenancy
    // rather than merging 40-slot-old data.
    w.record(40 * s, 40);
    let snap = w.snapshot(40 * s);
    assert_eq!(snap.count, 1);
    assert_eq!(snap.sum, 40);
}

/// The same rotation contract at the SloMonitor level: counts observed
/// through a stall-then-jump clock sequence match what the window rule
/// says should still be visible.
#[test]
fn slo_windows_rotate_with_the_clock() {
    let mon = SloMonitor::new(
        &WindowConfig {
            slot: Duration::from_secs(1),
            slots: 3,
        },
        SloConfig {
            objective_latency: Duration::from_millis(100),
            target_fraction: 0.9,
        },
    );
    let s = 1_000_000_000u64;
    for _ in 0..10 {
        mon.record(0, 1_000_000, 0, ServeClass::Ok); // stalled clock
    }
    mon.record(2 * s, 1_000_000, 0, ServeClass::Error);
    let snap = mon.snapshot(2 * s);
    assert_eq!(snap.total, 11);
    assert_eq!(snap.errors, 1);
    // Slide one slot: the stalled batch (slot 0) ages out of a 3-slot
    // window ending in slot 3; the error (slot 2) survives.
    let snap = mon.snapshot(3 * s);
    assert_eq!(snap.total, 1);
    assert_eq!(snap.errors, 1);
    assert_eq!(snap.error_rate, 1.0);
    // Idle long enough and the window reads empty — attainment reports
    // a vacuous 1.0, burn rate 0, rather than NaN.
    let snap = mon.snapshot(30 * s);
    assert_eq!(snap.total, 0);
    assert_eq!(snap.attainment, 1.0);
    assert_eq!(snap.burn_rate, 0.0);
}
