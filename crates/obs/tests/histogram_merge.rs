//! Property test: merging per-thread histograms is lossless — the merge
//! of histograms built from disjoint sample shards equals the histogram
//! of the concatenated samples, bucket by bucket, for counts and sums.

use gpssn_obs::{bucket_index, bucket_upper_bound, Histogram, HIST_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_equals_concatenation(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000_000_000, 0..40),
            1..6,
        )
    ) {
        // Per-shard histograms, merged left to right into the first.
        let parts: Vec<Histogram> = shards
            .iter()
            .map(|samples| {
                let h = Histogram::new();
                for &v in samples {
                    h.observe(v);
                }
                h
            })
            .collect();
        let merged = Histogram::new();
        for part in &parts {
            merged.merge_from(part);
        }

        // Oracle: one histogram over all samples in one pass.
        let whole = Histogram::new();
        for samples in &shards {
            for &v in samples {
                whole.observe(v);
            }
        }

        let merged = merged.snapshot();
        let whole = whole.snapshot();
        prop_assert_eq!(&merged.buckets, &whole.buckets);
        prop_assert_eq!(merged.count, whole.count);
        prop_assert_eq!(merged.sum, whole.sum);

        // Internal consistency: bucket counts add up to the total count
        // and every sample landed in a bucket covering it.
        prop_assert_eq!(merged.buckets.iter().sum::<u64>(), merged.count);
        for samples in &shards {
            for &v in samples {
                let i = bucket_index(v);
                prop_assert!(i < HIST_BUCKETS);
                prop_assert!(v <= bucket_upper_bound(i));
                prop_assert!(merged.buckets[i] > 0);
            }
        }
    }
}
