//! Flight recorder: an always-on, lock-light ring of the last N
//! completed serve requests — the "what did the last slow query do?"
//! forensic buffer.
//!
//! Each record is one finished (or shed) request: outcome class,
//! degradation rung, backend, end-to-end and queue-wait nanoseconds,
//! the Fig-7 pruning counters, and the per-phase wall-clock breakdown
//! recovered from the query's span capture. Records land in one of a
//! small set of mutex-sharded rings picked round-robin by record id,
//! so concurrent workers rarely contend on the same lock; a dump sorts
//! the shards back into completion order.
//!
//! The recorder is deliberately cheap enough to leave enabled in the
//! "observability off" configuration: one short-lived lock and one
//! `VecDeque` push per request. The `obs_report` overhead rows keep
//! that claim honest.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::escape;

/// How many completed-request records the recorder retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Total records retained across all shards (oldest evicted).
    pub capacity: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig { capacity: 256 }
    }
}

/// The paper's Fig-7 pruning-power counters, copied per request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightCounters {
    pub users_total: u64,
    pub users_pruned_index: u64,
    pub users_pruned_object: u64,
    pub pois_total: u64,
    pub pois_pruned_index: u64,
    pub pois_pruned_object: u64,
    pub candidate_users: u64,
    pub candidate_pois: u64,
    pub pairs_refined: u64,
}

/// One completed (or shed) request, as retained by the recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Monotonic record id (assignment order, not completion order).
    pub id: u64,
    /// Serve sequence number of the request.
    pub seq: u64,
    /// Outcome class label (`ok` / `error` / `shed` / `degraded`).
    pub class: &'static str,
    /// Degradation rung (`exact` / `truncated` / `sampling` / `failed`),
    /// empty for requests that never reached the engine.
    pub completion: &'static str,
    /// Machine-readable error code for failures, empty otherwise.
    pub code: &'static str,
    /// Distance backend that served it, empty if none did.
    pub backend: &'static str,
    /// Completion time, nanoseconds since the recorder's epoch.
    pub end_ns: u64,
    /// End-to-end latency (submission to completion).
    pub total_ns: u64,
    /// Time spent queued before dispatch.
    pub queue_wait_ns: u64,
    /// Pages touched by the I/O-cost model.
    pub io_pages: u64,
    /// Priority-queue pops across search phases.
    pub heap_pops: u64,
    /// Dijkstra + CH settles.
    pub settles: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Fig-7 pruning counters.
    pub counters: FlightCounters,
    /// Per-phase wall-clock breakdown `(phase, ns)`, top-level spans of
    /// the query's capture in execution order. Empty when tracing was
    /// off or the request never ran.
    pub phases: Vec<(&'static str, u64)>,
    /// Whether the tail sampler committed this request's trace.
    pub trace_committed: bool,
}

struct Ring {
    buf: VecDeque<FlightRecord>,
    cap: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, rec: FlightRecord) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }
}

const SHARDS: usize = 8;

/// The always-on ring of recent request records. Shared behind `Arc`
/// by serve workers and the telemetry endpoint.
pub struct FlightRecorder {
    shards: Vec<Mutex<Ring>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("len", &self.len())
            .finish()
    }
}

impl FlightRecorder {
    pub fn new(cfg: &FlightConfig) -> Self {
        // Spread the capacity across shards, rounding up so the total
        // retained is at least the configured capacity.
        let per = cfg.capacity.div_ceil(SHARDS);
        FlightRecorder {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Ring {
                        buf: VecDeque::with_capacity(per),
                        cap: per,
                        dropped: 0,
                    })
                })
                .collect(),
            next_id: AtomicU64::new(0),
        }
    }

    fn lock(&self, i: usize) -> std::sync::MutexGuard<'_, Ring> {
        self.shards[i].lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records one finished request. `rec.id` is overwritten with the
    /// next monotonic id, which also picks the shard — consecutive
    /// completions land on different locks, and every shard fills
    /// regardless of how many threads record.
    pub fn record(&self, mut rec: FlightRecord) {
        rec.id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.lock(rec.id as usize % SHARDS).push(rec);
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        (0..SHARDS).map(|i| self.lock(i).buf.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted (or rejected by a zero-capacity ring) so far.
    pub fn dropped(&self) -> u64 {
        (0..SHARDS).map(|i| self.lock(i).dropped).sum()
    }

    /// All retained records, sorted by completion time then sequence —
    /// a stable total order independent of shard interleaving.
    pub fn records(&self) -> Vec<FlightRecord> {
        let mut out: Vec<FlightRecord> = (0..SHARDS)
            .flat_map(|i| self.lock(i).buf.iter().cloned().collect::<Vec<_>>())
            .collect();
        out.sort_by_key(|r| (r.end_ns, r.seq, r.id));
        out
    }

    /// One JSON line: `{"records":[...],"dropped":N}` (no trailing
    /// newline), parseable by [`crate::json::parse`].
    pub fn to_json(&self) -> String {
        let recs = self.records();
        let mut out = String::with_capacity(128 + recs.len() * 256);
        out.push_str("{\"records\":[");
        for (i, r) in recs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"seq\":{},\"class\":\"{}\",\"completion\":\"{}\",\
                 \"code\":\"{}\",\"backend\":\"{}\",\"end_ns\":{},\"total_ns\":{},\
                 \"queue_wait_ns\":{},\"io_pages\":{},\"heap_pops\":{},\"settles\":{},\
                 \"cache_hits\":{},\"cache_misses\":{},\"trace_committed\":{},",
                r.id,
                r.seq,
                escape(r.class),
                escape(r.completion),
                escape(r.code),
                escape(r.backend),
                r.end_ns,
                r.total_ns,
                r.queue_wait_ns,
                r.io_pages,
                r.heap_pops,
                r.settles,
                r.cache_hits,
                r.cache_misses,
                r.trace_committed,
            ));
            let c = &r.counters;
            out.push_str(&format!(
                "\"pruning\":{{\"users_total\":{},\"users_pruned_index\":{},\
                 \"users_pruned_object\":{},\"pois_total\":{},\"pois_pruned_index\":{},\
                 \"pois_pruned_object\":{},\"candidate_users\":{},\"candidate_pois\":{},\
                 \"pairs_refined\":{}}},",
                c.users_total,
                c.users_pruned_index,
                c.users_pruned_object,
                c.pois_total,
                c.pois_pruned_index,
                c.pois_pruned_object,
                c.candidate_users,
                c.candidate_pois,
                c.pairs_refined,
            ));
            out.push_str("\"phases\":{");
            for (j, (name, ns)) in r.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", escape(name), ns));
            }
            out.push_str("}}");
        }
        out.push_str(&format!("],\"dropped\":{}}}", self.dropped()));
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(&FlightConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, end_ns: u64) -> FlightRecord {
        FlightRecord {
            id: 0,
            seq,
            class: "ok",
            completion: "exact",
            code: "",
            backend: "ch",
            end_ns,
            total_ns: 1000,
            queue_wait_ns: 10,
            io_pages: 3,
            heap_pops: 40,
            settles: 7,
            cache_hits: 1,
            cache_misses: 2,
            counters: FlightCounters {
                users_total: 100,
                users_pruned_index: 60,
                ..FlightCounters::default()
            },
            phases: vec![("filter", 400), ("refine", 600)],
            trace_committed: false,
        }
    }

    #[test]
    fn retains_and_orders_records() {
        let fr = FlightRecorder::new(&FlightConfig { capacity: 16 });
        for i in 0..10 {
            fr.record(rec(i, 1000 - i * 10));
        }
        assert_eq!(fr.len(), 10);
        let recs = fr.records();
        // Sorted by end_ns: the last-recorded (smallest end_ns) first.
        assert_eq!(recs[0].seq, 9);
        assert_eq!(recs[9].seq, 0);
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let fr = FlightRecorder::new(&FlightConfig { capacity: 8 });
        for i in 0..100 {
            fr.record(rec(i, i));
        }
        // 8 shards of cap 1: each keeps the newest of its residue
        // class, i.e. the last 8 records overall.
        assert_eq!(fr.len(), 8);
        assert_eq!(fr.dropped(), 92);
        let seqs: Vec<u64> = fr.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (92..100).collect::<Vec<u64>>());
    }

    #[test]
    fn json_dump_parses() {
        let fr = FlightRecorder::new(&FlightConfig { capacity: 64 });
        fr.record(rec(0, 5));
        fr.record(rec(1, 6));
        let v = crate::json::parse(&fr.to_json()).expect("flight json parses");
        let recs = v.get("records").and_then(|r| r.as_array()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].get("class").and_then(|c| c.as_str()), Some("ok"));
        assert_eq!(
            recs[0]
                .get("pruning")
                .and_then(|p| p.get("users_total"))
                .and_then(|n| n.as_f64()),
            Some(100.0)
        );
        assert_eq!(
            recs[0]
                .get("phases")
                .and_then(|p| p.get("refine"))
                .and_then(|n| n.as_f64()),
            Some(600.0)
        );
        assert_eq!(v.get("dropped").and_then(|d| d.as_f64()), Some(0.0));
    }

    #[test]
    fn concurrent_recording_keeps_every_shard_consistent() {
        let fr = std::sync::Arc::new(FlightRecorder::new(&FlightConfig { capacity: 1024 }));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let fr = std::sync::Arc::clone(&fr);
                s.spawn(move || {
                    for i in 0..50 {
                        fr.record(rec(t * 100 + i, t * 100 + i));
                    }
                });
            }
        });
        assert_eq!(fr.len(), 200);
        assert_eq!(fr.dropped(), 0);
        let ids: Vec<u64> = fr.records().iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 200, "ids must be unique");
    }
}
