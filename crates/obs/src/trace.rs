//! Span tracing: RAII guards, mutex-sharded ring-buffer sink, and two
//! renderers (text flamegraph, Chrome `trace_event` JSON).
//!
//! Design constraints, in order:
//! 1. *Disabled must be free.* [`Tracer::span`] starts with one relaxed
//!    atomic load; when tracing is off it returns an inert guard whose
//!    `Drop` does nothing.
//! 2. *No allocation on the hot path.* Span names are `&'static str`;
//!    a finished span is one fixed-size record pushed into a bounded
//!    ring (oldest records overwritten, never a reallocation storm).
//! 3. *Cross-thread parentage.* Within a thread, parent ids come from a
//!    thread-local current-span cell, so nesting is implicit. Worker
//!    threads (parallel center refinement) receive the parent id
//!    explicitly via [`Tracer::span_with_parent`].
//!
//! Records land in the ring when the span *ends*, so children precede
//! their parents in the buffer; renderers sort by start time and treat
//! records whose parent was evicted from the ring as roots.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One finished span. Timestamps are nanoseconds since the tracer's
/// epoch (construction time), monotonic by construction ([`Instant`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id, > 0 (0 is "no span" / "no parent").
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root.
    pub parent: u64,
    /// Static phase name (`"query"`, `"refine"`, `"ch_p2p"`, ...).
    pub name: &'static str,
    /// Small dense thread label (1, 2, ...) assigned per thread on first
    /// use — *not* the OS thread id.
    pub tid: u64,
    /// Start offset from the tracer epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

#[derive(Debug)]
struct Ring {
    buf: VecDeque<SpanRecord>,
    cap: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, rec: SpanRecord) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }
}

const SHARDS: usize = 8;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Dense per-thread label for trace rendering.
    static TRACE_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Innermost live span on this thread (0 = none).
    static CURRENT_SPAN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    /// Active per-query capture buffer on this thread, if any. While
    /// set, finished spans land here instead of the tracer's rings —
    /// the tail sampler later commits or discards the whole buffer.
    static CAPTURE: std::cell::RefCell<Option<Arc<CaptureInner>>> =
        const { std::cell::RefCell::new(None) };
}

/// Shared buffer behind one in-flight query's capture: the query
/// thread and any adopted workers push finished spans here.
#[derive(Debug, Default)]
struct CaptureInner {
    spans: Mutex<Vec<SpanRecord>>,
}

impl CaptureInner {
    fn push(&self, rec: SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(rec);
    }
}

/// Cloneable, `Send` reference to an active capture — hand it to worker
/// threads so their spans join the query's buffer (see
/// [`adopt_capture`]).
#[derive(Debug, Clone)]
pub struct CaptureHandle(Arc<CaptureInner>);

/// The capture handle active on this thread, if any. Capture it on the
/// query thread *before* spawning workers.
pub fn capture_handle() -> Option<CaptureHandle> {
    CAPTURE.with(|c| c.borrow().as_ref().map(|a| CaptureHandle(Arc::clone(a))))
}

/// Routes this thread's finished spans into `handle`'s buffer until the
/// returned guard drops (restoring whatever capture was active before).
/// Worker threads adopt the spawning query's capture with this.
pub fn adopt_capture(handle: &CaptureHandle) -> CaptureAdoptGuard {
    let prev = CAPTURE.with(|c| c.borrow_mut().replace(Arc::clone(&handle.0)));
    CaptureAdoptGuard { prev }
}

/// RAII guard from [`adopt_capture`].
#[must_use = "dropping the guard immediately ends the adoption"]
pub struct CaptureAdoptGuard {
    prev: Option<Arc<CaptureInner>>,
}

impl Drop for CaptureAdoptGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CAPTURE.with(|c| *c.borrow_mut() = prev);
    }
}

/// An in-flight per-query span buffer started by
/// [`Tracer::begin_capture`]. While alive, every span finished on this
/// thread (and on threads that [`adopt_capture`] its handle) collects
/// here instead of the tracer's rings. Consume with
/// [`TraceCapture::commit`] to publish the buffered spans to the sink,
/// or just drop it to discard them — the tail-sampling primitive.
#[must_use = "an unbound capture buffers nothing; commit or drop it explicitly"]
pub struct TraceCapture {
    inner: Arc<CaptureInner>,
    prev: Option<Arc<CaptureInner>>,
}

impl std::fmt::Debug for TraceCapture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCapture").finish()
    }
}

impl TraceCapture {
    /// A cloneable handle for worker threads.
    pub fn handle(&self) -> CaptureHandle {
        CaptureHandle(Arc::clone(&self.inner))
    }

    /// Snapshot of the spans buffered so far, sorted by `(start_ns,
    /// id)`. Used to derive per-phase breakdowns for flight records
    /// without committing the trace.
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut out = self
            .inner
            .spans
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        out.sort_by_key(|r| (r.start_ns, r.id));
        out
    }

    /// Publishes the buffered spans to `tracer`'s rings and ends the
    /// capture. Returns how many spans were committed.
    pub fn commit(self, tracer: &Tracer) -> usize {
        let spans =
            std::mem::take(&mut *self.inner.spans.lock().unwrap_or_else(|p| p.into_inner()));
        let n = spans.len();
        tracer.push_records(spans);
        n
    }

    /// Ends the capture, dropping the buffered spans. Equivalent to
    /// letting it fall out of scope; named for call-site clarity.
    pub fn discard(self) {}
}

impl Drop for TraceCapture {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CAPTURE.with(|c| *c.borrow_mut() = prev);
    }
}

/// The span sink. Cheap to share behind `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    shards: Vec<Mutex<Ring>>,
}

impl Tracer {
    /// A tracer holding at most `capacity` finished spans (rounded up to
    /// a multiple of the shard count); older spans are evicted FIFO.
    pub fn new(enabled: bool, capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        Tracer {
            enabled: AtomicBool::new(enabled),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Ring {
                        buf: VecDeque::with_capacity(per_shard),
                        cap: per_shard,
                        dropped: 0,
                    })
                })
                .collect(),
        }
    }

    /// Whether spans are currently recorded. One relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Opens a span whose parent is the innermost live span on this
    /// thread. Returns an inert guard when tracing is disabled.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        if !self.is_enabled() {
            return Span::inert();
        }
        let parent = CURRENT_SPAN.with(|c| c.get());
        self.open(name, parent)
    }

    /// Opens a span under an explicit parent id — for worker threads
    /// that inherit a phase started on another thread. The span still
    /// becomes the thread-local current span, so nested [`Tracer::span`]
    /// calls on the worker chain under it.
    #[inline]
    pub fn span_with_parent(&self, name: &'static str, parent: u64) -> Span<'_> {
        if !self.is_enabled() {
            return Span::inert();
        }
        self.open(name, parent)
    }

    fn open(&self, name: &'static str, parent: u64) -> Span<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT_SPAN.with(|c| c.replace(id));
        Span {
            tracer: Some(self),
            id,
            parent,
            name,
            prev,
            start: Instant::now(),
        }
    }

    /// Starts buffering this thread's spans into a fresh capture (see
    /// [`TraceCapture`]). Returns `None` when tracing is disabled — no
    /// spans would be produced, so there is nothing to buffer.
    pub fn begin_capture(&self) -> Option<TraceCapture> {
        if !self.is_enabled() {
            return None;
        }
        let inner = Arc::new(CaptureInner::default());
        let prev = CAPTURE.with(|c| c.borrow_mut().replace(Arc::clone(&inner)));
        Some(TraceCapture { inner, prev })
    }

    /// Pushes already-finished records into the rings — the commit half
    /// of tail sampling. Records are sharded by their recorded `tid`,
    /// same as the live path.
    pub fn push_records(&self, records: Vec<SpanRecord>) {
        for rec in records {
            let shard = (rec.tid as usize) % SHARDS;
            let mut ring = match self.shards[shard].lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            ring.push(rec);
        }
    }

    fn record(&self, span: &Span<'_>) {
        let start_ns = span
            .start
            .saturating_duration_since(self.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let dur_ns = span.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let rec = SpanRecord {
            id: span.id,
            parent: span.parent,
            name: span.name,
            tid: TRACE_TID.with(|t| *t),
            start_ns,
            dur_ns,
        };
        // An active capture on this thread intercepts the record; it
        // reaches the rings only if the capture is later committed.
        let captured = CAPTURE.with(|c| match c.borrow().as_ref() {
            Some(cap) => {
                cap.push(rec.clone());
                true
            }
            None => false,
        });
        if captured {
            return;
        }
        let shard = (rec.tid as usize) % SHARDS;
        let mut ring = match self.shards[shard].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        ring.push(rec);
    }

    /// All recorded spans, sorted by `(start_ns, id)` so renders are
    /// stable. Non-destructive.
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let ring = match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            out.extend(ring.buf.iter().cloned());
        }
        out.sort_by_key(|r| (r.start_ns, r.id));
        out
    }

    /// Spans evicted from the ring because the capacity was exceeded.
    pub fn dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(g) => g.dropped,
                Err(poisoned) => poisoned.into_inner().dropped,
            })
            .sum()
    }

    /// Discard all recorded spans (keeps the epoch and id counter).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut ring = match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            ring.buf.clear();
            ring.dropped = 0;
        }
    }
}

/// RAII span guard: records itself (and restores the thread's previous
/// current span) on drop. An inert guard does neither.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span<'a> {
    tracer: Option<&'a Tracer>,
    id: u64,
    parent: u64,
    name: &'static str,
    prev: u64,
    start: Instant,
}

impl Span<'_> {
    fn inert() -> Self {
        Span {
            tracer: None,
            id: 0,
            parent: 0,
            name: "",
            prev: 0,
            start: Instant::now(),
        }
    }

    /// This span's id (0 for an inert guard) — pass to
    /// [`Tracer::span_with_parent`] on worker threads.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer {
            CURRENT_SPAN.with(|c| c.set(self.prev));
            tracer.record(self);
        }
    }
}

/// Renders spans as Chrome `trace_event` JSON (the object form,
/// `{"traceEvents": [...]}`), loadable in `chrome://tracing` and
/// Perfetto. Each span becomes one complete (`"ph":"X"`) event with
/// microsecond `ts`/`dur`; span and parent ids ride along in `args`.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Names are static identifiers chosen by us, but escape anyway
        // so the output is valid JSON for any future name.
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"gpssn\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
            crate::json::escape(r.name),
            format_us(r.start_ns),
            format_us(r.dur_ns),
            r.tid,
            r.id,
            r.parent
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Nanoseconds rendered as decimal microseconds ("12.345").
fn format_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders spans as an indented text flamegraph. Siblings with the same
/// name are aggregated (`verify_center x152`) so wide fan-outs stay
/// readable; durations are summed per aggregate.
pub fn text_flamegraph(records: &[SpanRecord]) -> String {
    use std::collections::{BTreeMap, HashMap, HashSet};
    let ids: HashSet<u64> = records.iter().map(|r| r.id).collect();
    let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for r in records {
        if r.parent != 0 && ids.contains(&r.parent) {
            children.entry(r.parent).or_default().push(r);
        } else {
            roots.push(r);
        }
    }
    let mut out = String::new();
    // Aggregate a sibling set by name, preserving first-start order.
    fn render(
        out: &mut String,
        depth: usize,
        siblings: &[&SpanRecord],
        children: &std::collections::HashMap<u64, Vec<&SpanRecord>>,
    ) {
        let mut by_name: BTreeMap<&'static str, (u64, u64, Vec<u64>)> = BTreeMap::new();
        let mut order: Vec<&'static str> = Vec::new();
        for r in siblings {
            let e = by_name.entry(r.name).or_insert_with(|| {
                order.push(r.name);
                (0, 0, Vec::new())
            });
            e.0 += 1;
            e.1 += r.dur_ns;
            e.2.push(r.id);
        }
        for name in order {
            let (count, total_ns, ids) = &by_name[name];
            out.push_str(&"  ".repeat(depth));
            if *count == 1 {
                out.push_str(&format!("{name} {:.3}ms\n", *total_ns as f64 / 1e6));
            } else {
                out.push_str(&format!(
                    "{name} x{count} {:.3}ms total\n",
                    *total_ns as f64 / 1e6
                ));
            }
            let mut grand: Vec<&SpanRecord> = Vec::new();
            for id in ids {
                if let Some(kids) = children.get(id) {
                    grand.extend(kids.iter().copied());
                }
            }
            if !grand.is_empty() {
                grand.sort_by_key(|r| (r.start_ns, r.id));
                render(out, depth + 1, &grand, children);
            }
        }
    }
    render(&mut out, 0, &roots, &children);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(false, 16);
        {
            let _a = t.span("query");
            let _b = t.span("refine");
        }
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn nesting_links_parents_within_a_thread() {
        let t = Tracer::new(true, 64);
        let (qid, rid);
        {
            let q = t.span("query");
            qid = q.id();
            {
                let r = t.span("refine");
                rid = r.id();
                let _v = t.span("verify_center");
            }
            let _p = t.span("prune_road");
        }
        let recs = t.records();
        assert_eq!(recs.len(), 4);
        let by_name = |n: &str| recs.iter().find(|r| r.name == n).unwrap();
        assert_eq!(by_name("query").parent, 0);
        assert_eq!(by_name("refine").parent, qid);
        assert_eq!(by_name("verify_center").parent, rid);
        assert_eq!(by_name("prune_road").parent, qid);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let t = Tracer::new(true, 64);
        let q = t.span("query");
        let qid = q.id();
        std::thread::scope(|s| {
            s.spawn(|| {
                let v = t.span_with_parent("verify_center", qid);
                assert_ne!(v.id(), 0);
                let _b = t.span("ball"); // nests under verify_center
            });
        });
        drop(q);
        let recs = t.records();
        let v = recs.iter().find(|r| r.name == "verify_center").unwrap();
        let b = recs.iter().find(|r| r.name == "ball").unwrap();
        assert_eq!(v.parent, qid);
        assert_eq!(b.parent, v.id);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let t = Tracer::new(true, SHARDS); // one slot per shard
        for _ in 0..4 {
            let _s = t.span("query");
        }
        // All spans land on this thread's shard: capacity 1 keeps only
        // the newest and reports the rest dropped.
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn discarded_capture_leaves_no_trace() {
        let t = Tracer::new(true, 64);
        let cap = t.begin_capture().unwrap();
        {
            let _q = t.span("serve_request");
            let _r = t.span("refine");
        }
        assert_eq!(cap.records().len(), 2);
        cap.discard();
        assert!(t.records().is_empty());
        // After the capture ends, spans go straight to the rings again.
        {
            let _q = t.span("query");
        }
        assert_eq!(t.records().len(), 1);
    }

    #[test]
    fn committed_capture_reaches_the_rings() {
        let t = Tracer::new(true, 64);
        let cap = t.begin_capture().unwrap();
        let qid;
        {
            let q = t.span("serve_request");
            qid = q.id();
            let _r = t.span("refine");
        }
        assert_eq!(cap.commit(&t), 2);
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        let refine = recs.iter().find(|r| r.name == "refine").unwrap();
        assert_eq!(refine.parent, qid);
    }

    #[test]
    fn adopted_workers_feed_the_same_capture() {
        let t = Tracer::new(true, 64);
        let cap = t.begin_capture().unwrap();
        let q = t.span("serve_request");
        let qid = q.id();
        let handle = cap.handle();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _adopt = adopt_capture(&handle);
                let _v = t.span_with_parent("verify_center", qid);
            });
        });
        drop(q);
        let recs = cap.records();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().any(|r| r.name == "verify_center"));
        cap.discard();
        assert!(t.records().is_empty());
    }

    #[test]
    fn disabled_tracer_declines_capture() {
        let t = Tracer::new(false, 16);
        assert!(t.begin_capture().is_none());
    }

    #[test]
    fn nested_captures_restore_the_outer_one() {
        let t = Tracer::new(true, 64);
        let outer = t.begin_capture().unwrap();
        {
            let inner = t.begin_capture().unwrap();
            {
                let _s = t.span("inner_span");
            }
            assert_eq!(inner.records().len(), 1);
            inner.discard();
        }
        {
            let _s = t.span("outer_span");
        }
        let recs = outer.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "outer_span");
        outer.discard();
    }

    #[test]
    fn flamegraph_aggregates_siblings() {
        let t = Tracer::new(true, 64);
        {
            let _q = t.span("query");
            for _ in 0..3 {
                let _v = t.span("verify_center");
            }
        }
        let text = text_flamegraph(&t.records());
        assert!(text.contains("query"), "{text}");
        assert!(text.contains("verify_center x3"), "{text}");
    }
}
