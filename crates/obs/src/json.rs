//! A minimal JSON escape helper and recursive-descent parser — just
//! enough to validate the crate's own emitters (Chrome traces, metric
//! snapshots) without a serde dependency.

use std::collections::BTreeMap;

/// Escapes a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object, if this is an object holding the key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so byte
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\"y"}, "d": null, "e": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "12 34", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let json = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&json).unwrap().as_str(), Some(nasty));
    }
}
