//! Rolling SLO windows: sliding log2-histogram windows over serve
//! latency and queue wait, with quantile estimation, error/shed/
//! degradation rates, and a burn-rate evaluator against an SLO
//! objective.
//!
//! The batch-oriented [`crate::metrics::Registry`] accumulates forever —
//! the right shape for "what happened since startup", the wrong one for
//! "what is p99 *right now*". A [`RollingWindow`] keeps a short ring of
//! time slots (default 6 × 10 s), each holding one fixed-bucket log2
//! histogram; recording rotates slots lazily off the caller's clock and
//! a snapshot merges only the slots still inside the window, so old
//! traffic ages out with no background thread.
//!
//! Time is injected as nanoseconds since an epoch the caller chooses
//! ([`SloMonitor`] uses its construction instant), which keeps every
//! rotation path deterministic under test: clock stalls keep filling the
//! same slot, forward jumps larger than the window expire everything,
//! and slots that saw no traffic simply never match the live id range.
//!
//! Quantiles come from the merged histogram by cumulative rank with
//! linear interpolation inside the landing bucket. Log2 buckets bound
//! the relative error by the bucket width (a factor of 2 worst case,
//! far less for smooth distributions) — the standard trade production
//! latency monitors make.

use crate::metrics::{bucket_index, bucket_upper_bound, Registry, HIST_BUCKETS};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shape of a rolling window: `slots` ring slots of `slot` duration
/// each; the live window covers `slot * slots` trailing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one slot.
    pub slot: Duration,
    /// Number of slots in the ring.
    pub slots: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            slot: Duration::from_secs(10),
            slots: 6,
        }
    }
}

impl WindowConfig {
    fn slot_ns(&self) -> u64 {
        (self.slot.as_nanos().min(u64::MAX as u128) as u64).max(1)
    }
}

/// One ring slot: a log2 histogram stamped with the slot index it holds
/// data for. `id == u64::MAX` marks a slot that has never been written.
#[derive(Debug, Clone)]
struct Slot {
    id: u64,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            id: u64::MAX,
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    fn reset(&mut self, id: u64) {
        self.id = id;
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
    }
}

/// A sliding window of log2 histograms. Not internally synchronized —
/// wrap in a mutex to share (as [`SloMonitor`] does); the lock is held
/// for one bucket increment per record.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    slot_ns: u64,
    slots: Vec<Slot>,
}

impl RollingWindow {
    pub fn new(cfg: &WindowConfig) -> Self {
        RollingWindow {
            slot_ns: cfg.slot_ns(),
            slots: (0..cfg.slots.max(1)).map(|_| Slot::empty()).collect(),
        }
    }

    /// Records one observation at time `now_ns` (nanoseconds since the
    /// caller's epoch). Rotating into a slot whose previous tenancy has
    /// aged out clears it first; a slot already stamped with a *newer*
    /// id (a cross-thread clock race) absorbs the observation without
    /// resetting — a bounded misattribution, never data loss.
    pub fn record(&mut self, now_ns: u64, v: u64) {
        let idx = now_ns / self.slot_ns;
        let len = self.slots.len() as u64;
        let slot = &mut self.slots[(idx % len) as usize];
        if slot.id == u64::MAX || slot.id < idx {
            slot.reset(idx);
        }
        slot.buckets[bucket_index(v)] += 1;
        slot.count += 1;
        slot.sum = slot.sum.wrapping_add(v);
    }

    /// Merges every slot still inside the window ending at `now_ns`.
    /// Slots that never saw traffic, or whose tenancy has aged out,
    /// contribute nothing.
    pub fn snapshot(&self, now_ns: u64) -> WindowHistogram {
        let now_idx = now_ns / self.slot_ns;
        let lo = now_idx.saturating_sub(self.slots.len() as u64 - 1);
        let mut out = WindowHistogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        };
        for slot in &self.slots {
            if slot.id == u64::MAX || slot.id < lo {
                continue;
            }
            for (mine, theirs) in out.buckets.iter_mut().zip(&slot.buckets) {
                *mine += theirs;
            }
            out.count += slot.count;
            out.sum = out.sum.wrapping_add(slot.sum);
        }
        out
    }

    /// The window span in nanoseconds (`slot * slots`).
    pub fn window_ns(&self) -> u64 {
        self.slot_ns.saturating_mul(self.slots.len() as u64)
    }
}

/// The merged histogram of one window snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowHistogram {
    /// Per-bucket counts, [`HIST_BUCKETS`] long.
    pub buckets: Vec<u64>,
    /// Observations inside the window.
    pub count: u64,
    /// Sum of observed values (wrapping, like Prometheus `_sum`).
    pub sum: u64,
}

impl WindowHistogram {
    /// The `q`-quantile (`q` clamped to `[0, 1]`) estimated by
    /// cumulative rank with linear interpolation inside the landing
    /// bucket; `0.0` for an empty window. Bucket `k ≥ 1` spans
    /// `[2^(k-1), 2^k - 1]`, so the estimate is within a factor of 2 of
    /// the true quantile in the worst case and much closer for smooth
    /// value distributions.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let lo = if i == 0 {
                    0.0
                } else {
                    (1u64 << (i - 1)) as f64
                };
                let hi = bucket_upper_bound(i) as f64;
                let frac = (target - cum) as f64 / c as f64;
                return lo + (hi - lo) * frac;
            }
            cum += c;
        }
        bucket_upper_bound(HIST_BUCKETS - 1) as f64
    }

    /// Mean of the window's observations (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Service-level objective: at least `target_fraction` of requests must
/// complete successfully within `objective_latency`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Latency objective per request (submission to response).
    pub objective_latency: Duration,
    /// Fraction of requests that must meet it (e.g. `0.99`).
    pub target_fraction: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            objective_latency: Duration::from_millis(250),
            target_fraction: 0.99,
        }
    }
}

/// Coarse serving-outcome classes tallied per window slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeClass {
    /// The engine produced an exact answer.
    Ok,
    /// The request failed (validation, budget with nothing verified,
    /// internal error, malformed input).
    Error,
    /// Admission control rejected it (queue full or deadline expired
    /// before dispatch).
    Shed,
    /// The engine answered from a degradation rung (truncated anytime
    /// answer or sampling rescue).
    Degraded,
}

impl ServeClass {
    /// Stable label used in JSON dumps and metric labels.
    pub fn label(self) -> &'static str {
        match self {
            ServeClass::Ok => "ok",
            ServeClass::Error => "error",
            ServeClass::Shed => "shed",
            ServeClass::Degraded => "degraded",
        }
    }

    fn index(self) -> usize {
        match self {
            ServeClass::Ok => 0,
            ServeClass::Error => 1,
            ServeClass::Shed => 2,
            ServeClass::Degraded => 3,
        }
    }
}

/// Per-slot class tallies: ok / error / shed / degraded plus latency
/// breaches (requests over the objective, regardless of class).
const TALLY_BREACH: usize = 4;
const TALLY_WIDTH: usize = 5;

#[derive(Debug, Clone)]
struct TallySlot {
    id: u64,
    counts: [u64; TALLY_WIDTH],
}

#[derive(Debug, Clone)]
struct RollingTally {
    slot_ns: u64,
    slots: Vec<TallySlot>,
}

impl RollingTally {
    fn new(cfg: &WindowConfig) -> Self {
        RollingTally {
            slot_ns: cfg.slot_ns(),
            slots: (0..cfg.slots.max(1))
                .map(|_| TallySlot {
                    id: u64::MAX,
                    counts: [0; TALLY_WIDTH],
                })
                .collect(),
        }
    }

    fn record(&mut self, now_ns: u64, class: ServeClass, breach: bool) {
        let idx = now_ns / self.slot_ns;
        let len = self.slots.len() as u64;
        let slot = &mut self.slots[(idx % len) as usize];
        if slot.id == u64::MAX || slot.id < idx {
            slot.id = idx;
            slot.counts = [0; TALLY_WIDTH];
        }
        slot.counts[class.index()] += 1;
        if breach {
            slot.counts[TALLY_BREACH] += 1;
        }
    }

    fn snapshot(&self, now_ns: u64) -> [u64; TALLY_WIDTH] {
        let now_idx = now_ns / self.slot_ns;
        let lo = now_idx.saturating_sub(self.slots.len() as u64 - 1);
        let mut out = [0u64; TALLY_WIDTH];
        for slot in &self.slots {
            if slot.id == u64::MAX || slot.id < lo {
                continue;
            }
            for (o, c) in out.iter_mut().zip(&slot.counts) {
                *o += c;
            }
        }
        out
    }
}

/// What one [`SloMonitor::snapshot`] reports about the trailing window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSnapshot {
    /// Window span in nanoseconds.
    pub window_ns: u64,
    /// Requests observed inside the window.
    pub total: u64,
    /// Per-class counts.
    pub ok: u64,
    pub errors: u64,
    pub shed: u64,
    pub degraded: u64,
    /// Served requests (ok or degraded) whose latency exceeded the
    /// objective; errors and sheds count as misses directly instead.
    pub breaches: u64,
    /// Latency quantile estimates in nanoseconds.
    pub latency_p50_ns: f64,
    pub latency_p95_ns: f64,
    pub latency_p99_ns: f64,
    /// Queue-wait quantile estimates in nanoseconds.
    pub queue_wait_p50_ns: f64,
    pub queue_wait_p95_ns: f64,
    pub queue_wait_p99_ns: f64,
    /// `errors / total` (`0` when empty), and the same for sheds and
    /// degradations.
    pub error_rate: f64,
    pub shed_rate: f64,
    pub degraded_rate: f64,
    /// Fraction of requests meeting the SLO (success within objective).
    pub attainment: f64,
    /// `(1 - attainment) / (1 - target_fraction)`: 1.0 means the error
    /// budget burns exactly at the sustainable rate, above 1.0 it burns
    /// faster. `0` for an empty window.
    pub burn_rate: f64,
    /// The objective this was evaluated against.
    pub objective_ns: u64,
    pub target_fraction: f64,
}

struct SloInner {
    latency: RollingWindow,
    queue_wait: RollingWindow,
    tallies: RollingTally,
}

/// Rolling SLO evaluation over serve latency and queue wait. Clock-in,
/// numbers-out: every method takes `now_ns` relative to
/// [`SloMonitor::epoch`] (use [`SloMonitor::now_ns`] in production,
/// hand-picked values in tests).
pub struct SloMonitor {
    cfg: SloConfig,
    epoch: Instant,
    inner: Mutex<SloInner>,
}

impl std::fmt::Debug for SloMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloMonitor")
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl SloMonitor {
    pub fn new(window: &WindowConfig, slo: SloConfig) -> Self {
        SloMonitor {
            cfg: slo,
            epoch: Instant::now(),
            inner: Mutex::new(SloInner {
                latency: RollingWindow::new(window),
                queue_wait: RollingWindow::new(window),
                tallies: RollingTally::new(window),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SloInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Nanoseconds since this monitor's construction — the production
    /// clock for [`SloMonitor::record`] / [`SloMonitor::snapshot`].
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// The configured objective.
    pub fn config(&self) -> SloConfig {
        self.cfg
    }

    /// Records one finished (or shed) request. A *breach* is a request
    /// that would otherwise have met the SLO (served, possibly
    /// degraded) but finished over the latency objective — errors and
    /// sheds are already SLO misses in their own right, so they are
    /// never double-counted as breaches.
    pub fn record(&self, now_ns: u64, latency_ns: u64, queue_wait_ns: u64, class: ServeClass) {
        let over = latency_ns > self.cfg.objective_latency.as_nanos().min(u64::MAX as u128) as u64;
        let breach = over && matches!(class, ServeClass::Ok | ServeClass::Degraded);
        let mut inner = self.lock();
        inner.latency.record(now_ns, latency_ns);
        inner.queue_wait.record(now_ns, queue_wait_ns);
        inner.tallies.record(now_ns, class, breach);
    }

    /// Evaluates the trailing window ending at `now_ns`.
    pub fn snapshot(&self, now_ns: u64) -> SloSnapshot {
        let objective_ns = self.cfg.objective_latency.as_nanos().min(u64::MAX as u128) as u64;
        let inner = self.lock();
        let lat = inner.latency.snapshot(now_ns);
        let qw = inner.queue_wait.snapshot(now_ns);
        let tally = inner.tallies.snapshot(now_ns);
        let window_ns = inner.latency.window_ns();
        drop(inner);
        let (ok, errors, shed, degraded, breaches) =
            (tally[0], tally[1], tally[2], tally[3], tally[4]);
        let total = ok + errors + shed + degraded;
        let rate = |n: u64| {
            if total == 0 {
                0.0
            } else {
                n as f64 / total as f64
            }
        };
        // A request misses the SLO when it failed outright, was shed,
        // or was served over the objective; the three sets are disjoint
        // by construction (breaches only tally served requests).
        let bad = (errors + shed + breaches).min(total);
        let attainment = if total == 0 {
            1.0
        } else {
            1.0 - bad as f64 / total as f64
        };
        let budget = (1.0 - self.cfg.target_fraction).max(f64::EPSILON);
        let burn_rate = if total == 0 {
            0.0
        } else {
            (1.0 - attainment) / budget
        };
        SloSnapshot {
            window_ns,
            total,
            ok,
            errors,
            shed,
            degraded,
            breaches,
            latency_p50_ns: lat.quantile(0.50),
            latency_p95_ns: lat.quantile(0.95),
            latency_p99_ns: lat.quantile(0.99),
            queue_wait_p50_ns: qw.quantile(0.50),
            queue_wait_p95_ns: qw.quantile(0.95),
            queue_wait_p99_ns: qw.quantile(0.99),
            error_rate: rate(errors),
            shed_rate: rate(shed),
            degraded_rate: rate(degraded),
            attainment,
            burn_rate,
            objective_ns,
            target_fraction: self.cfg.target_fraction,
        }
    }

    /// Renders the current window as one JSON line (no trailing
    /// newline), parseable by [`crate::json::parse`].
    pub fn to_json(&self, now_ns: u64) -> String {
        let s = self.snapshot(now_ns);
        format!(
            "{{\"window_secs\":{:.3},\"total\":{},\"ok\":{},\"errors\":{},\"shed\":{},\
             \"degraded\":{},\"breaches\":{},\
             \"latency_ns\":{{\"p50\":{:.0},\"p95\":{:.0},\"p99\":{:.0}}},\
             \"queue_wait_ns\":{{\"p50\":{:.0},\"p95\":{:.0},\"p99\":{:.0}}},\
             \"error_rate\":{:.6},\"shed_rate\":{:.6},\"degraded_rate\":{:.6},\
             \"attainment\":{:.6},\"burn_rate\":{:.4},\
             \"objective_ms\":{:.3},\"target_fraction\":{}}}",
            s.window_ns as f64 / 1e9,
            s.total,
            s.ok,
            s.errors,
            s.shed,
            s.degraded,
            s.breaches,
            s.latency_p50_ns,
            s.latency_p95_ns,
            s.latency_p99_ns,
            s.queue_wait_p50_ns,
            s.queue_wait_p95_ns,
            s.queue_wait_p99_ns,
            s.error_rate,
            s.shed_rate,
            s.degraded_rate,
            s.attainment,
            s.burn_rate,
            s.objective_ns as f64 / 1e6,
            s.target_fraction,
        )
    }

    /// Publishes the current window as gauges (absolute values — safe to
    /// call repeatedly before every scrape).
    pub fn publish(&self, reg: &Registry, now_ns: u64) {
        let s = self.snapshot(now_ns);
        reg.set_gauge("gpssn_slo_window_total", &[], s.total as f64);
        for (q, v) in [
            ("p50", s.latency_p50_ns),
            ("p95", s.latency_p95_ns),
            ("p99", s.latency_p99_ns),
        ] {
            reg.set_gauge("gpssn_slo_latency_ns", &[("quantile", q)], v);
        }
        for (q, v) in [
            ("p50", s.queue_wait_p50_ns),
            ("p95", s.queue_wait_p95_ns),
            ("p99", s.queue_wait_p99_ns),
        ] {
            reg.set_gauge("gpssn_slo_queue_wait_ns", &[("quantile", q)], v);
        }
        reg.set_gauge("gpssn_slo_error_rate", &[], s.error_rate);
        reg.set_gauge("gpssn_slo_shed_rate", &[], s.shed_rate);
        reg.set_gauge("gpssn_slo_degraded_rate", &[], s.degraded_rate);
        reg.set_gauge("gpssn_slo_attainment", &[], s.attainment);
        reg.set_gauge("gpssn_slo_burn_rate", &[], s.burn_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    fn cfg(slot_secs: u64, slots: usize) -> WindowConfig {
        WindowConfig {
            slot: Duration::from_secs(slot_secs),
            slots,
        }
    }

    #[test]
    fn window_ages_out_old_slots() {
        let mut w = RollingWindow::new(&cfg(10, 6));
        for i in 0..100u64 {
            w.record(0, i);
        }
        assert_eq!(w.snapshot(0).count, 100);
        // Still fully inside the 60s window.
        assert_eq!(w.snapshot(59 * S).count, 100);
        // One nanosecond into slot 6: slot 0 has aged out.
        assert_eq!(w.snapshot(60 * S).count, 0);
    }

    #[test]
    fn clock_stall_accumulates_one_slot() {
        let mut w = RollingWindow::new(&cfg(10, 6));
        for _ in 0..50 {
            w.record(5 * S, 7);
        }
        let snap = w.snapshot(5 * S);
        assert_eq!(snap.count, 50);
        assert_eq!(snap.sum, 350);
    }

    #[test]
    fn forward_jump_expires_everything() {
        let mut w = RollingWindow::new(&cfg(10, 6));
        w.record(0, 1);
        w.record(1000 * S, 2); // jump far past the window
        let snap = w.snapshot(1000 * S);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 2);
    }

    #[test]
    fn quantile_exact_on_single_value() {
        let mut w = RollingWindow::new(&cfg(10, 6));
        for _ in 0..100 {
            w.record(0, 1024);
        }
        let h = w.snapshot(0);
        // All mass in bucket [1024, 2047]: estimates stay in that bucket.
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!((1024.0..=2047.0).contains(&est), "q={q} -> {est}");
        }
    }

    #[test]
    fn empty_window_quantile_is_zero() {
        let w = RollingWindow::new(&cfg(10, 6));
        assert_eq!(w.snapshot(0).quantile(0.99), 0.0);
        assert_eq!(w.snapshot(0).mean(), 0.0);
    }

    #[test]
    fn slo_rates_and_burn() {
        let slo = SloMonitor::new(
            &cfg(10, 6),
            SloConfig {
                objective_latency: Duration::from_millis(100),
                target_fraction: 0.9,
            },
        );
        // 80 fast ok, 10 slow ok (breach), 5 errors, 5 sheds.
        for _ in 0..80 {
            slo.record(0, 10_000_000, 1000, ServeClass::Ok);
        }
        for _ in 0..10 {
            slo.record(0, 500_000_000, 1000, ServeClass::Ok);
        }
        for _ in 0..5 {
            slo.record(0, 1_000_000, 0, ServeClass::Error);
        }
        for _ in 0..5 {
            slo.record(0, 0, 0, ServeClass::Shed);
        }
        let s = slo.snapshot(0);
        assert_eq!(s.total, 100);
        assert_eq!(s.breaches, 10);
        assert!((s.error_rate - 0.05).abs() < 1e-12);
        assert!((s.shed_rate - 0.05).abs() < 1e-12);
        // bad = errors + shed + breaches = 5 + 5 + 10 = 20.
        assert!((s.attainment - 0.8).abs() < 1e-12, "{}", s.attainment);
        // budget is 0.1, burning 0.2 => burn rate 2.
        assert!((s.burn_rate - 2.0).abs() < 1e-9, "{}", s.burn_rate);
    }

    #[test]
    fn slo_json_parses_and_publishes() {
        let slo = SloMonitor::new(&WindowConfig::default(), SloConfig::default());
        slo.record(0, 1_000_000, 500, ServeClass::Ok);
        slo.record(0, 2_000_000, 700, ServeClass::Degraded);
        let json = slo.to_json(0);
        let v = crate::json::parse(&json).expect("slo json parses");
        assert_eq!(v.get("total").and_then(|x| x.as_f64()), Some(2.0));
        let reg = Registry::new();
        slo.publish(&reg, 0);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("gpssn_slo_window_total", &[]), Some(2.0));
        assert!(snap
            .gauge("gpssn_slo_latency_ns", &[("quantile", "p99")])
            .is_some());
        assert_eq!(snap.gauge("gpssn_slo_degraded_rate", &[]), Some(0.5));
    }

    #[test]
    fn empty_monitor_reports_clean_slate() {
        let slo = SloMonitor::new(&WindowConfig::default(), SloConfig::default());
        let s = slo.snapshot(slo.now_ns());
        assert_eq!(s.total, 0);
        assert_eq!(s.attainment, 1.0);
        assert_eq!(s.burn_rate, 0.0);
    }
}
