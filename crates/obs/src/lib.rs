//! `gpssn-obs`: zero-dependency observability for the GP-SSN engine —
//! span tracing ([`trace`]), a metrics registry ([`metrics`]), and a
//! minimal JSON parser ([`json`]) used to validate the emitters.
//!
//! The engine holds an optional `Arc<Obs>`; every instrumentation site
//! is gated so that
//! * no `Obs` attached ⇒ an `Option` check per site,
//! * `Obs` attached but disabled ⇒ one relaxed atomic load per site,
//! * enabled ⇒ spans cost two `Instant::now` calls and one ring push;
//!   metrics are recorded once per query, not per distance.
//!
//! The `obs_overhead` bench (crate `gpssn-bench`) keeps the "disabled"
//! configuration honest.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod tail;
pub mod trace;
pub mod window;

pub use flight::{FlightConfig, FlightCounters, FlightRecord, FlightRecorder};
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricId,
    Registry, Snapshot, HIST_BUCKETS,
};
pub use tail::{TailConfig, TailDecision, TailSampler};
pub use trace::{
    adopt_capture, capture_handle, chrome_trace_json, text_flamegraph, CaptureAdoptGuard,
    CaptureHandle, Span, SpanRecord, TraceCapture, Tracer,
};
pub use window::{
    RollingWindow, ServeClass, SloConfig, SloMonitor, SloSnapshot, WindowConfig, WindowHistogram,
};

use std::cell::RefCell;
use std::sync::Arc;

/// Which telemetry the attached [`Obs`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record per-query counters and phase-duration histograms.
    pub metrics: bool,
    /// Record phase spans (flamegraph / Chrome trace).
    pub tracing: bool,
    /// Span-ring capacity (finished spans retained, oldest evicted).
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            metrics: true,
            tracing: false,
            trace_capacity: 1 << 16,
        }
    }
}

impl ObsConfig {
    /// Everything off — for measuring the instrumentation floor.
    pub fn disabled() -> Self {
        ObsConfig {
            metrics: false,
            tracing: false,
            trace_capacity: 1 << 16,
        }
    }

    /// Metrics and tracing both on.
    pub fn full() -> Self {
        ObsConfig {
            metrics: true,
            tracing: true,
            trace_capacity: 1 << 16,
        }
    }
}

thread_local! {
    /// Per-thread registry override stack (see [`Obs::with_registry`]).
    static LOCAL_REGISTRY: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// One observability domain: a tracer plus a metrics registry, shared
/// behind `Arc` by the engine and its worker threads.
#[derive(Debug)]
pub struct Obs {
    metrics_on: std::sync::atomic::AtomicBool,
    tracer: Tracer,
    registry: Registry,
}

impl Obs {
    pub fn new(cfg: ObsConfig) -> Self {
        Obs {
            metrics_on: std::sync::atomic::AtomicBool::new(cfg.metrics),
            tracer: Tracer::new(cfg.tracing, cfg.trace_capacity),
            registry: Registry::new(),
        }
    }

    /// Metrics-only `Obs` with default capacity.
    pub fn with_metrics() -> Self {
        Obs::new(ObsConfig::default())
    }

    /// Metrics + tracing with default capacity.
    pub fn full() -> Self {
        Obs::new(ObsConfig::full())
    }

    /// Attached-but-dormant `Obs` (the overhead-bench configuration).
    pub fn disabled() -> Self {
        Obs::new(ObsConfig::disabled())
    }

    /// Whether per-query metrics are recorded. One relaxed load.
    #[inline]
    pub fn metrics_on(&self) -> bool {
        self.metrics_on.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether spans are recorded. One relaxed load.
    #[inline]
    pub fn tracing_on(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Whether any telemetry is live.
    #[inline]
    pub fn active(&self) -> bool {
        self.metrics_on() || self.tracing_on()
    }

    pub fn set_metrics(&self, on: bool) {
        self.metrics_on
            .store(on, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn set_tracing(&self, on: bool) {
        self.tracer.set_enabled(on);
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The registry to record into: the innermost [`Obs::with_registry`]
    /// override on this thread, else the base registry.
    pub fn registry(&self) -> RegistryHandle<'_> {
        let local = LOCAL_REGISTRY.with(|s| s.borrow().last().cloned());
        match local {
            Some(reg) => RegistryHandle::Local(reg),
            None => RegistryHandle::Base(&self.registry),
        }
    }

    /// The base (merged) registry, ignoring thread-local overrides.
    pub fn base_registry(&self) -> &Registry {
        &self.registry
    }

    /// Runs `f` with all metric recording on this thread redirected to
    /// `reg`. Batch workers use this so each thread accumulates into a
    /// private registry that the caller then merges in a fixed order —
    /// making batch telemetry deterministic under any interleaving.
    pub fn with_registry<T>(reg: Arc<Registry>, f: impl FnOnce() -> T) -> T {
        LOCAL_REGISTRY.with(|s| s.borrow_mut().push(reg));
        struct Pop;
        impl Drop for Pop {
            fn drop(&mut self) {
                LOCAL_REGISTRY.with(|s| {
                    s.borrow_mut().pop();
                });
            }
        }
        let _pop = Pop;
        f()
    }

    /// Adds `n` to a counter when metrics are on.
    #[inline]
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        if self.metrics_on() {
            self.registry().inc(name, labels, n);
        }
    }

    /// Records a histogram observation when metrics are on.
    #[inline]
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        if self.metrics_on() {
            self.registry().observe(name, labels, v);
        }
    }

    /// Runs `f` under a span named `name` and records its wall-clock
    /// nanoseconds into the `gpssn_phase_duration_ns{phase=name}`
    /// histogram. The canonical way to instrument a query phase.
    #[inline]
    pub fn phase<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        if !self.active() {
            return f();
        }
        let _span = self.tracer.span(name);
        let t0 = std::time::Instant::now();
        let out = f();
        if self.metrics_on() {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.registry()
                .observe("gpssn_phase_duration_ns", &[("phase", name)], ns);
        }
        out
    }
}

/// Either the base registry or a thread-local override; derefs to
/// [`Registry`] either way.
pub enum RegistryHandle<'a> {
    Base(&'a Registry),
    Local(Arc<Registry>),
}

impl std::ops::Deref for RegistryHandle<'_> {
    type Target = Registry;
    fn deref(&self) -> &Registry {
        match self {
            RegistryHandle::Base(r) => r,
            RegistryHandle::Local(r) => r,
        }
    }
}

/// Runs `f` under [`Obs::phase`] when `obs` is attached, else plain.
#[inline]
pub fn phase<T>(obs: Option<&Obs>, name: &'static str, f: impl FnOnce() -> T) -> T {
    match obs {
        Some(o) => o.phase(name, f),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_records_span_and_histogram() {
        let obs = Obs::full();
        let out = obs.phase("refine", || 41 + 1);
        assert_eq!(out, 42);
        let recs = obs.tracer().records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "refine");
        let snap = obs.base_registry().snapshot();
        let h = snap
            .histogram("gpssn_phase_duration_ns", &[("phase", "refine")])
            .expect("phase histogram missing");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn dormant_obs_records_nothing() {
        let obs = Obs::disabled();
        obs.phase("refine", || ());
        obs.inc("gpssn_queries_total", &[], 1);
        obs.observe("gpssn_phase_duration_ns", &[("phase", "x")], 5);
        assert!(obs.tracer().records().is_empty());
        assert_eq!(obs.base_registry().snapshot(), Snapshot::default());
    }

    #[test]
    fn with_registry_redirects_and_merges_deterministically() {
        let obs = Arc::new(Obs::with_metrics());
        let locals: Vec<Arc<Registry>> = (0..4).map(|_| Arc::new(Registry::new())).collect();
        std::thread::scope(|s| {
            for (i, reg) in locals.iter().enumerate() {
                let obs = Arc::clone(&obs);
                let reg = Arc::clone(reg);
                s.spawn(move || {
                    Obs::with_registry(reg, || {
                        obs.inc("gpssn_queries_total", &[], (i + 1) as u64);
                    });
                });
            }
        });
        // Nothing reached the base registry while redirected...
        assert_eq!(
            obs.base_registry()
                .snapshot()
                .counter("gpssn_queries_total", &[]),
            0
        );
        // ...and merging in slot order gives the interleaving-free total.
        for reg in &locals {
            obs.base_registry().merge_from(reg);
        }
        assert_eq!(
            obs.base_registry()
                .snapshot()
                .counter("gpssn_queries_total", &[]),
            1 + 2 + 3 + 4
        );
    }
}
