//! Metrics: atomic counters/gauges, a fixed-bucket log2 histogram
//! mergeable across threads, and a registry with Prometheus text-format
//! and JSON snapshot writers.
//!
//! The registry is a mutexed `BTreeMap` keyed by `(name, sorted
//! labels)`, so iteration — and therefore every exposition — is
//! deterministic. The engine records into it once per query (from the
//! final `QueryMetrics`), keeping the per-distance hot paths free of
//! registry locks.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `k`
/// (1..=64) holds values `v` with `bit_length(v) == k`, i.e.
/// `2^(k-1) <= v < 2^k`.
pub const HIST_BUCKETS: usize = 65;

/// The bucket a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`; `u64::MAX` for the
/// last bucket) — the Prometheus `le` label.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Monotonic counter. Relaxed ordering: totals are read after the work
/// quiesces, never used for synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge storing an `f64` as bits.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    pub fn new() -> Self {
        Default::default()
    }
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket log2 histogram with atomic cells: observe from any
/// thread, merge per-thread instances losslessly (bucket counts, total
/// count, and sum all add).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Default::default()
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds every cell of `other` into `self`.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data image of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, `HIST_BUCKETS` long.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (wrapping add, like Prometheus `_sum`).
    pub sum: u64,
}

impl HistogramSnapshot {
    fn add(&mut self, other: &HistogramSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; HIST_BUCKETS];
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    /// `name{k="v",...}` (bare name when label-free) — the Prometheus
    /// sample identity, also used as the JSON key.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut s = String::new();
        s.push_str(&self.name);
        s.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{k}=\"{}\"", crate::json::escape(v));
        }
        s.push('}');
        s
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<MetricId, u64>,
    gauges: BTreeMap<MetricId, f64>,
    histograms: BTreeMap<MetricId, HistogramSnapshot>,
}

/// Deterministically-iterable metric store. All methods take `&self`;
/// contention is one short mutex per recording call (the engine records
/// once per query, not per distance).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    pub fn new() -> Self {
        Default::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Adds `n` to a counter (creating it at `n`).
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        *self
            .lock()
            .counters
            .entry(MetricId::new(name, labels))
            .or_insert(0) += n;
    }

    /// Sets a counter to an absolute cumulative value — for sources that
    /// already maintain lifetime totals (e.g. `DistanceCache` atomics).
    pub fn set_counter(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.lock().counters.insert(MetricId::new(name, labels), v);
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.lock().gauges.insert(MetricId::new(name, labels), v);
    }

    /// Records one observation into a histogram (creating it empty).
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let mut inner = self.lock();
        let h = inner
            .histograms
            .entry(MetricId::new(name, labels))
            .or_insert_with(|| HistogramSnapshot {
                buckets: vec![0; HIST_BUCKETS],
                count: 0,
                sum: 0,
            });
        h.buckets[bucket_index(v)] += 1;
        h.count += 1;
        h.sum += v;
    }

    /// Folds `other` into `self`: counters and histograms add, gauges
    /// take `other`'s value (last write wins). Merging per-thread
    /// registries in a fixed order therefore yields identical totals
    /// regardless of how threads interleaved.
    pub fn merge_from(&self, other: &Registry) {
        let theirs = other.snapshot();
        let mut inner = self.lock();
        for (id, v) in theirs.counters {
            *inner.counters.entry(id).or_insert(0) += v;
        }
        for (id, v) in theirs.gauges {
            inner.gauges.insert(id, v);
        }
        for (id, h) in theirs.histograms {
            inner.histograms.entry(id).or_default().add(&h);
        }
    }

    /// A consistent plain-data copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }
}

/// Plain-data image of a [`Registry`] with exposition writers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<MetricId, u64>,
    pub gauges: BTreeMap<MetricId, f64>,
    pub histograms: BTreeMap<MetricId, HistogramSnapshot>,
}

impl Snapshot {
    /// A counter's value, 0 when absent.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricId::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// A gauge's value, `None` when absent.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricId::new(name, labels)).copied()
    }

    /// A histogram, `None` when absent.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms.get(&MetricId::new(name, labels))
    }

    /// Prometheus text exposition format. Histograms emit cumulative
    /// `_bucket{le=...}` lines up to the highest non-empty bucket plus
    /// `+Inf`, then `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        fn type_line(out: &mut String, last_typed: &mut String, name: &str, kind: &str) {
            if last_typed != name {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                *last_typed = name.to_string();
            }
        }
        let mut out = String::new();
        let mut last_typed = String::new();
        for (id, v) in &self.counters {
            type_line(&mut out, &mut last_typed, &id.name, "counter");
            let _ = writeln!(out, "{} {v}", id.render());
        }
        last_typed.clear();
        for (id, v) in &self.gauges {
            type_line(&mut out, &mut last_typed, &id.name, "gauge");
            let _ = writeln!(out, "{} {}", id.render(), format_f64(*v));
        }
        last_typed.clear();
        for (id, h) in &self.histograms {
            type_line(&mut out, &mut last_typed, &id.name, "histogram");
            let top = h
                .buckets
                .iter()
                .rposition(|&c| c != 0)
                .map_or(0, |i| i + 1)
                .min(HIST_BUCKETS);
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate().take(top) {
                cum += c;
                let mut labels: Vec<(&str, &str)> = id
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let le = bucket_upper_bound(i).to_string();
                labels.push(("le", &le));
                let bucket_id = MetricId::new(&format!("{}_bucket", id.name), &labels);
                let _ = writeln!(out, "{} {cum}", bucket_id.render());
            }
            let mut labels: Vec<(&str, &str)> = id
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            labels.push(("le", "+Inf"));
            let inf_id = MetricId::new(&format!("{}_bucket", id.name), &labels);
            let _ = writeln!(out, "{} {}", inf_id.render(), h.count);
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                id.name,
                render_labels(&id.labels),
                h.sum
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                id.name,
                render_labels(&id.labels),
                h.count
            );
        }
        out
    }

    /// JSON snapshot: `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}` with rendered metric ids as keys.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (id, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", crate::json::escape(&id.render()));
        }
        out.push_str("},\"gauges\":{");
        for (i, (id, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{}",
                crate::json::escape(&id.render()),
                format_f64(*v)
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (id, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                crate::json::escape(&id.render()),
                h.count,
                h.sum
            );
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("}}\n");
        out
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{}\"", crate::json::escape(v));
    }
    s.push('}');
    s
}

/// `f64` in a form both Prometheus and JSON accept (no bare `NaN`:
/// mapped to 0, which only arises from a caller bug).
fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "0".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every value is <= its bucket's upper bound and > the previous
        // bucket's bound.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn histogram_observe_and_merge() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [0u64, 1, 5, 1000] {
            a.observe(v);
        }
        for v in [2u64, 1_000_000] {
            b.observe(v);
        }
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_008);
        let whole = Histogram::new();
        for v in [0u64, 1, 5, 1000, 2, 1_000_000] {
            whole.observe(v);
        }
        assert_eq!(s, whole.snapshot());
    }

    #[test]
    fn registry_is_deterministic_and_merges() {
        let make = || {
            let r = Registry::new();
            r.inc("gpssn_queries_total", &[("path", "exact")], 2);
            r.inc("gpssn_queries_total", &[("path", "sampled")], 1);
            r.set_gauge("gpssn_cache_entries", &[("shard", "0")], 7.0);
            r.observe("gpssn_phase_ns", &[("phase", "refine")], 900);
            r
        };
        let a = make();
        let b = make();
        assert_eq!(a.snapshot(), b.snapshot());
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.counter("gpssn_queries_total", &[("path", "exact")]), 4);
        assert_eq!(
            s.histogram("gpssn_phase_ns", &[("phase", "refine")])
                .unwrap()
                .count,
            2
        );
        assert_eq!(s.gauge("gpssn_cache_entries", &[("shard", "0")]), Some(7.0));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.inc(
            "gpssn_cache_lookups_total",
            &[("kind", "ball"), ("result", "hit")],
            3,
        );
        r.observe("gpssn_phase_duration_ns", &[("phase", "refine")], 1000);
        r.observe("gpssn_phase_duration_ns", &[("phase", "refine")], 0);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE gpssn_cache_lookups_total counter"));
        assert!(text.contains("gpssn_cache_lookups_total{kind=\"ball\",result=\"hit\"} 3"));
        assert!(text.contains("# TYPE gpssn_phase_duration_ns histogram"));
        // Cumulative buckets: the value 0 lands in le="0" with count 1;
        // +Inf always equals the total count.
        assert!(text.contains("gpssn_phase_duration_ns_bucket{le=\"0\",phase=\"refine\"} 1"));
        assert!(text.contains("gpssn_phase_duration_ns_bucket{le=\"+Inf\",phase=\"refine\"} 2"));
        assert!(text.contains("gpssn_phase_duration_ns_sum{phase=\"refine\"} 1000"));
        assert!(text.contains("gpssn_phase_duration_ns_count{phase=\"refine\"} 2"));
    }

    #[test]
    fn json_snapshot_parses() {
        let r = Registry::new();
        r.inc("a_total", &[], 1);
        r.set_gauge("g", &[("s", "0")], 0.5);
        r.observe("h_ns", &[], 42);
        let json = r.snapshot().to_json();
        crate::json::parse(&json).expect("snapshot JSON must parse");
    }
}
