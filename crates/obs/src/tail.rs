//! Tail-based trace sampling: decide *after* a query finishes whether
//! its buffered span tree is worth keeping.
//!
//! Head sampling (flip a coin at query start) throws away exactly the
//! traces you want — the slow ones, the errors, the degradations —
//! because they are rare by construction. Tail sampling inverts the
//! decision: every query buffers its spans (see
//! [`crate::trace::Tracer::begin_capture`]), and at completion the
//! sampler keeps the trace if the query was *interesting* (errored,
//! shed, degraded) or *slow* (over a configurable latency threshold),
//! and otherwise keeps a deterministic 1-in-N head sample of the
//! boring rest so the sink still sees representative fast traffic.
//!
//! The head sample is counter-based, not random: uninteresting query
//! `n` is kept iff `n ≡ phase (mod head_rate)`, with `phase` derived
//! from the seed by splitmix64. The counter only advances for
//! uninteresting queries, so the number of head-sampled traces is a
//! pure function of how many boring queries completed — independent of
//! thread interleaving — which is what the determinism tests assert.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Tail-sampling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailConfig {
    /// Queries at least this slow keep their trace regardless of
    /// outcome. `None` disables the latency trigger.
    pub latency_threshold: Option<Duration>,
    /// Keep 1-in-N of the uninteresting rest; `0` keeps none.
    pub head_rate: u64,
    /// Seeds the head-sample phase so restarts don't always keep the
    /// same residue class.
    pub seed: u64,
}

impl Default for TailConfig {
    fn default() -> Self {
        TailConfig {
            latency_threshold: Some(Duration::from_millis(100)),
            head_rate: 64,
            seed: 0,
        }
    }
}

/// The sampler's verdict for one completed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailDecision {
    /// Commit the trace; the label says why (`"outcome"`, `"slow"`,
    /// `"head"`).
    Keep(&'static str),
    /// Discard the buffered spans.
    Drop,
}

impl TailDecision {
    pub fn keep(self) -> bool {
        matches!(self, TailDecision::Keep(_))
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Shared tail-sampling state: one atomic counter plus kept/dropped
/// tallies for the overhead report and endpoint gauges.
#[derive(Debug)]
pub struct TailSampler {
    threshold_ns: Option<u64>,
    head_rate: u64,
    phase: u64,
    boring_seq: AtomicU64,
    kept_outcome: AtomicU64,
    kept_slow: AtomicU64,
    kept_head: AtomicU64,
    dropped: AtomicU64,
}

impl TailSampler {
    pub fn new(cfg: &TailConfig) -> Self {
        let phase = if cfg.head_rate > 1 {
            splitmix64(cfg.seed) % cfg.head_rate
        } else {
            0
        };
        TailSampler {
            threshold_ns: cfg
                .latency_threshold
                .map(|d| d.as_nanos().min(u64::MAX as u128) as u64),
            head_rate: cfg.head_rate,
            phase,
            boring_seq: AtomicU64::new(0),
            kept_outcome: AtomicU64::new(0),
            kept_slow: AtomicU64::new(0),
            kept_head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Decides for one completed query. `interesting` means the outcome
    /// alone warrants keeping (error, shed, degradation).
    pub fn decide(&self, latency_ns: u64, interesting: bool) -> TailDecision {
        if interesting {
            self.kept_outcome.fetch_add(1, Ordering::Relaxed);
            return TailDecision::Keep("outcome");
        }
        if let Some(t) = self.threshold_ns {
            if latency_ns >= t {
                self.kept_slow.fetch_add(1, Ordering::Relaxed);
                return TailDecision::Keep("slow");
            }
        }
        // Only boring queries advance the counter, so kept-head counts
        // are deterministic under any worker interleaving.
        let n = self.boring_seq.fetch_add(1, Ordering::Relaxed);
        if self.head_rate > 0 && n % self.head_rate == self.phase {
            self.kept_head.fetch_add(1, Ordering::Relaxed);
            TailDecision::Keep("head")
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            TailDecision::Drop
        }
    }

    /// `(kept_outcome, kept_slow, kept_head, dropped)` so far.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.kept_outcome.load(Ordering::Relaxed),
            self.kept_slow.load(Ordering::Relaxed),
            self.kept_head.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }
}

impl Default for TailSampler {
    fn default() -> Self {
        TailSampler::new(&TailConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interesting_always_kept() {
        let s = TailSampler::new(&TailConfig {
            latency_threshold: None,
            head_rate: 0,
            seed: 7,
        });
        for _ in 0..100 {
            assert_eq!(s.decide(1, true), TailDecision::Keep("outcome"));
        }
        assert_eq!(s.stats(), (100, 0, 0, 0));
    }

    #[test]
    fn slow_always_kept() {
        let s = TailSampler::new(&TailConfig {
            latency_threshold: Some(Duration::from_millis(10)),
            head_rate: 0,
            seed: 0,
        });
        assert_eq!(s.decide(10_000_000, false), TailDecision::Keep("slow"));
        assert_eq!(s.decide(9_999_999, false), TailDecision::Drop);
    }

    #[test]
    fn head_rate_keeps_exactly_one_in_n() {
        let s = TailSampler::new(&TailConfig {
            latency_threshold: None,
            head_rate: 10,
            seed: 42,
        });
        let kept = (0..1000).filter(|_| s.decide(1, false).keep()).count();
        assert_eq!(kept, 100);
        let (_, _, head, dropped) = s.stats();
        assert_eq!(head, 100);
        assert_eq!(dropped, 900);
    }

    #[test]
    fn seed_shifts_the_kept_residue_class() {
        let kept_index = |seed: u64| -> usize {
            let s = TailSampler::new(&TailConfig {
                latency_threshold: None,
                head_rate: 64,
                seed,
            });
            (0..64).position(|_| s.decide(1, false).keep()).unwrap()
        };
        // Distinct seeds land on distinct phases (for these values).
        assert_ne!(kept_index(1), kept_index(2));
    }

    #[test]
    fn boring_counter_ignores_interesting_traffic() {
        let s = TailSampler::new(&TailConfig {
            latency_threshold: None,
            head_rate: 4,
            seed: 0,
        });
        // Interleave interesting queries; the boring 1-in-4 pattern
        // must be unaffected.
        let mut kept_boring = 0;
        for i in 0..40 {
            if i % 2 == 0 {
                assert!(s.decide(1, true).keep());
            } else if s.decide(1, false).keep() {
                kept_boring += 1;
            }
        }
        assert_eq!(kept_boring, 5); // 20 boring queries, 1 in 4 kept
    }
}
