//! `gpssn-failpoint`: zero-dependency deterministic fault injection.
//!
//! A *fail-point* is a named site in library code where a test harness
//! may ask for a fault — an injected IO error, a spurious cache miss, a
//! panic in a worker thread. Sites are written with the [`failpoint!`]
//! macro:
//!
//! ```ignore
//! if gpssn_failpoint::failpoint!("cache::spurious_miss") {
//!     return None; // pretend the entry was never cached
//! }
//! ```
//!
//! Whether a site fires is decided by the globally installed
//! [`FaultPlan`]: a seed plus a [`FireRule`] per site (with a default
//! rule for sites not named explicitly). Every rule is a pure function
//! of `(seed, site, hit-number)`, so a plan replays the *exact same*
//! fault schedule on every run — chaos tests are reproducible from a
//! single `u64`, and `gpq --chaos-seed N` replays a failing schedule at
//! the CLI.
//!
//! ## Compile-time gating
//!
//! The macro checks `cfg(feature = "failpoints")` **in the crate that
//! expands it**. Each consuming crate declares its own `failpoints`
//! feature forwarding to `gpssn-failpoint/failpoints`; with the feature
//! off (the default) every site folds to the constant `false` and the
//! branch disappears — production builds carry zero overhead, not even
//! an atomic load. The runtime below always compiles (it is tiny) so
//! that mixed-feature builds link consistently.
//!
//! ## Globals and test isolation
//!
//! The installed plan is process-global. Tests that arm plans must
//! serialize with each other (a shared mutex, or one looped `#[test]`);
//! `tests/chaos.rs` in the workspace root is the canonical consumer.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

/// When a fail-point site fires, as a pure function of the site's
/// 0-based hit number `n` (per-site, counted since plan install) and
/// the plan seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FireRule {
    /// Never fires (the default-plan default).
    Never,
    /// Fires on every hit.
    Always,
    /// Fires on every `k`-th hit: hits `k-1, 2k-1, 3k-1, …`.
    /// `Nth(0)` never fires.
    Nth(u64),
    /// Fires exactly once, on hit number `n` (0-based).
    Once(u64),
    /// Fires with probability `p`, decided by a seeded hash of
    /// `(seed, site, hit)` — deterministic per plan, uncorrelated
    /// across sites and hits.
    Prob(f64),
}

impl FireRule {
    fn fires(&self, seed: u64, site: &str, hit: u64) -> bool {
        match *self {
            FireRule::Never => false,
            FireRule::Always => true,
            FireRule::Nth(k) => k != 0 && (hit + 1).is_multiple_of(k),
            FireRule::Once(n) => hit == n,
            FireRule::Prob(p) => {
                if p <= 0.0 {
                    return false;
                }
                if p >= 1.0 {
                    return true;
                }
                let h = splitmix64(seed ^ fnv1a(site.as_bytes()) ^ splitmix64(hit));
                // Top 53 bits → uniform fraction in [0, 1).
                let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
                frac < p
            }
        }
    }
}

/// SplitMix64 — the standard 64-bit finalizer; good avalanche, no state.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D4_9BCB_8D5B_21E5);
    x ^ (x >> 31)
}

/// FNV-1a over the site name, mixing site identity into [`FireRule::Prob`].
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[derive(Debug, Default)]
struct SiteState {
    hits: u64,
    fires: u64,
}

/// A seeded, per-site fault schedule. Install with [`install`]; every
/// [`failpoint!`] site then consults it.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    default_rule: FireRule,
    overrides: HashMap<String, FireRule>,
    state: Mutex<HashMap<String, SiteState>>,
}

impl FaultPlan {
    /// A plan where no site fires unless given an explicit rule.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_rule: FireRule::Never,
            overrides: HashMap::new(),
            state: Mutex::new(HashMap::new()),
        }
    }

    /// A plan arming **every** site with `Prob(p)` — the chaos-suite
    /// workhorse: one `(seed, p)` pair is a full fault schedule.
    pub fn uniform(seed: u64, p: f64) -> Self {
        let mut plan = FaultPlan::new(seed);
        plan.default_rule = FireRule::Prob(p);
        plan
    }

    /// Overrides the rule for one named site (builder-style).
    #[must_use]
    pub fn with_site(mut self, site: &str, rule: FireRule) -> Self {
        self.overrides.insert(site.to_owned(), rule);
        self
    }

    /// The rule a hit on `site` is evaluated against.
    pub fn rule_for(&self, site: &str) -> FireRule {
        self.overrides
            .get(site)
            .copied()
            .unwrap_or(self.default_rule)
    }

    fn lock_state(&self) -> MutexGuard<'_, HashMap<String, SiteState>> {
        // Counter state is plain data; a poisoned lock (panicking
        // injected fault mid-update is impossible — we only increment)
        // is still safe to reuse.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records a hit on `site` and decides whether it fires.
    fn check(&self, site: &str) -> bool {
        let rule = self.rule_for(site);
        let mut state = self.lock_state();
        let entry = state.entry(site.to_owned()).or_default();
        let hit = entry.hits;
        entry.hits += 1;
        let fire = rule.fires(self.seed, site, hit);
        if fire {
            entry.fires += 1;
        }
        fire
    }

    /// How many times `site` has fired under this plan.
    pub fn fire_count(&self, site: &str) -> u64 {
        self.lock_state().get(site).map_or(0, |s| s.fires)
    }

    /// How many times `site` has been hit (fired or not).
    pub fn hit_count(&self, site: &str) -> u64 {
        self.lock_state().get(site).map_or(0, |s| s.hits)
    }

    /// Total fires across all sites.
    pub fn total_fires(&self) -> u64 {
        self.lock_state().values().map(|s| s.fires).sum()
    }

    /// `(site, hits, fires)` for every site hit so far, sorted by name.
    pub fn site_report(&self) -> Vec<(String, u64, u64)> {
        let state = self.lock_state();
        let mut out: Vec<(String, u64, u64)> = state
            .iter()
            .map(|(k, v)| (k.clone(), v.hits, v.fires))
            .collect();
        out.sort();
        out
    }
}

/// Fast-path gate: one relaxed load when no plan is installed.
static ARMED: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static RwLock<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs `plan` process-wide and returns a guard that [`clear`]s it
/// on drop. The returned `Arc` handle (via [`installed_plan`]) stays
/// valid for fire-count assertions after the guard drops.
pub fn install(plan: FaultPlan) -> FailpointsGuard {
    let plan = Arc::new(plan);
    {
        let mut slot = match plan_slot().write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *slot = Some(Arc::clone(&plan));
    }
    ARMED.store(true, Ordering::Release);
    FailpointsGuard { plan }
}

/// Disarms fault injection and drops the installed plan.
pub fn clear() {
    ARMED.store(false, Ordering::Release);
    let mut slot = match plan_slot().write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *slot = None;
}

/// Whether a plan is currently installed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// The currently installed plan, if any — for fire-count inspection.
pub fn installed_plan() -> Option<Arc<FaultPlan>> {
    if !is_armed() {
        return None;
    }
    let slot = match plan_slot().read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    slot.clone()
}

/// Scoped arming: dropping the guard disarms injection, so a panicking
/// test cannot leak its fault schedule into the next one.
#[must_use = "dropping the guard immediately disarms the plan"]
pub struct FailpointsGuard {
    plan: Arc<FaultPlan>,
}

impl FailpointsGuard {
    /// The installed plan — handy for fire-count assertions.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl Drop for FailpointsGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Runtime entry point the [`failpoint!`] macro expands to. Library
/// code should use the macro (which compiles out); call this directly
/// only from code that is itself feature-gated.
#[inline]
pub fn fired(site: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let slot = match plan_slot().read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    match slot.as_ref() {
        Some(plan) => plan.check(site),
        None => false,
    }
}

/// `failpoint!("site::name")` → `bool`: did the site fire?
///
/// Expands to a runtime check only when the **expanding** crate is
/// built with its `failpoints` feature (which must forward to
/// `gpssn-failpoint/failpoints`); otherwise it is the constant `false`
/// and the guarded branch compiles away.
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {{
        #[cfg(feature = "failpoints")]
        let __fp_fired = $crate::fired($site);
        #[cfg(not(feature = "failpoints"))]
        let __fp_fired = false;
        __fp_fired
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Tests share the process-global plan slot; serialize them.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_never_fires() {
        let _l = locked();
        clear();
        assert!(!fired("any::site"));
        assert!(!is_armed());
        assert!(installed_plan().is_none());
    }

    #[test]
    fn always_and_never_rules() {
        let _l = locked();
        let guard = install(FaultPlan::new(1).with_site("a", FireRule::Always));
        assert!(fired("a"));
        assert!(fired("a"));
        assert!(!fired("b")); // default Never
        assert_eq!(guard.plan().fire_count("a"), 2);
        assert_eq!(guard.plan().hit_count("b"), 1);
        assert_eq!(guard.plan().fire_count("b"), 0);
    }

    #[test]
    fn nth_fires_every_kth_hit() {
        let _l = locked();
        let guard = install(FaultPlan::new(2).with_site("s", FireRule::Nth(3)));
        let pattern: Vec<bool> = (0..9).map(|_| fired("s")).collect();
        assert_eq!(
            pattern,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(guard.plan().fire_count("s"), 3);
    }

    #[test]
    fn nth_zero_never_fires() {
        let _l = locked();
        let _guard = install(FaultPlan::new(2).with_site("s", FireRule::Nth(0)));
        assert!((0..8).all(|_| !fired("s")));
    }

    #[test]
    fn once_fires_exactly_once() {
        let _l = locked();
        let guard = install(FaultPlan::new(3).with_site("s", FireRule::Once(2)));
        let pattern: Vec<bool> = (0..6).map(|_| fired("s")).collect();
        assert_eq!(pattern, vec![false, false, true, false, false, false]);
        assert_eq!(guard.plan().fire_count("s"), 1);
    }

    #[test]
    fn prob_is_deterministic_and_roughly_calibrated() {
        let _l = locked();
        let run = |seed: u64| -> Vec<bool> {
            let _guard = install(FaultPlan::uniform(seed, 0.25));
            (0..400).map(|_| fired("p")).collect()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must replay the same schedule");
        let c = run(8);
        assert_ne!(a, c, "different seeds should differ");
        let rate = a.iter().filter(|&&f| f).count() as f64 / a.len() as f64;
        assert!((0.15..0.35).contains(&rate), "p=0.25 fired at rate {rate}");
    }

    #[test]
    fn prob_edge_cases() {
        let _l = locked();
        let _guard = install(
            FaultPlan::new(4)
                .with_site("zero", FireRule::Prob(0.0))
                .with_site("one", FireRule::Prob(1.0)),
        );
        assert!((0..16).all(|_| !fired("zero")));
        assert!((0..16).all(|_| fired("one")));
    }

    #[test]
    fn guard_drop_disarms() {
        let _l = locked();
        {
            let _guard = install(FaultPlan::new(5).with_site("g", FireRule::Always));
            assert!(fired("g"));
        }
        assert!(!is_armed());
        assert!(!fired("g"));
    }

    #[test]
    fn site_report_sorted_with_totals() {
        let _l = locked();
        let guard = install(
            FaultPlan::new(6)
                .with_site("b", FireRule::Always)
                .with_site("a", FireRule::Never),
        );
        fired("b");
        fired("a");
        fired("b");
        let report = guard.plan().site_report();
        assert_eq!(report, vec![("a".into(), 1, 0), ("b".into(), 2, 2)]);
        assert_eq!(guard.plan().total_fires(), 2);
    }

    #[test]
    fn macro_returns_runtime_value_under_feature() {
        let _l = locked();
        let _guard = install(FaultPlan::new(9).with_site("m", FireRule::Always));
        // This test crate is gpssn-failpoint itself; under
        // `--features failpoints` the macro goes live, otherwise it is
        // the constant false. Both are valid — assert consistency with
        // the feature instead of a fixed value.
        let hit = failpoint!("m");
        assert_eq!(hit, cfg!(feature = "failpoints"));
    }
}
