//! Index-construction benchmarks: pivot selection (Algorithm 1), `I_R`,
//! and `I_S` builds over a scaled synthetic spatial-social network.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpssn_index::{
    select_road_pivots, select_social_pivots, PivotSelectConfig, RoadIndex, RoadIndexConfig,
    SocialIndex, SocialIndexConfig,
};
use gpssn_road::RoadPivots;
use gpssn_social::SocialPivots;
use gpssn_ssn::{synthetic, SyntheticConfig};

fn bench_indexing(c: &mut Criterion) {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.05), 9);
    let mut group = c.benchmark_group("index_build");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);

    group.bench_function("pivot_select_road_h5", |b| {
        let cfg = PivotSelectConfig {
            count: 5,
            ..Default::default()
        };
        b.iter(|| black_box(select_road_pivots(ssn.road(), &cfg)));
    });
    group.bench_function("pivot_select_social_l5", |b| {
        let cfg = PivotSelectConfig {
            count: 5,
            ..Default::default()
        };
        b.iter(|| black_box(select_social_pivots(ssn.social(), &cfg)));
    });

    let road_pivots = RoadPivots::new(ssn.road(), vec![0, 100, 200, 300, 400]);
    group.bench_function("road_index_IR", |b| {
        b.iter(|| {
            black_box(RoadIndex::build(
                ssn.road(),
                ssn.pois(),
                road_pivots.clone(),
                RoadIndexConfig::default(),
            ))
        });
    });

    let social_pivots = SocialPivots::new(ssn.social(), vec![0, 10, 20, 30, 40]);
    group.bench_function("social_index_IS", |b| {
        b.iter(|| {
            black_box(SocialIndex::build(
                &ssn,
                social_pivots.clone(),
                &road_pivots,
                &SocialIndexConfig::default(),
            ))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_indexing
}
criterion_main!(benches);
