//! Instrumentation overhead of the `gpssn-obs` telemetry layer.
//!
//! Four configurations over the same refinement-heavy workload:
//!
//! * `none`       — no `Obs` attached (every site is one `Option` check)
//! * `disabled`   — `Obs` attached, metrics and tracing both off (one
//!   relaxed atomic load per site); the configuration the <1% overhead
//!   budget in DESIGN.md §10 applies to
//! * `metrics`    — per-query counters + phase histograms on
//! * `full`       — metrics + span tracing on
//!
//! Besides the Criterion groups, a manual pass compares `none` vs
//! `disabled` medians and reports the ratio; set `GPSSN_OBS_ASSERT=1`
//! to turn the <1% budget into a hard assertion (off by default — the
//! CI container's single noisy core makes sub-percent timing flaky).
//! `obs_report` emits the same comparison as `BENCH_obs.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpssn_core::{EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn_obs::{Obs, ObsConfig};
use gpssn_ssn::{DatasetKind, SpatialSocialNetwork};
use std::sync::Arc;
use std::time::Instant;

const SCALE: f64 = 0.1;

fn engine(ssn: &SpatialSocialNetwork, obs: Option<Arc<Obs>>) -> GpSsnEngine<'_> {
    GpSsnEngine::build(
        ssn,
        EngineConfig {
            obs,
            ..Default::default()
        },
    )
}

fn workload() -> Vec<GpSsnQuery> {
    [3u32, 11, 27, 42]
        .into_iter()
        .map(|user| GpSsnQuery {
            tau: 5,
            radius: 3.0,
            ..GpSsnQuery::with_defaults(user)
        })
        .collect()
}

fn run(eng: &GpSsnEngine, queries: &[GpSsnQuery]) {
    for q in queries {
        black_box(eng.query(q));
    }
}

fn bench_configs(c: &mut Criterion) {
    let ssn = DatasetKind::Uni.build(SCALE, 42);
    let queries = workload();
    let mut group = c.benchmark_group("obs_overhead");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);

    let configs: [(&str, Option<Arc<Obs>>); 4] = [
        ("none", None),
        ("disabled", Some(Arc::new(Obs::disabled()))),
        ("metrics", Some(Arc::new(Obs::with_metrics()))),
        (
            "full",
            Some(Arc::new(Obs::new(ObsConfig {
                metrics: true,
                tracing: true,
                trace_capacity: 1 << 16,
            }))),
        ),
    ];
    for (name, obs) in configs {
        let eng = engine(&ssn, obs);
        group.bench_function(name, |b| b.iter(|| run(&eng, &queries)));
    }
    group.finish();
}

/// Median of `reps` timed passes, in seconds.
fn median_pass(eng: &GpSsnEngine, queries: &[GpSsnQuery], reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            run(eng, queries);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn check_disabled_budget(_c: &mut Criterion) {
    let ssn = DatasetKind::Uni.build(SCALE, 42);
    let queries = workload();
    let none = engine(&ssn, None);
    let dormant = engine(&ssn, Some(Arc::new(Obs::disabled())));
    run(&none, &queries); // warm both engines' caches
    run(&dormant, &queries);
    let base = median_pass(&none, &queries, 7);
    let off = median_pass(&dormant, &queries, 7);
    let overhead = off / base - 1.0;
    eprintln!(
        "obs_overhead: none {base:.4}s, disabled {off:.4}s, overhead {:.2}%",
        overhead * 100.0
    );
    if std::env::var_os("GPSSN_OBS_ASSERT").is_some() {
        assert!(
            overhead < 0.01,
            "disabled-instrumentation overhead {:.2}% exceeds the 1% budget",
            overhead * 100.0
        );
    }
}

criterion_group!(benches, bench_configs, check_disabled_budget);
criterion_main!(benches);
