//! Microbenchmarks of the individual pruning rules — the per-entry costs
//! paid inside the index traversal.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpssn_core::pruning::social_distance::{lb_dist_sn_node, lb_dist_sn_users};
use gpssn_core::pruning::{
    lb_maxdist_node, lb_maxdist_poi, ub_match_score_keywords, ub_match_score_signature,
    PruningRegion,
};
use gpssn_social::InterestVector;
use gpssn_spatial::KeywordSignature;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn bench_rules(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let anchor = InterestVector::new((0..5).map(|_| rng.gen_range(0.0..1.0)).collect());
    let region = PruningRegion::new(&anchor, 0.3);
    let points: Vec<InterestVector> = (0..256)
        .map(|_| InterestVector::new((0..5).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect();

    c.bench_function("prune/interest_region_point_x256", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for p in &points {
                if region.prunes_point(p) {
                    n += 1;
                }
            }
            black_box(n)
        });
    });

    let lb_w = vec![0.1; 5];
    let ub_w = vec![0.6; 5];
    c.bench_function("prune/interest_region_mbr", |b| {
        b.iter(|| black_box(region.prunes_mbr(&lb_w, &ub_w)));
    });
    c.bench_function("prune/interest_region_mbr_tight", |b| {
        b.iter(|| black_box(region.prunes_mbr_tight(&ub_w)));
    });

    let sig = KeywordSignature::from_keywords([0, 2, 4]);
    c.bench_function("prune/match_signature", |b| {
        b.iter(|| black_box(ub_match_score_signature(&anchor, &sig)));
    });
    let keywords = vec![0u32, 2, 4];
    c.bench_function("prune/match_keywords", |b| {
        b.iter(|| black_box(ub_match_score_keywords(&anchor, &keywords)));
    });

    let uq_rn: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..50.0)).collect();
    let poi_rn: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..50.0)).collect();
    let lb_p: Vec<f64> = poi_rn.iter().map(|x| x - 1.0).collect();
    let ub_p: Vec<f64> = poi_rn.iter().map(|x| x + 1.0).collect();
    c.bench_function("prune/road_lb_poi", |b| {
        b.iter(|| black_box(lb_maxdist_poi(&uq_rn, &poi_rn)));
    });
    c.bench_function("prune/road_lb_node", |b| {
        b.iter(|| black_box(lb_maxdist_node(&uq_rn, &lb_p, &ub_p)));
    });

    let uq_sn = [2u32, 5, 1, 7, 3];
    let user_sn = [4u32, 2, 6, 3, 8];
    c.bench_function("prune/social_lb_users", |b| {
        b.iter(|| black_box(lb_dist_sn_users(&uq_sn, &user_sn)));
    });
    let lb_sn = [1u32, 1, 1, 1, 1];
    let ub_sn = [9u32, 9, 9, 9, 9];
    c.bench_function("prune/social_lb_node", |b| {
        b.iter(|| black_box(lb_dist_sn_node(&uq_sn, &lb_sn, &ub_sn)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_rules
}
criterion_main!(benches);
