//! Overhead of the resource-budget metering on the hot query path.
//!
//! Every query now threads a [`gpssn_core::QueryBudget`] through the
//! best-first loop (one counter check per heap pop / enumerated group,
//! a clock read every `DEADLINE_CHECK_PERIOD` events). These benches
//! quantify that cost against the same query under `unlimited()`:
//! `counters` arms all three counter limits high enough to never trip,
//! `deadline` additionally arms a far-future deadline so the periodic
//! `Instant::now()` reads execute. See BENCH.md for recorded numbers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpssn_core::{EngineConfig, GpSsnEngine, GpSsnQuery, QueryBudget};
use gpssn_ssn::DatasetKind;
use std::time::Duration;

const SCALE: f64 = 0.05;

fn bench_budget_overhead(c: &mut Criterion) {
    let ssn = DatasetKind::Uni.build(SCALE, 42);
    let eng = GpSsnEngine::build(&ssn, EngineConfig::default());
    let q = GpSsnQuery::with_defaults(11);

    let unlimited = QueryBudget::unlimited();
    let counters = QueryBudget {
        max_heap_pops: Some(u64::MAX / 2),
        max_groups_enumerated: Some(u64::MAX / 2),
        max_dijkstra_settles: Some(u64::MAX / 2),
        deadline: None,
    };
    let deadline = QueryBudget {
        deadline: Some(Duration::from_secs(3600)),
        ..counters.clone()
    };

    let mut group = c.benchmark_group("budget_overhead");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for (name, budget) in [
        ("unlimited", &unlimited),
        ("counters", &counters),
        ("deadline", &deadline),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(eng.try_query(&q, budget).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_budget_overhead);
criterion_main!(benches);
