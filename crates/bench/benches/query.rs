//! End-to-end GP-SSN query benchmarks across datasets and parameter
//! settings (the Criterion counterpart of Figures 8–11).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gpssn_core::{EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn_ssn::{DatasetKind, SpatialSocialNetwork};

const SCALE: f64 = 0.05;

fn engine(ssn: &SpatialSocialNetwork) -> GpSsnEngine<'_> {
    GpSsnEngine::build(ssn, EngineConfig::default())
}

fn bench_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_by_dataset");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for kind in DatasetKind::all() {
        let ssn = kind.build(SCALE, 42);
        let eng = engine(&ssn);
        let q = GpSsnQuery::with_defaults(11);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &q, |b, q| {
            b.iter(|| black_box(eng.query(q)));
        });
    }
    group.finish();
}

fn bench_tau(c: &mut Criterion) {
    let ssn = DatasetKind::Uni.build(SCALE, 42);
    let eng = engine(&ssn);
    let mut group = c.benchmark_group("query_by_tau");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &tau in &[2usize, 5, 10] {
        let q = GpSsnQuery {
            tau,
            ..GpSsnQuery::with_defaults(11)
        };
        group.bench_with_input(BenchmarkId::from_parameter(tau), &q, |b, q| {
            b.iter(|| black_box(eng.query(q)));
        });
    }
    group.finish();
}

fn bench_radius(c: &mut Criterion) {
    let ssn = DatasetKind::Uni.build(SCALE, 42);
    let eng = engine(&ssn);
    let mut group = c.benchmark_group("query_by_radius");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &r in &[0.5f64, 2.0, 4.0] {
        let q = GpSsnQuery {
            radius: r,
            ..GpSsnQuery::with_defaults(11)
        };
        group.bench_with_input(BenchmarkId::from_parameter(r), &q, |b, q| {
            b.iter(|| black_box(eng.query(q)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_datasets, bench_tau, bench_radius
}
criterion_main!(benches);
