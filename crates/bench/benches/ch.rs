//! Contraction-hierarchy oracle benchmarks: preprocessing cost,
//! point-to-point queries vs plain Dijkstra, and the bucket-based
//! many-to-many kernel vs one Dijkstra sweep per source — on the same
//! road-like graphs the query benches use. `ch_report` (a bin in this
//! crate) distills the same comparison into `BENCH_ch.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gpssn_graph::{dijkstra_targets, ChOracle, ChSearch, NodeId};
use gpssn_road::{generate_road_network, RoadGenConfig, RoadNetwork};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn road(n: usize, seed: u64) -> RoadNetwork {
    let cfg = RoadGenConfig {
        num_vertices: n,
        ..Default::default()
    };
    generate_road_network(&cfg, &mut StdRng::seed_from_u64(seed))
}

/// `count` far-apart vertex pairs, deterministic per graph size.
fn pairs(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId)))
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ch_build");
    group.sample_size(10);
    for &n in &[3_000usize, 10_000] {
        let net = road(n, 7);
        group.bench_with_input(BenchmarkId::new("sequential", n), &net, |b, net| {
            b.iter(|| black_box(ChOracle::build(net.graph())));
        });
        group.bench_with_input(BenchmarkId::new("threads_4", n), &net, |b, net| {
            b.iter(|| black_box(ChOracle::build_with_threads(net.graph(), 4)));
        });
    }
    group.finish();
}

fn bench_p2p(c: &mut Criterion) {
    let n = 30_000usize;
    let net = road(n, 7);
    let ch = ChOracle::build(net.graph());
    let mut cs = ChSearch::new();
    let queries = pairs(n, 16, 11);
    let mut group = c.benchmark_group("ch_p2p_30k");
    group.sample_size(20);
    group.bench_function("dijkstra_targets", |b| {
        b.iter(|| {
            for &(s, t) in &queries {
                black_box(dijkstra_targets(net.graph(), &[(s, 0.0)], &[t]));
            }
        });
    });
    group.bench_function("ch", |b| {
        b.iter(|| {
            for &(s, t) in &queries {
                black_box(ch.dists(&mut cs, &[(s, 0.0)], &[t]));
            }
        });
    });
    group.finish();
}

fn bench_many_to_many(c: &mut Criterion) {
    let n = 30_000usize;
    let net = road(n, 7);
    let ch = ChOracle::build(net.graph());
    let mut cs = ChSearch::new();
    let mut rng = StdRng::seed_from_u64(13);
    let sources: Vec<[(NodeId, f64); 1]> = (0..8)
        .map(|_| [(rng.gen_range(0..n as NodeId), 0.0)])
        .collect();
    let source_refs: Vec<&[(NodeId, f64)]> = sources.iter().map(|s| &s[..]).collect();
    let targets: Vec<NodeId> = (0..16).map(|_| rng.gen_range(0..n as NodeId)).collect();
    let mut group = c.benchmark_group("ch_many_to_many_8x16_30k");
    group.sample_size(20);
    group.bench_function("dijkstra_per_source", |b| {
        b.iter(|| {
            for s in &source_refs {
                black_box(dijkstra_targets(net.graph(), s, &targets));
            }
        });
    });
    group.bench_function("ch_bucket_kernel", |b| {
        b.iter(|| black_box(ch.batch_dists(&mut cs, &source_refs, &targets)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_build, bench_p2p, bench_many_to_many
}
criterion_main!(benches);
