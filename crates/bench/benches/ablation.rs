//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * each pruning family toggled off (how much work does every rule
//!   save?);
//! * the paper's geometric MBR interest test versus the tight halfspace
//!   corner test;
//! * Algorithm-1 optimized pivots versus naive random pivots.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gpssn_core::algorithm::QueryOptions;
use gpssn_core::{EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn_index::PivotSelectConfig;
use gpssn_ssn::{DatasetKind, SpatialSocialNetwork};

const SCALE: f64 = 0.05;

fn bench_pruning_ablation(c: &mut Criterion) {
    let ssn = DatasetKind::Uni.build(SCALE, 42);
    let eng = GpSsnEngine::build(&ssn, EngineConfig::default());
    let q = GpSsnQuery::with_defaults(11);
    let variants: [(&str, QueryOptions); 6] = [
        ("all_rules", QueryOptions::default()),
        (
            "no_interest",
            QueryOptions {
                use_interest_pruning: false,
                ..Default::default()
            },
        ),
        (
            "no_social_distance",
            QueryOptions {
                use_social_distance_pruning: false,
                ..Default::default()
            },
        ),
        (
            "no_matching",
            QueryOptions {
                use_matching_pruning: false,
                ..Default::default()
            },
        ),
        (
            "no_delta",
            QueryOptions {
                use_delta_pruning: false,
                ..Default::default()
            },
        ),
        (
            "no_pruning_at_all",
            QueryOptions {
                use_interest_pruning: false,
                use_social_distance_pruning: false,
                use_matching_pruning: false,
                use_delta_pruning: false,
                collect_stats: false,
                use_tight_mbr_test: false,
                ..Default::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation_pruning");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for (name, opts) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter(|| black_box(eng.query_with_options(&q, opts)));
        });
    }
    group.finish();
}

fn engine_with_pivot_cfg(ssn: &SpatialSocialNetwork, swap_iter: usize) -> GpSsnEngine<'_> {
    GpSsnEngine::build(
        ssn,
        EngineConfig {
            pivot_select: PivotSelectConfig {
                swap_iter,
                global_iter: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

fn bench_pivot_quality(c: &mut Criterion) {
    let ssn = DatasetKind::Uni.build(SCALE, 42);
    // swap_iter = 0 => random pivots (Algorithm 1 degenerates to the
    // initial random draw); default => locally optimized pivots.
    let random = engine_with_pivot_cfg(&ssn, 0);
    let optimized = engine_with_pivot_cfg(&ssn, 24);
    let q = GpSsnQuery::with_defaults(11);
    let mut group = c.benchmark_group("ablation_pivots");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("random_pivots", |b| b.iter(|| black_box(random.query(&q))));
    group.bench_function("algorithm1_pivots", |b| {
        b.iter(|| black_box(optimized.query(&q)))
    });
    group.finish();
}

fn bench_refinement_modes(c: &mut Criterion) {
    // Exact enumeration vs the paper's future-work subset sampling, and
    // the geometric vs tight interest-MBR test.
    let ssn = DatasetKind::Uni.build(SCALE, 42);
    let eng = GpSsnEngine::build(&ssn, EngineConfig::default());
    let q = GpSsnQuery::with_defaults(11);
    let mut group = c.benchmark_group("ablation_refinement");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("exact_enumeration", |b| b.iter(|| black_box(eng.query(&q))));
    group.bench_function("subset_sampling_32", |b| {
        b.iter(|| black_box(eng.query_approximate(&q, 32, 7)))
    });
    group.bench_function("subset_sampling_128", |b| {
        b.iter(|| black_box(eng.query_approximate(&q, 128, 7)))
    });
    group.bench_function("tight_mbr_test", |b| {
        let opts = QueryOptions {
            use_tight_mbr_test: true,
            ..Default::default()
        };
        b.iter(|| black_box(eng.query_with_options(&q, &opts)))
    });
    group.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    let ssn = DatasetKind::Uni.build(SCALE, 42);
    let raw = GpSsnEngine::build(&ssn, EngineConfig::default());
    let pooled = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            page_cache_capacity: Some(256),
            ..Default::default()
        },
    );
    let q = GpSsnQuery::with_defaults(11);
    let mut group = c.benchmark_group("ablation_buffer_pool");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("no_pool", |b| b.iter(|| black_box(raw.query(&q))));
    group.bench_function("lru_256_pages", |b| b.iter(|| black_box(pooled.query(&q))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_pruning_ablation, bench_pivot_quality, bench_refinement_modes, bench_buffer_pool
}
criterion_main!(benches);
