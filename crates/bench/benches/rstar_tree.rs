//! Microbenchmarks for the R\*-tree substrate behind `I_R`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gpssn_spatial::{Point, RStarTree, Rect};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rstar_build");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let pts = random_points(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| {
                black_box(RStarTree::bulk_build(
                    32,
                    pts.iter().enumerate().map(|(i, &p)| (i as u32, p)),
                ))
            });
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let pts = random_points(10_000, 5);
    let tree = RStarTree::bulk_build(32, pts.iter().enumerate().map(|(i, &p)| (i as u32, p)));
    let mut group = c.benchmark_group("rstar_query");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("range_5x5", |b| {
        let rect = Rect::new(Point::new(40.0, 40.0), Point::new(45.0, 45.0));
        b.iter(|| black_box(tree.range_query(&rect)));
    });
    group.bench_function("radius_2", |b| {
        let c = Point::new(50.0, 50.0);
        b.iter(|| black_box(tree.within_radius(&c, 2.0)));
    });
    group.bench_function("radius_8", |b| {
        let c = Point::new(50.0, 50.0);
        b.iter(|| black_box(tree.within_radius(&c, 8.0)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_build, bench_queries
}
criterion_main!(benches);
