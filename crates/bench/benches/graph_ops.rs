//! Microbenchmarks for the graph substrate: Dijkstra variants, BFS, and
//! connected-subgraph enumeration — the inner loops of every GP-SSN
//! query.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gpssn_graph::{
    bounded_hops, dijkstra_all, dijkstra_bounded, dijkstra_targets, enumerate_connected_subsets,
    CsrGraph, NodeId,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_graph(n: usize, extra: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId, f64)> = (1..n)
        .map(|v| {
            (
                rng.gen_range(0..v) as NodeId,
                v as NodeId,
                rng.gen_range(0.1..2.0),
            )
        })
        .collect();
    for _ in 0..extra {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            edges.push((u, v, rng.gen_range(0.1..2.0)));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

fn bench_dijkstra(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for &n in &[1_000usize, 10_000, 30_000] {
        let g = random_graph(n, n, 7);
        group.bench_with_input(BenchmarkId::new("full", n), &g, |b, g| {
            b.iter(|| black_box(dijkstra_all(g, &[(0, 0.0)])));
        });
        group.bench_with_input(BenchmarkId::new("bounded_r5", n), &g, |b, g| {
            b.iter(|| black_box(dijkstra_bounded(g, &[(0, 0.0)], 5.0)));
        });
        let targets: Vec<NodeId> = (0..8).map(|i| (i * n / 8) as NodeId).collect();
        group.bench_with_input(BenchmarkId::new("multi_target", n), &g, |b, g| {
            b.iter(|| black_box(dijkstra_targets(g, &[(0, 0.0)], &targets)));
        });
    }
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let g = random_graph(30_000, 60_000, 11);
    c.bench_function("bfs/bounded_4_hops_30k", |b| {
        b.iter(|| black_box(bounded_hops(&g, 0, 4)));
    });
}

fn bench_subgraph_enumeration(c: &mut Criterion) {
    let g = random_graph(200, 600, 13);
    let mut group = c.benchmark_group("connected_subsets");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &[3usize, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut count = 0usize;
                enumerate_connected_subsets(&g, 0, k, None, &mut |_| {
                    count += 1;
                    count < 2_000
                });
                black_box(count)
            });
        });
    }
    group.finish();
}

fn bench_alt_vs_dijkstra(c: &mut Criterion) {
    use gpssn_graph::AltOracle;
    let g = random_graph(30_000, 30_000, 17);
    let alt = AltOracle::new(&g, &[0, 7_500, 15_000, 22_500]);
    let target: NodeId = 29_999;
    let mut group = c.benchmark_group("point_to_point");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    group.bench_function("dijkstra_targets", |b| {
        b.iter(|| black_box(dijkstra_targets(&g, &[(0, 0.0)], &[target])));
    });
    group.bench_function("alt", |b| {
        b.iter(|| black_box(alt.distance(&g, &[(0, 0.0)], target)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_dijkstra, bench_bfs, bench_subgraph_enumeration, bench_alt_vs_dijkstra
}
criterion_main!(benches);
