//! Center-refinement benchmarks for the PR-2 fast paths: sequential vs
//! parallel verification (intra-query worker threads over the candidate
//! centers) and cold vs warm cross-query distance cache. All modes
//! return bit-identical answers (see `tests/refinement_modes.rs`); this
//! measures what that exactness costs or saves.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gpssn_core::{DistanceCacheConfig, EngineConfig, GpSsnEngine, GpSsnQuery, QueryOptions};
use gpssn_ssn::{DatasetKind, SpatialSocialNetwork};

const SCALE: f64 = 0.1;

fn engine(ssn: &SpatialSocialNetwork, cache: Option<DistanceCacheConfig>) -> GpSsnEngine<'_> {
    GpSsnEngine::build(
        ssn,
        EngineConfig {
            distance_cache: cache,
            ..Default::default()
        },
    )
}

/// A handful of refinement-heavy queries (large radius and group size
/// push more centers past the bound phase into exact verification).
fn workload() -> Vec<GpSsnQuery> {
    [3u32, 11, 27, 42]
        .into_iter()
        .map(|user| GpSsnQuery {
            tau: 5,
            radius: 3.0,
            ..GpSsnQuery::with_defaults(user)
        })
        .collect()
}

fn opts(threads: usize) -> QueryOptions {
    QueryOptions {
        refine_threads: threads,
        ..Default::default()
    }
}

/// Sequential vs parallel center verification, cache disabled so the
/// threading dimension is isolated.
fn bench_threads(c: &mut Criterion) {
    let ssn = DatasetKind::Uni.build(SCALE, 42);
    let eng = engine(&ssn, None);
    let queries = workload();
    let mut group = c.benchmark_group("refinement_threads");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        let o = opts(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &o, |b, o| {
            b.iter(|| {
                for q in &queries {
                    black_box(eng.query_with_options(q, o));
                }
            });
        });
    }
    group.finish();
}

/// Cold vs warm distance cache at one thread. "cold" rebuilds nothing —
/// the cache is simply absent — while "warm" replays the workload
/// against a cache already populated by a priming pass, the cross-query
/// batch scenario the cache exists for.
fn bench_cache(c: &mut Criterion) {
    let ssn = DatasetKind::Uni.build(SCALE, 42);
    let queries = workload();
    let mut group = c.benchmark_group("refinement_cache");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);

    let uncached = engine(&ssn, None);
    group.bench_function("disabled", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(uncached.query(q));
            }
        });
    });

    let cached = engine(&ssn, Some(DistanceCacheConfig::default()));
    let mut tallies = (0u64, 0u64);
    for q in &queries {
        let out = cached.query(q); // priming pass
        tallies.0 += out.metrics.cache.ball_hits + out.metrics.cache.dist_hits;
        tallies.1 += out.metrics.cache.ball_misses + out.metrics.cache.dist_misses;
    }
    group.bench_function("warm", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(cached.query(q));
            }
        });
    });
    // One steady-state replay to report the hit rate Criterion can't.
    let mut hits = 0u64;
    let mut misses = 0u64;
    for q in &queries {
        let cs = cached.query(q).metrics.cache;
        hits += cs.ball_hits + cs.dist_hits;
        misses += cs.ball_misses + cs.dist_misses;
    }
    eprintln!(
        "refinement_cache: priming pass {}h/{}m, steady state {}h/{}m (hit rate {:.1}%)",
        tallies.0,
        tallies.1,
        hits,
        misses,
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );
    group.finish();
}

/// The full production stack (4 threads + warm cache) against the
/// plain engine — the headline number for this PR.
fn bench_combined(c: &mut Criterion) {
    let ssn = DatasetKind::Uni.build(SCALE, 42);
    let queries = workload();
    let mut group = c.benchmark_group("refinement_combined");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);

    let plain = engine(&ssn, None);
    group.bench_function("plain", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(plain.query_with_options(q, &opts(1)));
            }
        });
    });

    let fast = engine(&ssn, Some(DistanceCacheConfig::default()));
    for q in &queries {
        fast.query(q); // prime
    }
    group.bench_function("parallel4_warm_cache", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(fast.query_with_options(q, &opts(4)));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_threads, bench_cache, bench_combined);
criterion_main!(benches);
