//! Shared experiment plumbing: context, engine construction, query
//! sampling, and aligned-table printing.

use gpssn_core::{EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn_index::{PivotSelectConfig, RoadIndexConfig, SocialIndexConfig};
use gpssn_ssn::SpatialSocialNetwork;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Global knobs every experiment respects.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Dataset scale relative to the paper's full sizes (1.0 = 40K-user
    /// surrogates, 30K-vertex synthetics). The default 0.1 keeps a full
    /// `all` run in minutes on a laptop while preserving every trend.
    pub scale: f64,
    /// Base RNG seed (datasets and query users derive from it).
    pub seed: u64,
    /// Queries averaged per data point.
    pub queries_per_point: usize,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            scale: 0.1,
            seed: 42,
            queries_per_point: 5,
        }
    }
}

impl ExperimentContext {
    /// The paper's default query (`τ=5, γ=0.5, θ=0.5, r=2`), parameterized
    /// by query user later.
    pub fn default_query(&self) -> GpSsnQuery {
        GpSsnQuery::with_defaults(0)
    }

    /// The default engine configuration (5 road + 5 social pivots,
    /// `r ∈ [0.5, 4]`).
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            num_road_pivots: 5,
            num_social_pivots: 5,
            road_index: RoadIndexConfig::default(),
            social_index: SocialIndexConfig::default(),
            pivot_select: PivotSelectConfig {
                seed: self.seed,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Builds an engine over `ssn` with `cfg`.
    pub fn engine<'a>(&self, ssn: &'a SpatialSocialNetwork, cfg: EngineConfig) -> GpSsnEngine<'a> {
        GpSsnEngine::build(ssn, cfg)
    }

    /// Samples `count` query users, preferring users with at least one
    /// friend (isolated users trivially answer `None` for `τ > 1`).
    pub fn sample_query_users(&self, ssn: &SpatialSocialNetwork, count: usize) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xABCD);
        let m = ssn.social().num_users();
        let mut out = Vec::with_capacity(count);
        let mut guard = 0;
        while out.len() < count && guard < count * 100 {
            guard += 1;
            let u = rng.gen_range(0..m) as u32;
            if ssn.social().graph().degree(u) > 0 || m < 4 {
                out.push(u);
            }
        }
        while out.len() < count {
            out.push(0);
        }
        out
    }
}

/// An aligned, printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds humanely (µs → years), as the paper's Figure 8 spans
/// 13 orders of magnitude.
pub fn fmt_seconds(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else if s < 86_400.0 {
        format!("{:.1}h", s / 3600.0)
    } else if s < 86_400.0 * 365.0 * 3.0 {
        format!("{:.1}d", s / 86_400.0)
    } else {
        format!("{:.2e}y", s / (86_400.0 * 365.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpssn_ssn::{synthetic, SyntheticConfig};

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "10000".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("alpha"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["x".into()]);
    }

    #[test]
    fn seconds_formatting_spans_magnitudes() {
        assert!(fmt_seconds(2e-5).ends_with("us"));
        assert!(fmt_seconds(0.02).ends_with("ms"));
        assert!(fmt_seconds(5.0).ends_with('s'));
        assert!(fmt_seconds(1e13).ends_with('y'));
    }

    #[test]
    fn query_users_have_friends() {
        let ctx = ExperimentContext {
            scale: 0.01,
            ..Default::default()
        };
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 1);
        let users = ctx.sample_query_users(&ssn, 5);
        assert_eq!(users.len(), 5);
        for u in users {
            assert!(ssn.social().graph().degree(u) > 0);
        }
    }
}
