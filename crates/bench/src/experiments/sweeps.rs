//! Parameter sweeps: Figures 9–11 and the Appendix-P experiments
//! (`θ`, `r`, `γ`, number of pivots, `|V(G_s)|`), each on both synthetic
//! datasets (UNI, ZIPF) with all other parameters at their defaults.

use super::run_queries;
use crate::runner::{ExperimentContext, Table};
use gpssn_core::GpSsnQuery;
use gpssn_ssn::{synthetic, SyntheticConfig};

fn ms(x: f64) -> String {
    format!("{:.2}ms", x * 1e3)
}

fn synthetic_pair(
    ctx: &ExperimentContext,
    tweak: impl Fn(&mut SyntheticConfig),
) -> [(String, gpssn_ssn::SpatialSocialNetwork); 2] {
    let mut uni = SyntheticConfig::uni().scaled(ctx.scale);
    let mut zipf = SyntheticConfig::zipf().scaled(ctx.scale);
    tweak(&mut uni);
    tweak(&mut zipf);
    [
        ("UNI".to_string(), synthetic(&uni, ctx.seed)),
        ("ZIPF".to_string(), synthetic(&zipf, ctx.seed)),
    ]
}

/// Sweep over a query-level parameter (no dataset/engine rebuild).
fn query_sweep(
    ctx: &ExperimentContext,
    title: &str,
    values: &[f64],
    label: impl Fn(f64) -> String,
    apply: impl Fn(&mut GpSsnQuery, f64),
) -> Table {
    let mut t = Table::new(
        title,
        &["value", "UNI CPU", "UNI I/O", "ZIPF CPU", "ZIPF I/O"],
    );
    let pair = synthetic_pair(ctx, |_| {});
    let engines: Vec<_> = pair
        .iter()
        .map(|(_, ssn)| ctx.engine(ssn, ctx.engine_config()))
        .collect();
    for &v in values {
        let mut cells = vec![label(v)];
        for engine in &engines {
            let mut q = ctx.default_query();
            apply(&mut q, v);
            let avg = run_queries(ctx, engine, &q, false);
            cells.push(ms(avg.cpu_seconds));
            cells.push(format!("{:.0}", avg.io_pages));
        }
        t.push_row(cells);
    }
    t
}

/// Figure 9: effect of the user group size `τ`.
pub fn fig9(ctx: &ExperimentContext) -> Table {
    query_sweep(
        ctx,
        "Fig 9: GP-SSN performance vs user group size tau",
        &[2.0, 3.0, 5.0, 7.0, 10.0],
        |v| format!("{}", v as usize),
        |q, v| q.tau = v as usize,
    )
}

/// Appendix P: effect of the matching threshold `θ`.
pub fn app_p_theta(ctx: &ExperimentContext) -> Table {
    query_sweep(
        ctx,
        "App P: GP-SSN performance vs matching threshold theta",
        &[0.2, 0.3, 0.5, 0.7, 0.9],
        |v| format!("{v}"),
        |q, v| q.theta = v,
    )
}

/// Appendix P: effect of the radius `r`.
pub fn app_p_r(ctx: &ExperimentContext) -> Table {
    query_sweep(
        ctx,
        "App P: GP-SSN performance vs spatial radius r",
        &[0.5, 1.0, 2.0, 3.0, 4.0],
        |v| format!("{v}"),
        |q, v| q.radius = v,
    )
}

/// Appendix P: effect of the interest threshold `γ`.
pub fn app_p_gamma(ctx: &ExperimentContext) -> Table {
    query_sweep(
        ctx,
        "App P: GP-SSN performance vs interest threshold gamma",
        &[0.2, 0.3, 0.5, 0.7, 0.9],
        |v| format!("{v}"),
        |q, v| q.gamma = v,
    )
}

/// Sweep over a dataset-level cardinality (rebuilds data + engine).
fn dataset_sweep(
    ctx: &ExperimentContext,
    title: &str,
    values: &[usize],
    apply: impl Fn(&mut SyntheticConfig, usize),
) -> Table {
    let mut t = Table::new(
        title,
        &[
            "value (paper-scale)",
            "UNI CPU",
            "UNI I/O",
            "ZIPF CPU",
            "ZIPF I/O",
        ],
    );
    for &v in values {
        let scaled = ((v as f64 * ctx.scale) as usize).max(16);
        let mut cells = vec![format!("{v} (run at {scaled})")];
        for (_, ssn) in synthetic_pair(ctx, |cfg| apply(cfg, scaled)) {
            let engine = ctx.engine(&ssn, ctx.engine_config());
            let avg = run_queries(ctx, &engine, &ctx.default_query(), false);
            cells.push(ms(avg.cpu_seconds));
            cells.push(format!("{:.0}", avg.io_pages));
        }
        t.push_row(cells);
    }
    t
}

/// Figure 10: effect of the number of POIs `n`.
pub fn fig10(ctx: &ExperimentContext) -> Table {
    dataset_sweep(
        ctx,
        "Fig 10: GP-SSN performance vs number of POIs n",
        &[3_000, 5_000, 10_000, 15_000, 20_000],
        |cfg, v| cfg.poi.num_pois = v,
    )
}

/// Figure 11: effect of the road-network size `|V(G_r)|`.
pub fn fig11(ctx: &ExperimentContext) -> Table {
    dataset_sweep(
        ctx,
        "Fig 11: GP-SSN performance vs |V(Gr)|",
        &[10_000, 20_000, 30_000, 40_000, 50_000],
        |cfg, v| cfg.road.num_vertices = v,
    )
}

/// Appendix P / scalability: effect of the social-network size
/// `|V(G_s)|`.
pub fn app_p_vs(ctx: &ExperimentContext) -> Table {
    dataset_sweep(
        ctx,
        "App P: GP-SSN performance vs |V(Gs)|",
        &[10_000, 20_000, 30_000, 40_000, 50_000],
        |cfg, v| cfg.social.num_users = v,
    )
}

/// Appendix P: effect of the number of pivots `h = l`.
pub fn app_p_pivots(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "App P: GP-SSN performance vs number of pivots (h = l)",
        &["pivots", "UNI CPU", "UNI I/O", "ZIPF CPU", "ZIPF I/O"],
    );
    let pair = synthetic_pair(ctx, |_| {});
    for &p in &[2usize, 3, 5, 7, 10] {
        let mut cells = vec![p.to_string()];
        for (_, ssn) in &pair {
            let mut cfg = ctx.engine_config();
            cfg.num_road_pivots = p;
            cfg.num_social_pivots = p;
            let engine = ctx.engine(ssn, cfg);
            let avg = run_queries(ctx, &engine, &ctx.default_query(), false);
            cells.push(ms(avg.cpu_seconds));
            cells.push(format!("{:.0}", avg.io_pages));
        }
        t.push_row(cells);
    }
    t
}

/// Extension experiment: physical I/O versus buffer-pool size (classic
/// database curve; `0` disables the pool and reproduces the paper's raw
/// page-access metric).
pub fn cache_sweep(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Ext: physical I/O vs buffer-pool size (pages)",
        &["pool size", "UNI CPU", "UNI I/O", "ZIPF CPU", "ZIPF I/O"],
    );
    let pair = synthetic_pair(ctx, |_| {});
    for &cap in &[0usize, 16, 64, 256, 1024] {
        let mut cells = vec![if cap == 0 {
            "none".to_string()
        } else {
            cap.to_string()
        }];
        for (_, ssn) in &pair {
            let mut cfg = ctx.engine_config();
            cfg.page_cache_capacity = if cap == 0 { None } else { Some(cap) };
            let engine = ctx.engine(ssn, cfg);
            // Warm the pool with one pass, then measure.
            let _ = run_queries(ctx, &engine, &ctx.default_query(), false);
            let avg = run_queries(ctx, &engine, &ctx.default_query(), false);
            cells.push(ms(avg.cpu_seconds));
            cells.push(format!("{:.0}", avg.io_pages));
        }
        t.push_row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext {
            scale: 0.005,
            queries_per_point: 1,
            ..Default::default()
        }
    }

    #[test]
    fn fig9_has_five_rows() {
        let t = fig9(&tiny_ctx());
        let r = t.render();
        assert!(r.contains("10"));
        assert!(r.matches("ms").count() >= 10);
    }

    #[test]
    fn pivots_sweep_runs() {
        let t = app_p_pivots(&tiny_ctx());
        assert!(t.render().contains("pivots"));
    }

    #[test]
    fn cache_sweep_runs() {
        let t = cache_sweep(&tiny_ctx());
        assert!(t.render().contains("none"));
    }
}
