//! One module per paper artifact. See `DESIGN.md` §4 for the experiment
//! index (paper figure/table → module → bench target).

pub mod fig7;
pub mod fig8;
pub mod sweeps;
pub mod tables;

use crate::runner::ExperimentContext;
use gpssn_core::algorithm::QueryOptions;
use gpssn_core::{GpSsnEngine, GpSsnQuery};

/// Metrics averaged over several query users.
#[derive(Debug, Clone, Default)]
pub struct Averaged {
    /// Mean CPU seconds per query.
    pub cpu_seconds: f64,
    /// Mean I/O page accesses per query.
    pub io_pages: f64,
    /// Fraction of queries that returned an answer.
    pub hit_rate: f64,
    /// Mean Figure-7 pruning powers (when collected).
    pub social_index_power: f64,
    /// Mean social object-level power.
    pub social_object_power: f64,
    /// Mean road index-level power.
    pub road_index_power: f64,
    /// Mean road object-level power.
    pub road_object_power: f64,
    /// Mean social-distance rule power (Fig. 7b).
    pub social_distance_power: f64,
    /// Mean interest rule power (Fig. 7b).
    pub interest_power: f64,
    /// Mean road-distance rule power (Fig. 7c).
    pub road_distance_power: f64,
    /// Mean matching rule power (Fig. 7c).
    pub matching_power: f64,
    /// Mean pair-level power (Fig. 7d).
    pub pair_power: f64,
}

/// Runs `ctx.queries_per_point` queries (varying the query user) and
/// averages the metrics.
pub fn run_queries(
    ctx: &ExperimentContext,
    engine: &GpSsnEngine<'_>,
    base: &GpSsnQuery,
    collect_stats: bool,
) -> Averaged {
    let users = ctx.sample_query_users(engine.ssn(), ctx.queries_per_point);
    let opts = QueryOptions {
        collect_stats,
        ..Default::default()
    };
    let mut acc = Averaged::default();
    let n = users.len().max(1) as f64;
    for u in users {
        let q = GpSsnQuery {
            user: u,
            ..base.clone()
        };
        let out = engine.query_with_options(&q, &opts);
        acc.cpu_seconds += out.metrics.cpu.as_secs_f64() / n;
        acc.io_pages += out.metrics.io_pages as f64 / n;
        if out.answer.is_some() {
            acc.hit_rate += 1.0 / n;
        }
        let s = &out.metrics.stats;
        acc.social_index_power += s.social_index_power() / n;
        acc.social_object_power += s.social_object_power() / n;
        acc.road_index_power += s.road_index_power() / n;
        acc.road_object_power += s.road_object_power() / n;
        acc.social_distance_power += s.social_distance_power() / n;
        acc.interest_power += s.interest_power() / n;
        acc.road_distance_power += s.road_distance_power() / n;
        acc.matching_power += s.matching_power() / n;
        acc.pair_power += s.pair_power() / n;
    }
    acc
}
