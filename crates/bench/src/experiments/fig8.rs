//! Figure 8: GP-SSN versus the Baseline on the four datasets (CPU time
//! and I/O cost). The Baseline cost is the paper's 100-sample
//! extrapolation (`avg per-pair cost × C(m, τ)`), which lands in the
//! "takes years" regime the paper reports (1.9 × 10¹³ days at full
//! scale).

use super::run_queries;
use crate::runner::{fmt_seconds, ExperimentContext, Table};
use gpssn_core::estimate_baseline_cost;
use gpssn_core::GpSsnQuery;
use gpssn_ssn::DatasetKind;

/// Runs the GP-SSN vs Baseline comparison.
pub fn fig8(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Fig 8: GP-SSN vs Baseline (CPU time, I/O cost)",
        &[
            "dataset",
            "GP-SSN CPU",
            "GP-SSN I/O",
            "answered",
            "Baseline CPU (est.)",
            "Baseline I/O (est.)",
        ],
    );
    for kind in DatasetKind::all() {
        let ssn = kind.build(ctx.scale, ctx.seed);
        let engine = ctx.engine(&ssn, ctx.engine_config());
        let avg = run_queries(ctx, &engine, &ctx.default_query(), false);
        let users = ctx.sample_query_users(&ssn, 1);
        let q = GpSsnQuery {
            user: users[0],
            ..ctx.default_query()
        };
        let est = estimate_baseline_cost(&ssn, &q, 100);
        t.push_row(vec![
            kind.name().into(),
            fmt_seconds(avg.cpu_seconds),
            format!("{:.0}", avg.io_pages),
            format!("{:.0}%", 100.0 * avg.hit_rate),
            fmt_seconds(est.cpu_seconds),
            format!("{:.2e}", est.io_pages),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_reports_orders_of_magnitude_gap() {
        let ctx = ExperimentContext {
            scale: 0.006,
            queries_per_point: 1,
            ..Default::default()
        };
        let t = fig8(&ctx);
        let r = t.render();
        assert!(r.contains("UNI"));
        assert!(r.contains("Baseline"));
    }
}
