//! Tables 1 and 2 of the paper.

use crate::runner::{ExperimentContext, Table};
use gpssn_social::{interest_score, InterestVector};
use gpssn_ssn::{DatasetKind, DatasetStats};

/// Table 1: the running example's interest keyword vectors, plus the
/// derived pairwise interest scores (Eq. 1) for the Figure-1 users.
pub fn table1() -> Vec<Table> {
    let names = ["u1", "u2", "u3", "u4", "u5"];
    let vectors = [
        InterestVector::new(vec![0.7, 0.3, 0.7]),
        InterestVector::new(vec![0.2, 0.9, 0.3]),
        InterestVector::new(vec![0.4, 0.8, 0.8]),
        InterestVector::new(vec![0.9, 0.7, 0.7]),
        InterestVector::new(vec![0.1, 0.8, 0.5]),
    ];
    let mut t = Table::new(
        "Table 1: interest keyword vectors u_j.w",
        &["user", "restaurant", "shopping mall", "cafe"],
    );
    for (name, v) in names.iter().zip(vectors.iter()) {
        t.push_row(vec![
            name.to_string(),
            format!("{:.1}", v.weight(0)),
            format!("{:.1}", v.weight(1)),
            format!("{:.1}", v.weight(2)),
        ]);
    }
    let mut s = Table::new(
        "Derived: pairwise Interest_Score (Eq. 1)",
        &["pair", "score"],
    );
    for i in 0..5 {
        for j in (i + 1)..5 {
            s.push_row(vec![
                format!("{},{}", names[i], names[j]),
                format!("{:.2}", interest_score(&vectors[i], &vectors[j])),
            ]);
        }
    }
    vec![t, s]
}

/// Table 2: statistics of the four datasets at the context scale.
pub fn table2(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        format!("Table 2: dataset statistics (scale {})", ctx.scale),
        &[
            "dataset", "|V(Gs)|", "deg(Gs)", "|V(Gr)|", "deg(Gr)", "n POIs",
        ],
    );
    for kind in DatasetKind::all() {
        let ssn = kind.build(ctx.scale, ctx.seed);
        let s = DatasetStats::of(&ssn);
        t.push_row(vec![
            kind.name().to_string(),
            s.users.to_string(),
            format!("{:.1}", s.avg_social_degree),
            s.road_vertices.to_string(),
            format!("{:.1}", s.avg_road_degree),
            s.pois.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let tables = table1();
        let r = tables[0].render();
        assert!(r.contains("0.7"));
        let s = tables[1].render();
        // u1·u4 = 0.63 + 0.21 + 0.49 = 1.33.
        assert!(s.contains("1.33"), "{s}");
    }

    #[test]
    fn table2_has_four_rows() {
        let ctx = ExperimentContext {
            scale: 0.005,
            queries_per_point: 1,
            ..Default::default()
        };
        let t = table2(&ctx);
        let r = t.render();
        for name in ["UNI", "ZIPF", "Bri+Cal", "Gow+Col"] {
            assert!(r.contains(name), "missing {name} in\n{r}");
        }
    }
}
