//! Figure 7: pruning powers of the GP-SSN strategies on the four
//! datasets, all parameters at their defaults.

use super::run_queries;
use crate::runner::{ExperimentContext, Table};
use gpssn_ssn::DatasetKind;

/// Runs all four Figure-7 panels and returns their tables.
pub fn fig7(ctx: &ExperimentContext) -> Vec<Table> {
    let mut a = Table::new(
        "Fig 7(a): index-level and object-level pruning power",
        &["dataset", "SN index", "SN object", "RN index", "RN object"],
    );
    let mut b = Table::new(
        "Fig 7(b): user pruning on social networks",
        &["dataset", "SN-distance", "interest-score"],
    );
    let mut c = Table::new(
        "Fig 7(c): POI pruning on road networks",
        &["dataset", "RN-distance", "matching-score"],
    );
    let mut d = Table::new(
        "Fig 7(d): pruning power of user-POI group pairs",
        &["dataset", "pair pruning power"],
    );
    for kind in DatasetKind::all() {
        let ssn = kind.build(ctx.scale, ctx.seed);
        let engine = ctx.engine(&ssn, ctx.engine_config());
        let avg = run_queries(ctx, &engine, &ctx.default_query(), true);
        let pct = |x: f64| format!("{:.1}%", 100.0 * x);
        a.push_row(vec![
            kind.name().into(),
            pct(avg.social_index_power),
            pct(avg.social_object_power),
            pct(avg.road_index_power),
            pct(avg.road_object_power),
        ]);
        b.push_row(vec![
            kind.name().into(),
            pct(avg.social_distance_power),
            pct(avg.interest_power),
        ]);
        c.push_row(vec![
            kind.name().into(),
            pct(avg.road_distance_power),
            pct(avg.matching_power),
        ]);
        d.push_row(vec![
            kind.name().into(),
            format!("{:.5}%", 100.0 * avg.pair_power),
        ]);
    }
    vec![a, b, c, d]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_produces_four_panels() {
        let ctx = ExperimentContext {
            scale: 0.006,
            queries_per_point: 1,
            ..Default::default()
        };
        let tables = fig7(&ctx);
        assert_eq!(tables.len(), 4);
        assert!(tables[0].render().contains("UNI"));
    }
}
