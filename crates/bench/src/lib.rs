//! # gpssn-bench — experiment harness
//!
//! Reproduces every table and figure of the paper's evaluation (Section
//! 6). Run `cargo run --release -p gpssn-bench --bin experiments -- all`
//! or pass an experiment id (`table1`, `table2`, `fig7a`…`fig7d`, `fig8`,
//! `fig9`, `fig10`, `fig11`, `appP-theta`, `appP-r`, `appP-gamma`,
//! `appP-pivots`, `appP-vs`).
//!
//! The harness prints the same rows/series the paper reports; the shapes
//! (who wins, monotone trends, crossovers) are the reproduction target —
//! absolute numbers differ from the authors' C++/64 GB testbed.

pub mod experiments;
pub mod runner;

pub use runner::{ExperimentContext, Table};
