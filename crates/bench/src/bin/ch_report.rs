//! Oracle-vs-Dijkstra comparison distilled into `BENCH_ch.json`:
//! CH preprocessing time (sequential and threaded), point-to-point
//! latency, and the many-to-many kernel against one Dijkstra sweep per
//! source, on the largest bench road graph (30k intersections by
//! default). The same comparison runs under Criterion in
//! `benches/ch.rs`; this bin trades statistical rigor for a single
//! machine-readable artifact.
//!
//! ```text
//! cargo run --release -p gpssn-bench --bin ch_report -- \
//!     [--vertices N] [--seed N] [--out BENCH_ch.json]
//! ```

use gpssn_graph::{dijkstra_targets, ChOracle, ChSearch, NodeId};
use gpssn_road::{generate_road_network, RoadGenConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::Write;
use std::time::Instant;

/// Median wall-clock seconds of `reps` runs of `f` (first run discarded
/// as warm-up when `reps > 1`).
fn median_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    if times.len() > 1 {
        times.remove(0);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut vertices = 30_000usize;
    let mut seed = 7u64;
    let mut out = String::from("BENCH_ch.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--vertices" => {
                i += 1;
                vertices = args[i].parse().expect("--vertices takes an integer");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--help" | "-h" => {
                eprintln!("usage: ch_report [--vertices N] [--seed N] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cfg = RoadGenConfig {
        num_vertices: vertices,
        ..Default::default()
    };
    let net = generate_road_network(&cfg, &mut StdRng::seed_from_u64(seed));
    let g = net.graph();
    eprintln!(
        "road graph: {} vertices, {} edges",
        net.num_vertices(),
        net.num_edges()
    );

    let build_secs = median_secs(3, || ChOracle::build(g));
    let build_threads_secs = median_secs(3, || ChOracle::build_with_threads(g, 4));
    let ch = ChOracle::build(g);
    eprintln!(
        "CH built in {build_secs:.3}s ({} shortcuts); 4-thread build {build_threads_secs:.3}s",
        ch.num_shortcuts()
    );

    // Point-to-point: 32 random pairs, averaged per query.
    let n = net.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let queries: Vec<(NodeId, NodeId)> = (0..32)
        .map(|_| (rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId)))
        .collect();
    let mut cs = ChSearch::new();
    // Answers must agree bitwise before timing means anything. Note the
    // indexing: `dijkstra_targets` returns a dense per-vertex map while
    // `dists` returns one entry per requested target.
    for &(s, t) in &queries {
        let d = dijkstra_targets(g, &[(s, 0.0)], &[t])[t as usize];
        let (c, _) = ch.dists(&mut cs, &[(s, 0.0)], &[t]);
        assert_eq!(
            d.to_bits(),
            c[0].to_bits(),
            "CH answer diverged at {s}->{t}"
        );
    }
    let p2p_dijkstra = median_secs(5, || {
        for &(s, t) in &queries {
            std::hint::black_box(dijkstra_targets(g, &[(s, 0.0)], &[t]));
        }
    }) / queries.len() as f64;
    let p2p_ch = median_secs(5, || {
        for &(s, t) in &queries {
            std::hint::black_box(ch.dists(&mut cs, &[(s, 0.0)], &[t]));
        }
    }) / queries.len() as f64;
    let p2p_speedup = p2p_dijkstra / p2p_ch;
    eprintln!(
        "p2p: dijkstra {:.1}us, ch {:.1}us  ({p2p_speedup:.1}x)",
        p2p_dijkstra * 1e6,
        p2p_ch * 1e6
    );

    // Many-to-many: 8 sources x 16 targets, one matrix per measurement.
    let sources: Vec<[(NodeId, f64); 1]> = (0..8)
        .map(|_| [(rng.gen_range(0..n as NodeId), 0.0)])
        .collect();
    let source_refs: Vec<&[(NodeId, f64)]> = sources.iter().map(|s| &s[..]).collect();
    let targets: Vec<NodeId> = (0..16).map(|_| rng.gen_range(0..n as NodeId)).collect();
    let m2m_dijkstra = median_secs(5, || {
        for s in &source_refs {
            std::hint::black_box(dijkstra_targets(g, s, &targets));
        }
    });
    let m2m_ch = median_secs(5, || {
        std::hint::black_box(ch.batch_dists(&mut cs, &source_refs, &targets))
    });
    let m2m_speedup = m2m_dijkstra / m2m_ch;
    eprintln!(
        "many-to-many 8x16: dijkstra {:.2}ms, ch {:.2}ms  ({m2m_speedup:.1}x)",
        m2m_dijkstra * 1e3,
        m2m_ch * 1e3
    );

    let json = format!(
        "{{\n  \"graph\": {{\"vertices\": {}, \"edges\": {}, \"seed\": {}}},\n  \
         \"build\": {{\"shortcuts\": {}, \"sequential_secs\": {:.6}, \"threads4_secs\": {:.6}}},\n  \
         \"p2p\": {{\"queries\": {}, \"dijkstra_secs_per_query\": {:.9}, \
         \"ch_secs_per_query\": {:.9}, \"speedup\": {:.3}}},\n  \
         \"many_to_many\": {{\"sources\": {}, \"targets\": {}, \"dijkstra_secs\": {:.9}, \
         \"ch_secs\": {:.9}, \"speedup\": {:.3}}}\n}}\n",
        net.num_vertices(),
        net.num_edges(),
        seed,
        ch.num_shortcuts(),
        build_secs,
        build_threads_secs,
        queries.len(),
        p2p_dijkstra,
        p2p_ch,
        p2p_speedup,
        source_refs.len(),
        targets.len(),
        m2m_dijkstra,
        m2m_ch,
        m2m_speedup,
    );
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write report");
    eprintln!("wrote {out}");
}
