//! Batch-scheduling report distilled into `BENCH_serve.json`: how the
//! work-stealing batch scheduler compares to static chunking on a
//! skewed 64-query batch.
//!
//! The batch front-loads a handful of expensive large-radius queries
//! into the first contiguous chunk — the adversarial case for static
//! chunking, where one worker inherits every heavy query while the
//! rest go idle. The report records, per thread count:
//!
//! * **measured wall-clock** for both schedules (honest numbers —
//!   meaningless as a speedup on a single-core container, where all
//!   workers share one CPU);
//! * **simulated makespan** from the *measured per-query sequential
//!   costs*: static chunking's makespan is the largest per-chunk cost
//!   sum, work-stealing's is greedy list scheduling in submission
//!   order (each next query goes to the earliest-free worker — the
//!   shared-cursor discipline). On a machine with ≥`threads` real
//!   cores the simulated makespan *is* the wall-clock, so this is the
//!   apples-to-apples comparison the container cannot measure
//!   directly.
//!
//! Both schedules are asserted bit-identical to the sequential run
//! before any number is reported.
//!
//! ```text
//! cargo run --release -p gpssn-bench --bin serve_report -- \
//!     [--scale F] [--seed N] [--out BENCH_serve.json]
//! ```

use gpssn_core::{
    BatchSchedule, EngineConfig, GpSsnEngine, GpSsnQuery, QueryBudget, QueryOptions, QueryOutcome,
};
use gpssn_ssn::DatasetKind;
use std::io::Write;
use std::time::Instant;

/// The skewed 64-query batch: `HEAVY` large-radius queries first (all
/// land in worker 0's chunk under static chunking), then cheap
/// small-radius ones.
const BATCH: usize = 64;
const HEAVY: usize = 4;

fn skewed_batch(num_users: u32) -> Vec<GpSsnQuery> {
    let mut qs = Vec::with_capacity(BATCH);
    for i in 0..BATCH as u32 {
        let mut q = GpSsnQuery::with_defaults(i * 7 % num_users);
        if (i as usize) < HEAVY {
            // Refinement-heavy settings (cf. benches/refinement.rs):
            // large radius, large group, permissive thresholds.
            q.radius = 3.5;
            q.tau = 5;
            q.gamma = 0.2;
            q.theta = 0.2;
        } else {
            q.radius = 0.6;
            q.tau = 2;
        }
        qs.push(q);
    }
    qs
}

/// Largest per-chunk cost sum: static chunking's idealized makespan.
fn static_makespan(costs: &[f64], threads: usize) -> f64 {
    let chunk = costs.len().div_ceil(threads);
    costs
        .chunks(chunk)
        .map(|c| c.iter().sum())
        .fold(0.0f64, f64::max)
}

/// Greedy list scheduling in submission order: work-stealing's
/// idealized makespan (each next query goes to the earliest-free
/// worker).
fn stealing_makespan(costs: &[f64], threads: usize) -> f64 {
    let mut free_at = vec![0.0f64; threads];
    for &c in costs {
        let w = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        free_at[w] += c;
    }
    free_at.into_iter().fold(0.0f64, f64::max)
}

fn same_outcomes(
    a: &[Result<QueryOutcome, gpssn_core::GpSsnError>],
    b: &[Result<QueryOutcome, gpssn_core::GpSsnError>],
) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Ok(ox), Ok(oy)) => ox.answer == oy.answer,
            (Err(_), Err(_)) => true,
            _ => false,
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.05f64;
    let mut seed = 42u64;
    let mut out = String::from("BENCH_serve.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--help" | "-h" => {
                eprintln!("usage: serve_report [--scale F] [--seed N] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let ssn = DatasetKind::Uni.build(scale, seed);
    let queries = skewed_batch(ssn.social().num_users() as u32);
    eprintln!(
        "dataset Uni scale {scale}: {} users; batch {} queries ({} heavy first, rest cheap)",
        ssn.social().num_users(),
        queries.len(),
        HEAVY
    );
    // The cross-query distance cache is disabled: a warm cache
    // flattens the very cost skew this report exists to measure (the
    // first pass would pre-answer the heavy queries' Dijkstra work for
    // every later pass). Scheduling behavior is identical either way —
    // the cache sits below the scheduler.
    let engine = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            distance_cache: None,
            ..Default::default()
        },
    );
    let opts = QueryOptions::default();
    let budget = QueryBudget::unlimited();

    // Warm-up pass, then measure per-query sequential costs — the
    // inputs to the makespan simulation.
    std::hint::black_box(engine.try_query_batch_scheduled(
        &queries,
        1,
        &opts,
        &budget,
        BatchSchedule::WorkStealing,
    ));
    let mut measured = Vec::with_capacity(queries.len());
    for q in &queries {
        let t = Instant::now();
        std::hint::black_box(engine.try_query_with_options(q, &opts, &budget).ok());
        measured.push(t.elapsed().as_secs_f64());
    }
    // Submission order for the comparison: heaviest first. This is the
    // adversarial arrangement for static chunking (the heaviest
    // queries all land in the first worker's chunk) and matches how a
    // cost-aware client would submit; work-stealing needs no such
    // knowledge — greedy claiming handles any order.
    let mut order: Vec<usize> = (0..queries.len()).collect();
    order.sort_by(|&a, &b| measured[b].total_cmp(&measured[a]));
    let queries: Vec<GpSsnQuery> = order.iter().map(|&i| queries[i].clone()).collect();
    let costs: Vec<f64> = order.iter().map(|&i| measured[i]).collect();
    let baseline =
        engine.try_query_batch_scheduled(&queries, 1, &opts, &budget, BatchSchedule::WorkStealing);
    let sequential: f64 = costs.iter().sum();
    let heavy_cost: f64 = costs[..HEAVY].iter().sum();
    eprintln!(
        "sequential: {sequential:.3}s total; top-{HEAVY} queries {:.1}% of it, heaviest {:.3}s",
        100.0 * heavy_cost / sequential,
        costs[0]
    );

    let mut rows = String::new();
    for &threads in &[2usize, 4, 8] {
        let ta = Instant::now();
        let stat = engine.try_query_batch_scheduled(
            &queries,
            threads,
            &opts,
            &budget,
            BatchSchedule::StaticChunk,
        );
        let static_wall = ta.elapsed().as_secs_f64();
        let tb = Instant::now();
        let steal = engine.try_query_batch_scheduled(
            &queries,
            threads,
            &opts,
            &budget,
            BatchSchedule::WorkStealing,
        );
        let steal_wall = tb.elapsed().as_secs_f64();
        assert!(
            same_outcomes(&baseline, &stat) && same_outcomes(&baseline, &steal),
            "schedules must be bit-identical to sequential"
        );
        let sim_static = static_makespan(&costs, threads);
        let sim_steal = stealing_makespan(&costs, threads);
        eprintln!(
            "threads {threads}: simulated makespan static {sim_static:.3}s vs stealing {sim_steal:.3}s \
             ({:.2}x); measured wall static {static_wall:.3}s vs stealing {steal_wall:.3}s",
            sim_static / sim_steal
        );
        if !rows.is_empty() {
            rows.push(',');
        }
        rows.push_str(&format!(
            "{{\"threads\":{threads},\"sim_static_s\":{sim_static:.6},\"sim_stealing_s\":{sim_steal:.6},\
             \"sim_speedup\":{:.4},\"wall_static_s\":{static_wall:.6},\"wall_stealing_s\":{steal_wall:.6}}}",
            sim_static / sim_steal
        ));
    }

    let json = format!(
        "{{\"bench\":\"serve\",\"dataset\":\"uni\",\"scale\":{scale},\"seed\":{seed},\
         \"batch\":{BATCH},\"heavy\":{HEAVY},\"sequential_s\":{sequential:.6},\
         \"heavy_fraction\":{:.4},\"cores\":{},\"rows\":[{rows}]}}\n",
        heavy_cost / sequential,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write report");
    eprintln!("report written to {out}");
}
